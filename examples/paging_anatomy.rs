//! Anatomy of hypervisor paging (the Sec. 3.2 breakdown): for each
//! big-memory workload, how often the hypervisor remaps pages, what the
//! software shootdown path does in response (IPIs, VM exits, flushes), and
//! what HATRIC does instead (selective co-tag invalidations).
//!
//! Run with: `cargo run --release --example paging_anatomy`

use hatric::experiments::{common::execute, common::RunSpec, ExperimentParams};
use hatric::{CoherenceMechanism, MemoryMode, WorkloadKind};

fn main() {
    let params = ExperimentParams {
        vcpus: 8,
        fast_pages: 1_024,
        warmup: 2_000,
        measured: 3_000,
        ..ExperimentParams::default_scale()
    };

    println!(
        "Per-workload paging & coherence anatomy ({} vCPUs, {} fast pages, {} accesses/thread)\n",
        params.vcpus, params.fast_pages, params.measured
    );
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>8} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "workload",
        "remaps",
        "ipis",
        "vm-exits",
        "flushes",
        "flushed",
        "selective",
        "spurious",
        "sw-norm",
        "ha-norm"
    );
    for kind in WorkloadKind::big_memory_suite() {
        let baseline = execute(
            &RunSpec::new(kind, CoherenceMechanism::Software).with_memory_mode(MemoryMode::NoHbm),
            &params,
        );
        let sw = execute(&RunSpec::new(kind, CoherenceMechanism::Software), &params);
        let hatric = execute(&RunSpec::new(kind, CoherenceMechanism::Hatric), &params);
        println!(
            "{:<14} {:>8} {:>8} {:>9} {:>8} {:>9} {:>10} {:>10} {:>8.3} {:>8.3}",
            kind.label(),
            sw.coherence.remaps,
            sw.coherence.ipis,
            sw.coherence.coherence_vm_exits,
            sw.coherence.full_flushes,
            sw.coherence.entries_flushed,
            hatric.coherence.entries_selectively_invalidated,
            hatric.coherence.spurious_messages,
            sw.runtime_vs(&baseline),
            hatric.runtime_vs(&baseline),
        );
    }
    println!(
        "\n(sw-norm / ha-norm: runtime with software coherence / with HATRIC, normalised to no-hbm)"
    );
}
