//! Die-stacked DRAM paging study (the Fig. 2 scenario): how much of the
//! die-stacked memory's potential does software translation coherence throw
//! away, and how much does HATRIC recover?
//!
//! Run with: `cargo run --release --example die_stacked_paging`

use hatric::experiments::{fig2, ExperimentParams};

fn main() {
    // A smaller sizing than the benchmark harness so the example finishes in
    // seconds; pass `--full` for the harness-scale run.
    let full = std::env::args().any(|a| a == "--full");
    let params = if full {
        ExperimentParams::default_scale()
    } else {
        ExperimentParams {
            vcpus: 8,
            fast_pages: 1_024,
            warmup: 2_000,
            measured: 3_000,
            ..ExperimentParams::default_scale()
        }
    };

    println!(
        "Reproducing Figure 2 at {} vCPUs, {} die-stacked pages\n",
        params.vcpus, params.fast_pages
    );
    let rows = fig2::run(&params);
    println!("{}", fig2::format_table(&rows));

    // Narrate the headline observations the paper makes about this figure.
    for row in &rows {
        if row.curr_best > 1.0 {
            println!(
                "  -> {} is SLOWER with die-stacked DRAM under software coherence ({:.2}x)",
                row.workload, row.curr_best
            );
        }
        let recovered = (row.curr_best - row.achievable) / (row.curr_best - row.inf_hbm).max(1e-9);
        println!(
            "  -> {}: ideal coherence recovers {:.0}% of the gap to infinite die-stacked DRAM",
            row.workload,
            recovered.clamp(0.0, 1.0) * 100.0
        );
    }
}
