//! Quickstart: build a small virtualized system, run one workload under the
//! software shootdown baseline and under HATRIC, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use hatric::{CoherenceMechanism, SimReport, System, SystemConfig, WorkloadDriver};
use hatric_workloads::{Workload, WorkloadKind};

fn run(mechanism: CoherenceMechanism) -> Result<SimReport, Box<dyn std::error::Error>> {
    // 4 vCPUs, 256 pages (1 MiB) of die-stacked DRAM, 4x that off-chip.
    let config = SystemConfig::scaled(4, 256).with_mechanism(mechanism);
    let mut system = System::new(config.clone())?;
    let workload = Workload::build(
        WorkloadKind::DataCaching,
        config.vcpus,
        config.fast_capacity_pages(),
        7,
    );
    let mut driver = WorkloadDriver::from(workload);
    Ok(system.run(&mut driver, 2_000, 4_000))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("HATRIC quickstart: data-caching workload on 4 vCPUs\n");
    let sw = run(CoherenceMechanism::Software)?;
    let hatric = run(CoherenceMechanism::Hatric)?;
    let ideal = run(CoherenceMechanism::Ideal)?;

    println!("mechanism   runtime(cycles)  remaps  IPIs  VM-exits  flushes  selective-inv");
    for (name, r) in [("software", &sw), ("hatric", &hatric), ("ideal", &ideal)] {
        println!(
            "{:<10} {:>16} {:>7} {:>5} {:>9} {:>8} {:>14}",
            name,
            r.runtime_cycles(),
            r.coherence.remaps,
            r.coherence.ipis,
            r.coherence.coherence_vm_exits,
            r.coherence.full_flushes,
            r.coherence.entries_selectively_invalidated,
        );
    }
    println!();
    println!(
        "HATRIC runtime is {:.1}% of the software baseline (ideal: {:.1}%)",
        hatric.runtime_vs(&sw) * 100.0,
        ideal.runtime_vs(&sw) * 100.0
    );
    println!(
        "L1 TLB hit rate: {:.1}%   demand faults: {}   pages promoted: {}",
        hatric.translation.l1_tlb.hit_rate() * 100.0,
        hatric.faults.demand_faults,
        hatric.faults.pages_promoted
    );
    Ok(())
}
