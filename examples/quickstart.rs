//! Quickstart: the fluent builders in ~20 lines — a paging-heavy aggressor
//! next to a quiet victim, under software shootdowns and under HATRIC.
//! Run with: `cargo run --release --example quickstart`

use hatric_host::{
    CoherenceMechanism, ConsolidatedHost, HostConfig, SchedPolicy, VmSpec, WorkloadKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for mechanism in [CoherenceMechanism::Software, CoherenceMechanism::Hatric] {
        let config = HostConfig::builder(4, 256)
            .mechanism(mechanism)
            .sched(SchedPolicy::RoundRobin)
            .vm(VmSpec::builder(2, 128)
                .workload(WorkloadKind::DataCaching)
                .build()?)
            .vm(VmSpec::builder(2, 128).build()?)
            .build()?;
        let report = ConsolidatedHost::new(config)?.run(2_000, 4_000);
        println!(
            "{mechanism:?}: victim ran {} cycles ({} stolen by the aggressor's {} IPIs)",
            report.per_vm[1].runtime_cycles(),
            report.per_vm[1].interference.disrupted_cycles,
            report.host.coherence.ipis,
        );
    }
    Ok(())
}
