//! A fleet under pressure: four consolidated hosts, churn-driven VM
//! arrivals/departures, and four concurrent inter-host pre-copy
//! migrations — software shootdowns vs HATRIC vs the ideal bound.
//! Run with: `cargo run --release --example cluster_churn`

use hatric_host::experiments::{cluster_churn, ClusterChurnParams};
use hatric_host::CoherenceMechanism;

fn main() {
    let params = ClusterChurnParams::default_scale();
    let rows = cluster_churn::run(&params, 4);
    println!("{}", cluster_churn::format_table(&rows));

    let by = |mechanism: CoherenceMechanism| {
        rows.iter()
            .find(|r| r.mechanism == mechanism)
            .expect("the run emits one row per mechanism")
    };
    let software = by(CoherenceMechanism::Software);
    let hatric = by(CoherenceMechanism::Hatric);
    assert!(
        software.agg_victim_slowdown_vs_ideal > hatric.agg_victim_slowdown_vs_ideal,
        "software shootdowns must slow fleet victims more than HATRIC"
    );
    assert!(
        software.downtime_p99_cycles > hatric.downtime_p99_cycles,
        "software migration downtime p99 must exceed HATRIC's"
    );
    println!(
        "OK: with 4 concurrent migrations, HATRIC bounds both the aggregate victim slowdown and the downtime p99 below the software path."
    );
}
