//! Consolidated host: four VMs (one paging-heavy aggressor, three
//! remap-free victims) time-sharing four physical CPUs, run under all four
//! translation-coherence mechanisms.
//!
//! The point of the experiment: under software shootdowns, every page the
//! aggressor's hypervisor remaps costs IPIs, VM exits and full TLB flushes
//! on every CPU the aggressor ever ran on — cycles stolen from the victim
//! VMs that happen to occupy those CPUs.  Under HATRIC the same remaps
//! touch only the directory-listed sharers with pipelined co-tag
//! invalidations, so the victims run at (near) ideal-coherence speed.
//!
//! Run with: `cargo run --release --example consolidated_host`

use hatric_host::experiments::multivm::{self, MultiVmParams};
use hatric_host::CoherenceMechanism;

fn main() {
    let params = MultiVmParams::default_scale();
    println!(
        "Consolidated host: {} pCPUs, {} VMs ({} aggressor vCPUs + {}x{} victim vCPUs), {:?} scheduling\n",
        params.num_pcpus,
        1 + params.victims,
        params.aggressor_vcpus,
        params.victims,
        params.victim_vcpus,
        params.sched,
    );

    let rows = multivm::run(&params);

    println!("Per-VM runtimes (cycles; VM 0 is the aggressor):");
    for row in &rows {
        let runtimes: Vec<String> = row
            .report
            .per_vm
            .iter()
            .map(|r| r.runtime_cycles().to_string())
            .collect();
        println!(
            "  {:<14} {}",
            format!("{:?}", row.mechanism),
            runtimes.join("  ")
        );
    }
    println!();
    println!("{}", multivm::format_table(&rows));

    let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
    let software = by(CoherenceMechanism::Software);
    let hatric = by(CoherenceMechanism::Hatric);

    println!(
        "victim slowdown vs ideal:  software {:.3}x   hatric {:.3}x",
        software.victim_slowdown_vs_ideal, hatric.victim_slowdown_vs_ideal
    );
    println!(
        "cycles stolen from victims: software {}   hatric {}",
        software.victim_disrupted_cycles, hatric.victim_disrupted_cycles
    );

    assert!(
        software.victim_slowdown_vs_ideal > hatric.victim_slowdown_vs_ideal,
        "software shootdowns must slow victims more than HATRIC"
    );
    assert!(
        hatric.victim_slowdown_vs_ideal < 1.05,
        "HATRIC victims must stay within 5% of the ideal-coherence bound"
    );
    println!("\nOK: shootdown-induced victim slowdown exceeds HATRIC's, and HATRIC victims stay within 5% of ideal.");
}
