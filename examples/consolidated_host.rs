//! Consolidated host via the scenario registry: the full `multivm`
//! pressure sweep (one paging-heavy aggressor, three remap-free victims,
//! four mechanisms) in a dozen lines.
//! Run with: `cargo run --release --example consolidated_host`

use hatric_host::scenario::{find, Params, Scale};

fn main() {
    let scenario = find("multivm").expect("multivm is registered");
    let report = scenario
        .run(&Params::new(), Scale::Bench)
        .expect("default parameters are valid");
    println!("{}", report.format_table());

    let slowdown = |pressure: &str, mechanism: &str| {
        report
            .find(pressure, mechanism)
            .and_then(|row| row.number("victim_slowdown_vs_ideal"))
            .expect("the sweep emits every (pressure, mechanism) row")
    };
    assert!(
        slowdown("severe", "Software") > slowdown("severe", "Hatric"),
        "software shootdowns must slow victims more than HATRIC"
    );
    assert!(
        slowdown("severe", "Hatric") < 1.05,
        "HATRIC victims must stay within 5% of the ideal-coherence bound"
    );
    println!("OK: shootdown-induced victim slowdown exceeds HATRIC's, and HATRIC victims stay within 5% of ideal.");
}
