//! A fleet under fire: the engineered deterministic fault storm — a host
//! crash that aborts one migration as source and another as destination
//! (the latter retried), a stuck pre-copy that force-escalates to
//! post-copy, crash-driven cold restarts, and seeded background
//! link/DRAM faults — software shootdowns vs HATRIC vs the ideal bound.
//! Run with: `cargo run --release --example cluster_faults`

use hatric_host::experiments::{cluster_faults, ClusterFaultsParams};
use hatric_host::CoherenceMechanism;

fn main() {
    let params = ClusterFaultsParams::default_scale();
    let rows = cluster_faults::run(&params);
    println!("{}", cluster_faults::format_table(&rows));

    let by = |mechanism: CoherenceMechanism| {
        rows.iter()
            .find(|r| r.mechanism == mechanism)
            .expect("the run emits one row per mechanism")
    };
    let software = by(CoherenceMechanism::Software);
    let hatric = by(CoherenceMechanism::Hatric);
    assert_eq!(software.report.recovery.host_crashes, 1);
    assert!(software.report.recovery.migrations_aborted >= 2);
    assert!(
        hatric.agg_victim_slowdown_vs_ideal <= software.agg_victim_slowdown_vs_ideal,
        "HATRIC must not slow fleet victims more than software under the same storm"
    );
    assert!(
        hatric.recovery_downtime_p99_cycles <= software.recovery_downtime_p99_cycles,
        "HATRIC's recovery downtime p99 must not exceed software's"
    );
    println!(
        "OK: under an identical fault storm, HATRIC recovers no slower than the software path on both victim slowdown and recovery downtime p99."
    );
}
