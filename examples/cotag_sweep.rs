//! Co-tag sizing study (the Fig. 11 right-hand plot): 1-byte co-tags alias
//! too much (extra invalidations, longer walks), 3-byte co-tags burn lookup
//! and leakage energy; 2 bytes is the sweet spot the paper picks.
//!
//! Run with: `cargo run --release --example cotag_sweep`

use hatric::experiments::{fig11, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        vcpus: 8,
        fast_pages: 1_024,
        warmup: 1_500,
        measured: 2_500,
        ..ExperimentParams::default_scale()
    };

    println!("Reproducing Figure 11 (right): co-tag width sweep\n");
    let rows = fig11::run_cotag_sweep(&params);
    println!("{}", fig11::format_cotag(&rows));

    let best = rows
        .iter()
        .min_by(|a, b| {
            (a.runtime_ratio * a.energy_ratio)
                .partial_cmp(&(b.runtime_ratio * b.energy_ratio))
                .unwrap()
        })
        .expect("sweep is never empty");
    println!(
        "Best performance-energy product at {}-byte co-tags (the paper's design point is 2 bytes).",
        best.cotag_bytes
    );

    println!("\nReproducing Figure 11 (left): per-workload performance/energy scatter\n");
    let points = fig11::run_scatter(&params);
    println!("{}", fig11::format_scatter(&points));
}
