//! NUMA contention: the consolidated-host interference experiment on a
//! multi-socket machine, swept over the socket count (and with it the
//! remote-access ratio — interleaved allocation over S sockets puts
//! (S-1)/S of all DRAM traffic behind the inter-socket link).
//!
//! Distance magnifies the software-shootdown bill: cross-socket IPIs pay
//! the link premium, and every full flush forces victims to refill
//! translations through the congested link.  HATRIC's co-tag messages ride
//! the coherence interconnect for a few cycles per hop, so its victims stay
//! at the ideal bound and the HATRIC-vs-software gap *widens* with the
//! remote ratio.  A final socket-affine + first-touch run shows NUMA-aware
//! placement clawing part of the software penalty back.
//!
//! Run with: `cargo run --release --example numa_contention`

use hatric_host::experiments::numa_contention::{self, NumaContentionParams};
use hatric_host::{NumaPolicy, SchedPolicy};

fn main() {
    let base = NumaContentionParams::default_scale();
    println!(
        "NUMA contention: {} pCPUs, 1 aggressor ({} vCPUs) + {} victims ({} vCPUs each)\n",
        base.num_pcpus, base.aggressor_vcpus, base.victims, base.victim_vcpus,
    );

    for sockets in [1, 2, 4] {
        let rows = numa_contention::run(&base.with_sockets(sockets));
        println!("sockets: {sockets} (interleaved allocation, round-robin scheduling)");
        println!("{}", numa_contention::format_table(&rows));
    }

    let affine = base
        .with_sockets(2)
        .with_numa_policy(NumaPolicy::FirstTouch)
        .with_sched(SchedPolicy::SocketAffine);
    let rows = numa_contention::run(&affine);
    println!("sockets: 2 (first-touch allocation, socket-affine pinning)");
    println!("{}", numa_contention::format_table(&rows));
}
