//! Live VM migration on a consolidated host: one migrating VM next to
//! three remap-free victims, run under all four translation-coherence
//! mechanisms.
//!
//! Pre-copy live migration is a remap storm by construction: every copied
//! page is write-protected in the nested page table (so later guest
//! stores are caught for re-copy), and the final stop-and-copy freezes
//! the VM while the residue transfers and the source revokes the nested
//! page table.  Under software shootdowns every one of those PTE stores
//! IPIs each CPU the VM ever touched — slowing the co-located victims —
//! and the per-store ack wait sits inside the stop-and-copy downtime
//! window.  Under HATRIC the same stores become directory-confined co-tag
//! invalidations: victims stay at the ideal bound and downtime collapses
//! to the copy cost.
//!
//! Run with: `cargo run --release --example live_migration`

use hatric_host::experiments::migration_storm::{self, MigrationStormParams};
use hatric_host::CoherenceMechanism;

fn main() {
    let params = MigrationStormParams::default_scale().with_balloon_pages(300);
    println!(
        "Consolidated host: {} pCPUs, {} VMs ({} migrant vCPUs + {}x{} victim vCPUs), {:?} scheduling",
        params.num_pcpus,
        1 + params.victims,
        params.migrant_vcpus,
        params.victims,
        params.victim_vcpus,
        params.sched,
    );
    println!(
        "Live migration of VM 0 starts at slice {} ({} pages/slice, converge at <= {} dirty, max {} rounds);",
        params.migration_start_slice(),
        params.copy_pages_per_slice,
        params.dirty_page_threshold,
        params.max_rounds,
    );
    println!(
        "balloon moves {} pages of die-stacked capacity from victim 1 to the migrant mid-run.\n",
        params.balloon_pages,
    );

    let rows = migration_storm::run(&params);
    println!("{}", migration_storm::format_table(&rows));

    let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
    let software = by(CoherenceMechanism::Software);
    let hatric = by(CoherenceMechanism::Hatric);

    println!(
        "migration downtime:         software {} cycles   hatric {} cycles   ({:.1}x reduction)",
        software.downtime_cycles,
        hatric.downtime_cycles,
        software.downtime_cycles as f64 / hatric.downtime_cycles.max(1) as f64,
    );
    println!(
        "victim slowdown vs ideal:   software {:.3}x   hatric {:.3}x",
        software.victim_slowdown_vs_ideal, hatric.victim_slowdown_vs_ideal
    );
    println!(
        "cycles stolen from victims: software {}   hatric {}",
        software.victim_disrupted_cycles, hatric.victim_disrupted_cycles
    );

    assert!(
        software.downtime_cycles > hatric.downtime_cycles,
        "software-shootdown downtime must exceed HATRIC's"
    );
    assert!(
        software.victim_slowdown_vs_ideal > hatric.victim_slowdown_vs_ideal,
        "software shootdowns must slow victims more than HATRIC"
    );
    assert!(
        hatric.victim_slowdown_vs_ideal < 1.05,
        "HATRIC victims must stay within 5% of the ideal-coherence bound"
    );
    for row in &rows {
        assert_eq!(
            row.report.migration.migrations_completed, 1,
            "the migration must complete under every mechanism"
        );
    }
    println!(
        "\nOK: migration downtime and co-located-victim slowdown are strictly lower under HATRIC \
         than under software shootdowns."
    );
}
