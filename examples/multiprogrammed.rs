//! Multiprogrammed SPEC mixes (the Fig. 10 scenario): software translation
//! coherence flushes the translation structures of applications that never
//! touched the remapped pages, wrecking both throughput and fairness.
//!
//! Run with: `cargo run --release --example multiprogrammed [-- <mixes>]`

use hatric::experiments::{fig10, ExperimentParams};

fn main() {
    let mixes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let params = ExperimentParams {
        vcpus: 16,
        fast_pages: 1_024,
        warmup: 1_500,
        measured: 2_500,
        ..ExperimentParams::default_scale()
    };

    println!("Reproducing Figure 10 with {mixes} multiprogrammed mixes (16 apps each)\n");
    let rows = fig10::run(&params, mixes);
    println!("{}", fig10::format_table(&rows));

    let summary = fig10::summarise(&rows);
    println!(
        "Software coherence makes {:.0}% of mixes slower than having no die-stacked DRAM at all;",
        summary.sw_regressing_fraction * 100.0
    );
    println!(
        "HATRIC leaves {:.0}% of mixes regressing and improves the mean weighted runtime from {:.2}x to {:.2}x.",
        summary.hatric_regressing_fraction * 100.0,
        summary.mean_weighted_sw,
        summary.mean_weighted_hatric
    );
}
