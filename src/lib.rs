//! Workspace-level umbrella package.
//!
//! This package exists to host the repository-level integration tests
//! (`tests/`) and examples (`examples/`); the simulator itself lives in the
//! `crates/` workspace members, re-exported here for convenience.

#![deny(missing_docs)]

pub use hatric;
pub use hatric_host;
pub use hatric_migration;
