//! # hatric-telemetry
//!
//! Observability primitives for the HATRIC reproduction, shared by the
//! core engine, the migration subsystem and the scenario layer:
//!
//! * [`LatencyHistogram`] — fixed-size power-of-two-bucket histograms for
//!   sim-time latency distributions (nested-walk latency, shootdown
//!   completion latency, DRAM queueing delay).  Integer bucket counters
//!   merge deterministically, so per-VM histograms can ride the slice
//!   engine's commit barrier exactly like the energy tallies.
//! * [`TraceSink`] / [`TraceEvent`] — a ring-buffered recorder of spans
//!   keyed by *simulated* cycles, exportable as Chrome trace-event JSON
//!   ([`TraceSink::export_chrome_trace`]) for `chrome://tracing`/Perfetto.
//! * [`PhaseProfiler`] / [`PhaseTotals`] — wall-clock totals of the slice
//!   engine's phases (pool refill, simulate, bank replay, booking replay,
//!   serial commit).  Wall-clock data never feeds back into the model; it
//!   exists purely so the engine's own cost is measurable over time.
//! * [`CounterTimeline`] — a sim-time gauge sampler: named series sampled
//!   at a fixed slice interval (directory occupancy, DRAM queue depth,
//!   TLB hit rate, in-flight shootdown targets, migration dirty pages),
//!   exportable as Chrome counter events
//!   ([`CounterTimeline::export_chrome_counters`]) or CSV
//!   ([`CounterTimeline::export_csv`]).
//! * [`RemapId`] / [`CausalCost`] / [`CausalLedger`] — per-remap causal
//!   attribution: every nested-PTE remap gets an id, and every disruptive
//!   consequence (shootdown target stall, TLB/cotag invalidation,
//!   back-invalidation) is charged to the remap that caused it, so
//!   reports can answer "which 1% of remaps caused 50% of victim
//!   slowdown".
//!
//! Everything here is determinism-neutral by construction: histograms
//! count simulated quantities only, the trace sink is an append-only log
//! of simulated spans that no model code ever reads back, timelines and
//! causal ledgers only *read* model state, and the phase profiler is the
//! single sanctioned home for wall-clock measurements.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// Number of buckets in a [`LatencyHistogram`].  Bucket 0 holds zero-cycle
/// samples; bucket *i* (for `1 <= i < BUCKETS-1`) holds samples in
/// `[2^(i-1), 2^i)`; the top bucket saturates (everything at or above
/// `2^(BUCKETS-2)` lands there).
pub const BUCKETS: usize = 32;

/// A fixed-bucket power-of-two latency histogram.
///
/// Recording is one array increment — no allocation, no floating point —
/// so histograms can sit on the per-access hot path unconditionally.
/// Merging adds bucket counters and is order-independent, which makes the
/// per-VM histograms thread-count invariant under the parallel slice
/// engine: every worker increments its own VM's counters, and any merge
/// order produces the same totals.
///
/// ```
/// use hatric_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.p50() <= h.p99());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
}

impl LatencyHistogram {
    /// The bucket index a value falls into.
    #[must_use]
    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// The largest value a bucket can represent (the value percentile
    /// queries report for samples in that bucket).  The top bucket is
    /// saturating and reports [`u64::MAX`].
    #[must_use]
    fn bucket_upper(index: usize) -> u64 {
        if index >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulates `other` into `self` (used when summing per-VM
    /// histograms into a host aggregate, or per-unit histograms at the
    /// commit barrier).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// The value at percentile `p` (in `0.0..=100.0`), reported as the
    /// upper bound of the bucket containing the rank-`p` sample — an
    /// upper estimate, never an underestimate (except in the saturating
    /// top bucket, where the true value is unbounded).  Returns 0 for an
    /// empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let rank = rank.min(total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(index);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// The median (50th percentile).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// The 99th percentile — the tail the paper's latency arguments
    /// hinge on.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// The three latency distributions the simulator tracks per VM.
///
/// All three are recorded in *simulated cycles* at the point where the
/// model computes the charge, so the histograms are as deterministic as
/// the charges themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// End-to-end nested page-table walk latency per translation miss
    /// (the full two-dimensional walk, cache hits and DRAM included).
    pub walk: LatencyHistogram,
    /// Remap/shootdown completion latency per nested-PTE write: initiator
    /// cycles plus the slowest target's invalidation, i.e. the window the
    /// remap is in flight (paper Fig. 9's per-mechanism remap cost).
    pub shootdown: LatencyHistogram,
    /// DRAM queueing delay per memory-level access: cycles spent waiting
    /// behind earlier requests at the bank and (on NUMA hosts) the
    /// inter-socket link, excluding the device access itself.
    pub dram_queue: LatencyHistogram,
}

impl LatencyStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.walk.merge(&other.walk);
        self.shootdown.merge(&other.shootdown);
        self.dram_queue.merge(&other.dram_queue);
    }
}

// ---------------------------------------------------------------------------
// Sim-time trace events
// ---------------------------------------------------------------------------

/// Well-known trace track (Chrome `tid`) assignments.
///
/// Per-CPU spans use the CPU index as their track, so within each track
/// timestamps follow that CPU's monotonically non-decreasing cycle
/// counter.  Host-level activities get dedicated tracks well above any
/// plausible CPU count.
pub mod track {
    /// Scheduler-slice spans.
    pub const SCHEDULER: u32 = 10_000;
    /// Hypervisor worker spans (migration rounds, stop-and-copy).
    pub const HYPERVISOR: u32 = 10_001;

    /// The track of physical CPU `index`.
    #[must_use]
    pub fn cpu(index: usize) -> u32 {
        index as u32
    }
}

/// One complete span: a named interval on a track, keyed by simulated
/// cycles, with a small set of integer arguments.
///
/// `name` and `cat` are static so recording a span never allocates for
/// them; only `args` allocates, and only while tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `"remap"`, `"precopy_round"`).
    pub name: &'static str,
    /// Category (Chrome `cat`), e.g. `"coherence"`, `"migration"`.
    pub cat: &'static str,
    /// Track (Chrome `tid`) — see [`track`].
    pub track: u32,
    /// Start of the span in simulated cycles.
    pub ts: u64,
    /// Duration of the span in simulated cycles.
    pub dur: u64,
    /// Integer arguments shown in the trace viewer's detail pane.
    pub args: Vec<(&'static str, u64)>,
}

/// A ring-buffered recorder of [`TraceEvent`]s.
///
/// The ring bounds memory on long runs: once `capacity` spans are held,
/// each new span evicts the oldest.  Export order is always insertion
/// order, and eviction is deterministic because recording order is —
/// spans reach the sink either from serial model code or from the commit
/// barrier's canonical slot-ordered merge.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` spans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Records one span, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the sink holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all spans (the warmup/measured boundary does this so a
    /// trace covers exactly the measured phase).
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }

    /// The held spans in insertion order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
    }

    /// Serialises the held spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in
    /// `chrome://tracing` and Perfetto.  Each span becomes one complete
    /// (`"ph":"X"`) event; simulated cycles map directly onto the
    /// viewer's microsecond axis.  The document's `metadata` object
    /// carries `droppedSpans` — the number of spans evicted because the
    /// ring wrapped — so consumers can tell a complete trace from a
    /// truncated one.
    #[must_use]
    pub fn export_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        self.write_events(&mut out, 0, &mut first);
        out.push_str(&format!(
            "\n],\"metadata\":{{\"droppedSpans\":{}}}}}\n",
            self.dropped
        ));
        out
    }

    /// Appends the held spans to `out` as Chrome trace-event objects under
    /// process `pid` (comma-separating from whatever `first` says precedes
    /// them).
    fn write_events(&self, out: &mut String, pid: usize, first: &mut bool) {
        for event in self.events() {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&format!(
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
                event.name, event.cat, event.ts, event.dur, pid, event.track
            ));
            for (i, (key, value)) in event.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{key}\":{value}"));
            }
            out.push_str("}}");
        }
    }
}

/// Merges several sinks — one per cluster host — into one Chrome trace
/// document: sink `i`'s spans land under process `i` (so each host gets
/// its own process group in the viewer, with the usual per-CPU /
/// scheduler / hypervisor tracks inside), and `process_name` metadata
/// events label the groups `host0`, `host1`, ….  `droppedSpans` sums over
/// all sinks.
#[must_use]
pub fn merge_chrome_traces<'a>(sinks: impl IntoIterator<Item = &'a TraceSink>) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut dropped = 0u64;
    for (pid, sink) in sinks.into_iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"host{pid}\"}}}}"
        ));
        sink.write_events(&mut out, pid, &mut first);
        dropped += sink.dropped();
    }
    out.push_str(&format!(
        "\n],\"metadata\":{{\"droppedSpans\":{dropped}}}}}\n"
    ));
    out
}

// ---------------------------------------------------------------------------
// Counter timelines
// ---------------------------------------------------------------------------

/// A deterministic sim-time gauge sampler: a fixed set of named series,
/// each sampled together at a fixed scheduler-slice interval.
///
/// The host samples at the commit barrier (after a slice's effects have
/// been committed), so every sample reflects the same canonical state any
/// thread count produces — timelines are byte-identical across worker
/// thread counts, and sampling only *reads* model state so enabling it
/// never changes a single gated metric.
///
/// ```
/// use hatric_telemetry::CounterTimeline;
///
/// let mut t = CounterTimeline::new(4, vec!["occupancy", "queue"]);
/// t.record(100, &[7, 3]);
/// t.record(200, &[9, 0]);
/// assert_eq!(t.len(), 2);
/// assert!(t.export_csv().starts_with("ts,occupancy,queue\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTimeline {
    interval: u64,
    series: Vec<&'static str>,
    samples: Vec<(u64, Vec<u64>)>,
}

impl CounterTimeline {
    /// Creates an empty timeline sampling every `interval` slices
    /// (minimum 1) with the given series names.
    #[must_use]
    pub fn new(interval: u64, series: Vec<&'static str>) -> Self {
        Self {
            interval: interval.max(1),
            series,
            samples: Vec::new(),
        }
    }

    /// The sampling interval in scheduler slices.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The series names, in column order.
    #[must_use]
    pub fn series(&self) -> &[&'static str] {
        &self.series
    }

    /// Appends one sample: the gauge value of every series at simulated
    /// time `ts`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of series.
    pub fn record(&mut self, ts: u64, values: &[u64]) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "one value per series is required"
        );
        self.samples.push((ts, values.to_vec()));
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples, oldest first: `(ts, values)` with one value
    /// per series.
    #[must_use]
    pub fn samples(&self) -> &[(u64, Vec<u64>)] {
        &self.samples
    }

    /// Discards all samples (the warmup/measured boundary does this so a
    /// timeline covers exactly the measured phase).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Serialises the timeline as Chrome trace-event JSON counter events
    /// (`"ph":"C"`): one event per series per sample, loadable in
    /// `chrome://tracing` and Perfetto, where each series renders as a
    /// stacked area chart over simulated time.
    #[must_use]
    pub fn export_chrome_counters(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (ts, values) in &self.samples {
            for (name, value) in self.series.iter().zip(values.iter()) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&format!(
                    "  {{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"args\":{{\"value\":{value}}}}}"
                ));
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Serialises the timeline as CSV: a `ts,<series...>` header followed
    /// by one row per sample.
    #[must_use]
    pub fn export_csv(&self) -> String {
        let mut out = String::from("ts");
        for name in &self.series {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (ts, values) in &self.samples {
            out.push_str(&ts.to_string());
            for value in values {
                out.push(',');
                out.push_str(&value.to_string());
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Per-remap causal attribution
// ---------------------------------------------------------------------------

/// The identity of one nested-PTE remap: the host slot of the VM whose
/// hypervisor initiated it, and that VM's 1-based remap ordinal.
///
/// Ordinals count *per VM*, not globally: a VM's shard executes on
/// exactly one worker per slice, so its ordinal sequence is identical for
/// any thread count — which keeps attribution as deterministic as the
/// counters it explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RemapId {
    /// Host slot of the initiating VM.
    pub slot: u32,
    /// 1-based ordinal among that VM's remaps.
    pub ordinal: u64,
}

impl RemapId {
    /// Builds the id of VM `slot`'s `ordinal`-th remap.
    #[must_use]
    pub fn new(slot: u32, ordinal: u64) -> Self {
        Self { slot, ordinal }
    }
}

impl fmt::Display for RemapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}#{}", self.slot, self.ordinal)
    }
}

/// The disruption one remap caused, accumulated across its consequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CausalCost {
    /// Cycles charged to *other* VMs' occupants because of this remap
    /// (shootdown target stalls on CPUs another VM occupied).  Summed
    /// over a ledger, this reconciles exactly with the owning VM's
    /// `inflicted_cycles` interference counter.
    pub victim_cycles: u64,
    /// Coherence targets (CPUs stalled) the remap generated, disruptive
    /// or not.
    pub targets: u64,
    /// Translation entries invalidated on its behalf: selective cotag
    /// invalidations, full-flush casualties and directory
    /// back-invalidations.
    pub invalidations: u64,
}

impl CausalCost {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &CausalCost) {
        self.victim_cycles += other.victim_cycles;
        self.targets += other.targets;
        self.invalidations += other.invalidations;
    }
}

/// Per-remap causal costs, keyed by [`RemapId`].
///
/// Each VM owns one ledger covering the remaps *it* initiated; merging
/// per-VM ledgers into a host aggregate never collides because every key
/// carries its owner's slot.  The BTreeMap keeps iteration (and therefore
/// `Debug` output and top-K selection tie-breaks) deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CausalLedger {
    costs: BTreeMap<RemapId, CausalCost>,
}

impl CausalLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `remap` with one coherence target (a CPU it stalled);
    /// whether the stall hit another VM's occupant is charged separately
    /// via [`CausalLedger::charge_victim_cycles`].
    pub fn charge_target(&mut self, remap: RemapId) {
        self.costs.entry(remap).or_default().targets += 1;
    }

    /// Charges `remap` with `cycles` of victim stall: cycles a shootdown
    /// target burned on a CPU occupied by a *different* VM.
    pub fn charge_victim_cycles(&mut self, remap: RemapId, cycles: u64) {
        self.costs.entry(remap).or_default().victim_cycles += cycles;
    }

    /// Charges `remap` with `entries` invalidated translation entries
    /// (selective invalidations, flush casualties or directory
    /// back-invalidations).
    pub fn charge_invalidations(&mut self, remap: RemapId, entries: u64) {
        if entries > 0 {
            self.costs.entry(remap).or_default().invalidations += entries;
        }
    }

    /// Accumulates `other` into `self`, merging costs of identical ids.
    pub fn merge(&mut self, other: &CausalLedger) {
        for (id, cost) in &other.costs {
            self.costs.entry(*id).or_default().merge(cost);
        }
    }

    /// Number of remaps with recorded costs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether no costs have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Discards all recorded costs.
    pub fn clear(&mut self) {
        self.costs.clear();
    }

    /// Iterates `(id, cost)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&RemapId, &CausalCost)> {
        self.costs.iter()
    }

    /// The sum of all per-remap costs.
    #[must_use]
    pub fn total(&self) -> CausalCost {
        let mut total = CausalCost::default();
        for cost in self.costs.values() {
            total.merge(cost);
        }
        total
    }

    /// The `k` remaps with the highest `victim_cycles`, most damaging
    /// first (ties broken by id order, so the ranking is deterministic).
    #[must_use]
    pub fn top_by_victim_cycles(&self, k: usize) -> Vec<(RemapId, CausalCost)> {
        let mut ranked: Vec<(RemapId, CausalCost)> =
            self.costs.iter().map(|(id, c)| (*id, *c)).collect();
        ranked.sort_by(|a, b| {
            b.1.victim_cycles
                .cmp(&a.1.victim_cycles)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

// ---------------------------------------------------------------------------
// Engine phase profiler (wall clock)
// ---------------------------------------------------------------------------

/// The slice engine's instrumented phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Serial frame-pool refill at the start of a slice.
    PoolRefill,
    /// Parallel per-VM simulation of the slice's shards.
    Simulate,
    /// Parallel per-bank replay of cache effects at the commit barrier.
    BankReplay,
    /// Replay of DRAM timing bookings at the commit barrier.
    BookingReplay,
    /// The serial seq-ordered pass (back-invalidations, observer writes,
    /// remote coherence targets).
    SerialCommit,
}

/// Number of instrumented phases.
pub const PHASE_COUNT: usize = 5;

impl EnginePhase {
    /// All phases, in execution order.
    pub const ALL: [EnginePhase; PHASE_COUNT] = [
        EnginePhase::PoolRefill,
        EnginePhase::Simulate,
        EnginePhase::BankReplay,
        EnginePhase::BookingReplay,
        EnginePhase::SerialCommit,
    ];

    /// Stable snake_case label (used for JSON keys).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EnginePhase::PoolRefill => "pool_refill",
            EnginePhase::Simulate => "simulate",
            EnginePhase::BankReplay => "bank_replay",
            EnginePhase::BookingReplay => "booking_replay",
            EnginePhase::SerialCommit => "serial_commit",
        }
    }

    fn index(self) -> usize {
        match self {
            EnginePhase::PoolRefill => 0,
            EnginePhase::Simulate => 1,
            EnginePhase::BankReplay => 2,
            EnginePhase::BookingReplay => 3,
            EnginePhase::SerialCommit => 4,
        }
    }
}

/// Accumulated wall-clock time per engine phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotals {
    nanos: [u64; PHASE_COUNT],
    slices: u64,
}

impl PhaseTotals {
    /// Adds `duration` to `phase`'s total.
    pub fn add(&mut self, phase: EnginePhase, duration: Duration) {
        self.nanos[phase.index()] += duration.as_nanos() as u64;
    }

    /// Counts one executed slice.
    pub fn add_slice(&mut self) {
        self.slices += 1;
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTotals) {
        for (mine, theirs) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *mine += theirs;
        }
        self.slices += other.slices;
    }

    /// Total nanoseconds spent in `phase`.
    #[must_use]
    pub fn nanos(&self, phase: EnginePhase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Total milliseconds spent in `phase`.
    #[must_use]
    pub fn millis(&self, phase: EnginePhase) -> f64 {
        self.nanos(phase) as f64 / 1e6
    }

    /// Slices executed while profiling.
    #[must_use]
    pub fn slices(&self) -> u64 {
        self.slices
    }
}

/// Process-wide phase totals, accumulated across every engine instance.
/// The bench/scenario writers read these to stamp phase totals into their
/// JSON `meta` blocks without threading profiler state through every
/// layer.  Wall-clock only — nothing in the model ever reads them.
static GLOBAL_PHASE_NANOS: [AtomicU64; PHASE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static GLOBAL_SLICES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide phase totals accumulated so far.
#[must_use]
pub fn global_phase_totals() -> PhaseTotals {
    let mut totals = PhaseTotals::default();
    for phase in EnginePhase::ALL {
        totals.nanos[phase.index()] = GLOBAL_PHASE_NANOS[phase.index()].load(Ordering::Relaxed);
    }
    totals.slices = GLOBAL_SLICES.load(Ordering::Relaxed);
    totals
}

/// Wall-clock profiler one engine instance owns: every recorded duration
/// lands both in the instance's local [`PhaseTotals`] and in the
/// process-wide totals ([`global_phase_totals`]).
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    local: PhaseTotals,
}

impl PhaseProfiler {
    /// Records `duration` against `phase`.
    pub fn record(&mut self, phase: EnginePhase, duration: Duration) {
        self.local.add(phase, duration);
        GLOBAL_PHASE_NANOS[phase.index()].fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Counts one executed slice.
    pub fn record_slice(&mut self) {
        self.local.add_slice();
        GLOBAL_SLICES.fetch_add(1, Ordering::Relaxed);
    }

    /// This instance's accumulated totals.
    #[must_use]
    pub fn totals(&self) -> &PhaseTotals {
        &self.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn single_sample_lands_in_its_power_of_two_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(100); // 2^6 <= 100 < 2^7 -> bucket 7, upper bound 127
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p99(), 127);
        assert_eq!(h.percentile(0.0), 127, "rank clamps to the first sample");
    }

    #[test]
    fn zero_samples_have_their_own_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 1);
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        h.record(1u64 << 31); // also >= 2^31, saturates
        assert_eq!(h.count(), 3);
        assert_eq!(h.p50(), u64::MAX, "saturated samples report the open bound");
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(3); // bucket 2, upper 3
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, upper 1023
        }
        assert_eq!(h.p50(), 3);
        assert_eq!(h.percentile(90.0), 3);
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.percentile(100.0), 1023);
    }

    #[test]
    fn merge_adds_bucket_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(5);
        b.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let mut c = LatencyHistogram::default();
        c.record(5);
        c.record(5);
        c.record(500);
        assert_eq!(a, c, "merge must equal recording the union");
    }

    #[test]
    fn latency_stats_merge_fieldwise() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        a.walk.record(10);
        b.shootdown.record(20);
        b.dram_queue.record(30);
        a.merge(&b);
        assert_eq!(a.walk.count(), 1);
        assert_eq!(a.shootdown.count(), 1);
        assert_eq!(a.dram_queue.count(), 1);
    }

    fn span(name: &'static str, ts: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat: "test",
            track: 0,
            ts,
            dur: 1,
            args: vec![("k", ts)],
        }
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let mut sink = TraceSink::new(3);
        for ts in 0..5 {
            sink.record(span("e", ts));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let ts: Vec<u64> = sink.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn chrome_export_has_the_expected_shape() {
        let mut sink = TraceSink::new(8);
        sink.record(span("alpha", 10));
        sink.record(TraceEvent {
            args: Vec::new(),
            ..span("beta", 20)
        });
        let json = sink.export_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"k\":10}"));
        assert!(json.contains("\"args\":{}"));
        assert!(json
            .trim_end()
            .ends_with("],\"metadata\":{\"droppedSpans\":0}}"));
    }

    #[test]
    fn chrome_export_metadata_reports_dropped_spans() {
        let mut sink = TraceSink::new(2);
        for ts in 0..5 {
            sink.record(span("e", ts));
        }
        let json = sink.export_chrome_trace();
        assert!(json
            .trim_end()
            .ends_with("\"metadata\":{\"droppedSpans\":3}}"));
    }

    #[test]
    fn timeline_records_and_exports_csv() {
        let mut t = CounterTimeline::new(0, vec!["a", "b"]);
        assert_eq!(t.interval(), 1, "interval clamps to at least 1");
        assert!(t.is_empty());
        t.record(10, &[1, 2]);
        t.record(20, &[3, 4]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.samples()[1], (20, vec![3, 4]));
        assert_eq!(t.export_csv(), "ts,a,b\n10,1,2\n20,3,4\n");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn timeline_chrome_counters_are_well_formed() {
        let mut t = CounterTimeline::new(8, vec!["occ", "queue"]);
        t.record(100, &[7, 0]);
        let json = t.export_chrome_counters();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 2);
        assert!(json.contains(
            "{\"name\":\"occ\",\"ph\":\"C\",\"ts\":100,\"pid\":0,\"args\":{\"value\":7}}"
        ));
        assert!(json.contains(
            "{\"name\":\"queue\",\"ph\":\"C\",\"ts\":100,\"pid\":0,\"args\":{\"value\":0}}"
        ));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    #[should_panic(expected = "one value per series")]
    fn timeline_rejects_mismatched_sample_width() {
        let mut t = CounterTimeline::new(1, vec!["a", "b"]);
        t.record(0, &[1]);
    }

    #[test]
    fn causal_ledger_accumulates_merges_and_ranks() {
        let early = RemapId::new(0, 1);
        let late = RemapId::new(0, 2);
        let other_vm = RemapId::new(1, 1);
        assert_eq!(early.to_string(), "vm0#1");
        let mut a = CausalLedger::new();
        a.charge_target(early);
        a.charge_victim_cycles(early, 100);
        a.charge_invalidations(early, 4);
        a.charge_invalidations(early, 0); // no-op, must not create churn
        a.charge_target(late);
        a.charge_victim_cycles(late, 900);
        let mut b = CausalLedger::new();
        b.charge_victim_cycles(other_vm, 900);
        b.charge_victim_cycles(early, 50);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let total = a.total();
        assert_eq!(total.victim_cycles, 1950);
        assert_eq!(total.targets, 2);
        assert_eq!(total.invalidations, 4);
        let top = a.top_by_victim_cycles(2);
        assert_eq!(top.len(), 2);
        // 900-cycle tie between vm0#2 and vm1#1 breaks by id order.
        assert_eq!(top[0].0, late);
        assert_eq!(top[1].0, other_vm);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total(), CausalCost::default());
    }

    #[test]
    fn phase_totals_accumulate_and_merge() {
        let mut a = PhaseTotals::default();
        a.add(EnginePhase::Simulate, Duration::from_nanos(500));
        a.add_slice();
        let mut b = PhaseTotals::default();
        b.add(EnginePhase::Simulate, Duration::from_nanos(250));
        b.add(EnginePhase::SerialCommit, Duration::from_nanos(100));
        a.merge(&b);
        assert_eq!(a.nanos(EnginePhase::Simulate), 750);
        assert_eq!(a.nanos(EnginePhase::SerialCommit), 100);
        assert_eq!(a.nanos(EnginePhase::PoolRefill), 0);
        assert_eq!(a.slices(), 1);
        assert!((a.millis(EnginePhase::Simulate) - 0.00075).abs() < 1e-12);
    }

    #[test]
    fn profiler_feeds_local_and_global_totals() {
        let before = global_phase_totals();
        let mut profiler = PhaseProfiler::default();
        profiler.record(EnginePhase::BankReplay, Duration::from_nanos(42));
        profiler.record_slice();
        assert_eq!(profiler.totals().nanos(EnginePhase::BankReplay), 42);
        let after = global_phase_totals();
        assert!(after.nanos(EnginePhase::BankReplay) >= before.nanos(EnginePhase::BankReplay) + 42);
        assert!(after.slices() > before.slices());
    }

    #[test]
    fn phase_labels_are_stable_snake_case() {
        let labels: Vec<&str> = EnginePhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec![
                "pool_refill",
                "simulate",
                "bank_replay",
                "booking_replay",
                "serial_commit"
            ]
        );
    }
}
