//! Property-based tests for the translation structures and co-tag
//! invalidation invariants.

use proptest::prelude::*;

use hatric_tlb::{StructureSizes, TranslationStructures};
use hatric_types::{AddressSpaceId, CoTag, GuestVirtPage, SystemFrame, SystemPhysAddr, VmId};

fn filled(entries: &[(u64, u64)]) -> TranslationStructures {
    let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
    for &(gvp, pte_addr) in entries {
        ts.fill_data(
            VmId::new(0),
            AddressSpaceId::new(0),
            GuestVirtPage::new(gvp),
            SystemFrame::new(gvp + 1),
            SystemPhysAddr::new(pte_addr),
            None,
        );
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invalidating by the co-tag of a page-table line removes every cached
    /// translation whose PTE lives in that line and never leaves one behind.
    #[test]
    fn cotag_invalidation_is_complete(
        entries in proptest::collection::btree_map(0u64..2_000, 0u64..(1 << 19), 1..60),
        victim_index in 0usize..60,
    ) {
        let list: Vec<(u64, u64)> = entries.into_iter().collect();
        let mut ts = filled(&list);
        let (victim_gvp, victim_pte) = list[victim_index % list.len()];
        let tag = CoTag::from_pte_addr(SystemPhysAddr::new(victim_pte), 2);
        ts.invalidate_cotag(tag);
        // The victim translation must be gone.
        prop_assert!(ts
            .lookup_data(VmId::new(0), AddressSpaceId::new(0), GuestVirtPage::new(victim_gvp))
            .is_none());
        // Any translation from a *different* page-table line that is still
        // cached must still translate correctly (no over-invalidation beyond
        // the line/co-tag granularity).
        for &(gvp, pte) in &list {
            if CoTag::from_pte_addr(SystemPhysAddr::new(pte), 2) != tag {
                if let Some(hit) =
                    ts.lookup_data(VmId::new(0), AddressSpaceId::new(0), GuestVirtPage::new(gvp))
                {
                    prop_assert_eq!(hit.spp, SystemFrame::new(gvp + 1));
                }
            }
        }
    }

    /// A full flush always empties every structure, regardless of content.
    #[test]
    fn flush_all_empties_everything(
        entries in proptest::collection::btree_map(0u64..5_000, 0u64..(1 << 19), 1..100),
    ) {
        let list: Vec<(u64, u64)> = entries.into_iter().collect();
        let mut ts = filled(&list);
        let counted = ts.flush_all();
        prop_assert_eq!(ts.occupancy(), 0);
        prop_assert!(counted.total() > 0);
        for &(gvp, _) in &list {
            prop_assert!(ts
                .lookup_data(VmId::new(0), AddressSpaceId::new(0), GuestVirtPage::new(gvp))
                .is_none());
        }
    }

    /// Lookups never return a frame that was not filled for that exact page.
    #[test]
    fn lookups_never_alias(
        entries in proptest::collection::btree_map(0u64..10_000, 0u64..(1 << 19), 1..80),
    ) {
        let list: Vec<(u64, u64)> = entries.into_iter().collect();
        let mut ts = filled(&list);
        for &(gvp, _) in &list {
            if let Some(hit) =
                ts.lookup_data(VmId::new(0), AddressSpaceId::new(0), GuestVirtPage::new(gvp))
            {
                prop_assert_eq!(hit.spp, SystemFrame::new(gvp + 1));
            }
        }
    }
}
