//! The nested TLB: a small structure caching GPP → SPP translations so the
//! nested dimension of a two-dimensional walk can be skipped (Sec. 2.1c).

use serde::{Deserialize, Serialize};

use hatric_types::{CoTag, GuestFrame, RatioStat, SystemFrame, VmId};

use crate::set_assoc::SetAssoc;

/// Configuration of the nested TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestedTlbConfig {
    /// Total number of entries (the paper models 32).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl NestedTlbConfig {
    /// The paper's 32-entry nested TLB, fully associative.
    #[must_use]
    pub fn default_32() -> Self {
        Self {
            entries: 32,
            ways: 32,
        }
    }

    /// Scales the number of entries by `factor`.
    #[must_use]
    pub fn scaled(self, factor: usize) -> Self {
        Self {
            entries: self.entries * factor,
            ways: self.ways * factor,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NestedKey {
    vm: VmId,
    gpp: GuestFrame,
}

/// A cached GPP → SPP translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedTlbEntry {
    /// The system-physical frame backing the guest-physical frame.
    pub spp: SystemFrame,
    /// Co-tag of the nested leaf (nL1) entry this translation came from.
    pub cotag: CoTag,
}

/// A nested TLB caching guest-physical to system-physical translations.
#[derive(Debug, Clone)]
pub struct NestedTlb {
    entries: SetAssoc<NestedKey, NestedTlbEntry>,
    stats: RatioStat,
    config: NestedTlbConfig,
}

impl NestedTlb {
    /// Creates an empty nested TLB.
    #[must_use]
    pub fn new(config: NestedTlbConfig) -> Self {
        Self {
            entries: SetAssoc::new(config.entries, config.ways),
            stats: RatioStat::new(),
            config,
        }
    }

    /// This nested TLB's configuration.
    #[must_use]
    pub fn config(&self) -> NestedTlbConfig {
        self.config
    }

    /// Looks up a guest-physical frame, recording hit/miss statistics.
    pub fn lookup(&mut self, vm: VmId, gpp: GuestFrame) -> Option<NestedTlbEntry> {
        let result = self.entries.lookup(&NestedKey { vm, gpp }).copied();
        self.stats.record(result.is_some());
        result
    }

    /// Probes without affecting recency or statistics.
    #[must_use]
    pub fn probe(&self, vm: VmId, gpp: GuestFrame) -> Option<NestedTlbEntry> {
        self.entries.peek(&NestedKey { vm, gpp }).copied()
    }

    /// Inserts a translation.
    pub fn fill(&mut self, vm: VmId, gpp: GuestFrame, entry: NestedTlbEntry) {
        self.entries.insert(NestedKey { vm, gpp }, entry);
    }

    /// Invalidates entries whose co-tag matches; returns how many.
    pub fn invalidate_cotag(&mut self, cotag: CoTag) -> u64 {
        self.entries.invalidate_matching(|_, e| e.cotag == cotag)
    }

    /// Flushes entries belonging to `vm`; returns how many.
    pub fn flush_vm(&mut self, vm: VmId) -> u64 {
        self.entries.invalidate_matching(|k, _| k.vm == vm)
    }

    /// Flushes everything; returns how many entries were valid.
    pub fn flush_all(&mut self) -> u64 {
        self.entries.flush()
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the structure holds no valid entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RatioStat {
        self.stats
    }

    /// Resets hit/miss statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RatioStat::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_types::SystemPhysAddr;

    fn entry(spp: u64, pte_addr: u64) -> NestedTlbEntry {
        NestedTlbEntry {
            spp: SystemFrame::new(spp),
            cotag: CoTag::from_pte_addr(SystemPhysAddr::new(pte_addr), 2),
        }
    }

    #[test]
    fn fill_and_lookup() {
        let mut ntlb = NestedTlb::new(NestedTlbConfig::default_32());
        let vm = VmId::new(0);
        ntlb.fill(vm, GuestFrame::new(8), entry(5, 0x100c00));
        assert_eq!(
            ntlb.lookup(vm, GuestFrame::new(8)).unwrap().spp,
            SystemFrame::new(5)
        );
        assert!(ntlb.lookup(vm, GuestFrame::new(9)).is_none());
    }

    #[test]
    fn cotag_invalidation() {
        let mut ntlb = NestedTlb::new(NestedTlbConfig::default_32());
        let vm = VmId::new(0);
        ntlb.fill(vm, GuestFrame::new(1), entry(5, 0x1000));
        ntlb.fill(vm, GuestFrame::new(2), entry(6, 0x1008));
        ntlb.fill(vm, GuestFrame::new(3), entry(7, 0x2000));
        let tag = CoTag::from_pte_addr(SystemPhysAddr::new(0x1000), 2);
        assert_eq!(ntlb.invalidate_cotag(tag), 2);
        assert_eq!(ntlb.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut ntlb = NestedTlb::new(NestedTlbConfig {
            entries: 4,
            ways: 4,
        });
        let vm = VmId::new(0);
        for i in 0..10 {
            ntlb.fill(vm, GuestFrame::new(i), entry(i, i * 64));
        }
        assert_eq!(ntlb.len(), 4);
    }

    #[test]
    fn flush_vm_only_targets_that_vm() {
        let mut ntlb = NestedTlb::new(NestedTlbConfig::default_32());
        ntlb.fill(VmId::new(0), GuestFrame::new(1), entry(5, 0x40));
        ntlb.fill(VmId::new(1), GuestFrame::new(1), entry(6, 0x80));
        assert_eq!(ntlb.flush_vm(VmId::new(1)), 1);
        assert!(ntlb.probe(VmId::new(0), GuestFrame::new(1)).is_some());
    }
}
