//! The MMU cache, modelled as an Intel-style *paging-structure cache* (PSC).
//!
//! A PSC entry at guest level `L` (4, 3 or 2) is tagged by the guest-virtual
//! page bits that index levels 4..=L and caches the system-physical frame of
//! the guest page-table node at level `L-1`.  A hit therefore lets the
//! hardware walker skip every guest read at levels 4..=L *and* the nested
//! walks that would have been required to locate those guest nodes
//! (Sec. 2.1b of the paper).  The deeper the hit level, the shorter the walk.
//!
//! Like TLB entries, PSC entries carry co-tags so HATRIC can invalidate them
//! selectively — something no current ISA instruction can do, which is why
//! the software baseline flushes the whole structure.

use serde::{Deserialize, Serialize};

use hatric_types::{AddressSpaceId, CoTag, GuestVirtPage, RatioStat, SystemFrame, VmId};

use crate::set_assoc::SetAssoc;

/// Guest levels at which a paging-structure cache holds entries (a hit at
/// level 2 is the most valuable: only the gL1 read and the data's nested walk
/// remain).
pub const PSC_LEVELS: [u8; 3] = [2, 3, 4];

/// Configuration of the MMU cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuCacheConfig {
    /// Total number of entries (the paper models 48).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl MmuCacheConfig {
    /// The paper's 48-entry paging-structure cache.
    #[must_use]
    pub fn default_48() -> Self {
        Self {
            entries: 48,
            ways: 4,
        }
    }

    /// Scales the number of entries by `factor`.
    #[must_use]
    pub fn scaled(self, factor: usize) -> Self {
        Self {
            entries: self.entries * factor,
            ways: self.ways,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PscKey {
    vm: VmId,
    asid: AddressSpaceId,
    level: u8,
    prefix: u64,
}

/// A paging-structure cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuCacheEntry {
    /// System-physical frame of the guest page-table node at `level - 1`.
    pub node_spp: SystemFrame,
    /// Co-tag of the nested leaf entry that located that node.
    pub nested_cotag: CoTag,
    /// Co-tag of the guest page-table entry (at `level`) this entry was
    /// derived from.
    pub guest_cotag: CoTag,
}

/// Result of a longest-prefix MMU-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuCacheHit {
    /// The guest level of the matching entry (2 is deepest/best).
    pub level: u8,
    /// The cached entry.
    pub entry: MmuCacheEntry,
}

/// The per-CPU MMU (paging-structure) cache.
#[derive(Debug, Clone)]
pub struct MmuCache {
    entries: SetAssoc<PscKey, MmuCacheEntry>,
    stats: RatioStat,
    config: MmuCacheConfig,
}

impl MmuCache {
    /// Creates an empty MMU cache.
    #[must_use]
    pub fn new(config: MmuCacheConfig) -> Self {
        Self {
            entries: SetAssoc::new(config.entries, config.ways),
            stats: RatioStat::new(),
            config,
        }
    }

    /// This MMU cache's configuration.
    #[must_use]
    pub fn config(&self) -> MmuCacheConfig {
        self.config
    }

    fn prefix(gvp: GuestVirtPage, level: u8) -> u64 {
        gvp.number() >> (9 * (u64::from(level) - 1))
    }

    /// Finds the deepest (closest-to-leaf) entry covering `gvp`.
    /// Records a single hit/miss sample per call.
    pub fn lookup_longest(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        gvp: GuestVirtPage,
    ) -> Option<MmuCacheHit> {
        for level in PSC_LEVELS {
            let key = PscKey {
                vm,
                asid,
                level,
                prefix: Self::prefix(gvp, level),
            };
            if let Some(entry) = self.entries.lookup(&key).copied() {
                self.stats.hit();
                return Some(MmuCacheHit { level, entry });
            }
        }
        self.stats.miss();
        None
    }

    /// Inserts an entry for `gvp` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not 2, 3 or 4.
    pub fn fill(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        gvp: GuestVirtPage,
        level: u8,
        entry: MmuCacheEntry,
    ) {
        assert!(PSC_LEVELS.contains(&level), "invalid PSC level {level}");
        let key = PscKey {
            vm,
            asid,
            level,
            prefix: Self::prefix(gvp, level),
        };
        self.entries.insert(key, entry);
    }

    /// Invalidates entries whose nested or guest co-tag matches; returns how
    /// many were removed.
    pub fn invalidate_cotag(&mut self, cotag: CoTag) -> u64 {
        self.entries
            .invalidate_matching(|_, e| e.nested_cotag == cotag || e.guest_cotag == cotag)
    }

    /// Flushes entries belonging to `vm`; returns how many.
    pub fn flush_vm(&mut self, vm: VmId) -> u64 {
        self.entries.invalidate_matching(|k, _| k.vm == vm)
    }

    /// Flushes everything; returns how many entries were valid.
    pub fn flush_all(&mut self) -> u64 {
        self.entries.flush()
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no valid entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RatioStat {
        self.stats
    }

    /// Resets hit/miss statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RatioStat::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_types::SystemPhysAddr;

    fn entry(spp: u64, tag_addr: u64) -> MmuCacheEntry {
        MmuCacheEntry {
            node_spp: SystemFrame::new(spp),
            nested_cotag: CoTag::from_pte_addr(SystemPhysAddr::new(tag_addr), 2),
            guest_cotag: CoTag::from_pte_addr(SystemPhysAddr::new(tag_addr + 0x40), 2),
        }
    }

    #[test]
    fn deepest_level_wins() {
        let mut psc = MmuCache::new(MmuCacheConfig::default_48());
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        let gvp = GuestVirtPage::new(0x12345);
        psc.fill(vm, asid, gvp, 4, entry(100, 0x1000));
        psc.fill(vm, asid, gvp, 2, entry(200, 0x2000));
        let hit = psc.lookup_longest(vm, asid, gvp).unwrap();
        assert_eq!(hit.level, 2);
        assert_eq!(hit.entry.node_spp, SystemFrame::new(200));
    }

    #[test]
    fn nearby_pages_share_prefix_entries() {
        let mut psc = MmuCache::new(MmuCacheConfig::default_48());
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        // Pages 0 and 1 share the same level-2 prefix (same gL1 table).
        psc.fill(vm, asid, GuestVirtPage::new(0), 2, entry(100, 0x1000));
        assert!(psc
            .lookup_longest(vm, asid, GuestVirtPage::new(1))
            .is_some());
        // Page 512 uses a different gL1 table.
        assert!(psc
            .lookup_longest(vm, asid, GuestVirtPage::new(512))
            .is_none());
    }

    #[test]
    fn cotag_invalidation_removes_entry() {
        let mut psc = MmuCache::new(MmuCacheConfig::default_48());
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        psc.fill(vm, asid, GuestVirtPage::new(7), 2, entry(1, 0x3000));
        assert_eq!(
            psc.invalidate_cotag(CoTag::from_pte_addr(SystemPhysAddr::new(0x3000), 2)),
            1
        );
        assert!(psc.is_empty());
    }

    #[test]
    fn guest_cotag_also_matches() {
        let mut psc = MmuCache::new(MmuCacheConfig::default_48());
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        psc.fill(vm, asid, GuestVirtPage::new(7), 3, entry(1, 0x3000));
        let guest_tag = CoTag::from_pte_addr(SystemPhysAddr::new(0x3040), 2);
        assert_eq!(psc.invalidate_cotag(guest_tag), 1);
    }

    #[test]
    #[should_panic(expected = "invalid PSC level")]
    fn rejects_leaf_level_fill() {
        let mut psc = MmuCache::new(MmuCacheConfig::default_48());
        psc.fill(
            VmId::new(0),
            AddressSpaceId::new(0),
            GuestVirtPage::new(0),
            1,
            entry(0, 0),
        );
    }

    #[test]
    fn stats_count_one_sample_per_lookup() {
        let mut psc = MmuCache::new(MmuCacheConfig::default_48());
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        psc.lookup_longest(vm, asid, GuestVirtPage::new(1));
        psc.fill(vm, asid, GuestVirtPage::new(1), 2, entry(1, 0));
        psc.lookup_longest(vm, asid, GuestVirtPage::new(1));
        assert_eq!(psc.stats().total(), 2);
        assert_eq!(psc.stats().hits(), 1);
    }
}
