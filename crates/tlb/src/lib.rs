//! # hatric-tlb
//!
//! The per-CPU translation structures of the simulated machine, extended
//! with HATRIC *co-tags*:
//!
//! * [`Tlb`] — set-associative L1/L2 TLBs caching GVP → SPP translations;
//! * [`MmuCache`] — an Intel-style *paging-structure cache* caching partial
//!   guest walks (GVP prefix → system frame of a guest page-table node);
//! * [`NestedTlb`] — a nested TLB caching GPP → SPP translations, used to
//!   short-circuit the nested dimension of two-dimensional walks;
//! * [`TranslationStructures`] — the per-CPU bundle of all of the above with
//!   a single lookup/fill/invalidate interface used by the core simulator.
//!
//! Every cached entry carries a [`CoTag`](hatric_types::CoTag): a truncated
//! system-physical address of the page-table entry it was filled from.  The
//! coherence layer matches invalidation traffic (a cache line of page-table
//! memory being written) against these co-tags to invalidate exactly the
//! stale entries, which is HATRIC's central mechanism (Sec. 4.1–4.2).
//!
//! ```
//! use hatric_tlb::{TlbConfig, TranslationStructures, StructureSizes};
//! use hatric_types::{AddressSpaceId, CoTag, GuestVirtPage, SystemFrame, SystemPhysAddr, VmId};
//!
//! let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
//! let vm = VmId::new(0);
//! let asid = AddressSpaceId::new(1);
//! let gvp = GuestVirtPage::new(0x42);
//! let pte_addr = SystemPhysAddr::new(0x10_0c00);
//!
//! assert!(ts.lookup_data(vm, asid, gvp).is_none());
//! ts.fill_data(vm, asid, gvp, SystemFrame::new(5), pte_addr, None);
//! assert_eq!(ts.lookup_data(vm, asid, gvp).unwrap().spp, SystemFrame::new(5));
//!
//! // A store to the nested page-table line invalidates the entry precisely
//! // (it is removed from both TLB levels).
//! let invalidated = ts.invalidate_cotag(CoTag::from_pte_addr(pte_addr, 2));
//! assert_eq!(invalidated.tlb, 2);
//! assert!(ts.lookup_data(vm, asid, gvp).is_none());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod mmu_cache;
pub mod ntlb;
pub mod set_assoc;
pub mod structures;
pub mod tlb;

pub use mmu_cache::{MmuCache, MmuCacheEntry};
pub use ntlb::{NestedTlb, NestedTlbEntry};
pub use set_assoc::SetAssoc;
pub use structures::{
    DataLookup, InvalidationCounts, StructureSizes, TlbLevel, TranslationStatsSnapshot,
    TranslationStructures, WalkAssist,
};
pub use tlb::{Tlb, TlbConfig, TlbEntry};
