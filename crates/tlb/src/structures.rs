//! The per-CPU bundle of translation structures and the walk-assist logic
//! that decides which memory references of a two-dimensional walk can be
//! skipped thanks to MMU-cache and nested-TLB hits.

use serde::{Deserialize, Serialize};

use hatric_pagetable::{NestedWalkSegment, TwoDimWalk};
use hatric_types::{
    AddressSpaceId, CoTag, GuestVirtPage, RatioStat, SystemFrame, SystemPhysAddr, VmId,
};

use crate::mmu_cache::{MmuCache, MmuCacheConfig, MmuCacheEntry, MmuCacheHit};
use crate::ntlb::{NestedTlb, NestedTlbConfig, NestedTlbEntry};
use crate::tlb::{Tlb, TlbConfig, TlbEntry};

/// Sizes of every translation structure on one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureSizes {
    /// L1 data TLB configuration.
    pub l1_tlb: TlbConfig,
    /// L2 TLB configuration.
    pub l2_tlb: TlbConfig,
    /// MMU (paging-structure) cache configuration.
    pub mmu_cache: MmuCacheConfig,
    /// Nested TLB configuration.
    pub ntlb: NestedTlbConfig,
}

impl StructureSizes {
    /// The paper's per-CPU configuration (Sec. 5.1): 64-entry L1 TLB,
    /// 512-entry L2 TLB, 48-entry paging-structure cache, 32-entry nTLB.
    #[must_use]
    pub fn haswell_like() -> Self {
        Self {
            l1_tlb: TlbConfig::l1_default(),
            l2_tlb: TlbConfig::l2_default(),
            mmu_cache: MmuCacheConfig::default_48(),
            ntlb: NestedTlbConfig::default_32(),
        }
    }

    /// Scales every structure's entry count by `factor` (Fig. 9).
    #[must_use]
    pub fn scaled(self, factor: usize) -> Self {
        Self {
            l1_tlb: self.l1_tlb.scaled(factor),
            l2_tlb: self.l2_tlb.scaled(factor),
            mmu_cache: self.mmu_cache.scaled(factor),
            ntlb: self.ntlb.scaled(factor),
        }
    }
}

impl Default for StructureSizes {
    fn default() -> Self {
        Self::haswell_like()
    }
}

/// Which TLB level satisfied a data lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// The L1 TLB hit.
    L1,
    /// The L2 TLB hit (the entry is promoted into L1).
    L2,
}

/// A successful data-TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLookup {
    /// The translated system-physical frame.
    pub spp: SystemFrame,
    /// Which level hit.
    pub level: TlbLevel,
    /// Whether the cached translation permits writes.
    pub writable: bool,
}

/// Counts of entries invalidated across the translation structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidationCounts {
    /// Entries removed from the L1 + L2 TLBs.
    pub tlb: u64,
    /// Entries removed from the MMU cache.
    pub mmu_cache: u64,
    /// Entries removed from the nested TLB.
    pub ntlb: u64,
}

impl InvalidationCounts {
    /// Total entries removed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.tlb + self.mmu_cache + self.ntlb
    }

    /// Merges another count into this one.
    pub fn merge(&mut self, other: InvalidationCounts) {
        self.tlb += other.tlb;
        self.mmu_cache += other.mmu_cache;
        self.ntlb += other.ntlb;
    }
}

/// The plan for servicing a TLB miss: which memory references of the full
/// two-dimensional walk must actually be performed given current MMU-cache
/// and nested-TLB contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkAssist {
    /// System-physical addresses the walker must read, in order.
    pub refs: Vec<SystemPhysAddr>,
    /// The MMU-cache hit level (2..=4) if any.
    pub psc_hit_level: Option<u8>,
    /// Nested-TLB hits during this walk.
    pub ntlb_hits: u32,
    /// Nested-TLB misses during this walk.
    pub ntlb_misses: u32,
    /// Whether the accessed bit of the nested leaf entry still needs to be
    /// set (i.e. the walker must notify the coherence directory that this
    /// page-table line is now cached in translation structures).
    pub sets_accessed_bit: bool,
}

impl WalkAssist {
    /// Number of memory references actually performed.
    #[must_use]
    pub fn memory_references(&self) -> usize {
        self.refs.len()
    }
}

/// Snapshot of hit/miss statistics for every structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TranslationStatsSnapshot {
    /// L1 TLB hits/misses.
    pub l1_tlb: RatioStat,
    /// L2 TLB hits/misses.
    pub l2_tlb: RatioStat,
    /// MMU cache hits/misses.
    pub mmu_cache: RatioStat,
    /// Nested TLB hits/misses.
    pub ntlb: RatioStat,
}

/// All translation structures of one CPU, with co-tag support.
#[derive(Debug, Clone)]
pub struct TranslationStructures {
    l1: Tlb,
    l2: Tlb,
    mmu: MmuCache,
    ntlb: NestedTlb,
    cotag_bytes: u8,
}

impl TranslationStructures {
    /// Creates empty structures with the given sizes and co-tag width.
    #[must_use]
    pub fn new(sizes: &StructureSizes, cotag_bytes: u8) -> Self {
        Self {
            l1: Tlb::new(sizes.l1_tlb),
            l2: Tlb::new(sizes.l2_tlb),
            mmu: MmuCache::new(sizes.mmu_cache),
            ntlb: NestedTlb::new(sizes.ntlb),
            cotag_bytes,
        }
    }

    /// Co-tag width in bytes.
    #[must_use]
    pub fn cotag_bytes(&self) -> u8 {
        self.cotag_bytes
    }

    fn cotag(&self, pte_addr: SystemPhysAddr) -> CoTag {
        CoTag::from_pte_addr(pte_addr, self.cotag_bytes)
    }

    /// Looks up a data translation in the L1 then L2 TLB.  An L2 hit is
    /// promoted into L1.
    pub fn lookup_data(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        gvp: GuestVirtPage,
    ) -> Option<DataLookup> {
        if let Some(entry) = self.l1.lookup(vm, asid, gvp) {
            return Some(DataLookup {
                spp: entry.spp,
                level: TlbLevel::L1,
                writable: entry.writable,
            });
        }
        if let Some(entry) = self.l2.lookup(vm, asid, gvp) {
            if let Some((victim_gvp, victim)) = self.l1.fill(vm, asid, gvp, entry) {
                // L1 victims are written back into L2 (exclusive-ish policy
                // keeps the victim visible at the next level).
                self.l2.fill(vm, asid, victim_gvp, victim);
            }
            return Some(DataLookup {
                spp: entry.spp,
                level: TlbLevel::L2,
                writable: entry.writable,
            });
        }
        None
    }

    /// Fills the TLBs with a data translation from a completed walk (or from
    /// a bare-metal fill when `guest_pte_addr` is `None`).
    pub fn fill_data(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        gvp: GuestVirtPage,
        spp: SystemFrame,
        nested_pte_addr: SystemPhysAddr,
        guest_pte_addr: Option<SystemPhysAddr>,
    ) {
        let entry = TlbEntry {
            spp,
            nested_cotag: self.cotag(nested_pte_addr),
            guest_cotag: guest_pte_addr.map(|a| self.cotag(a)),
            writable: true,
        };
        if let Some((victim_gvp, victim)) = self.l1.fill(vm, asid, gvp, entry) {
            self.l2.fill(vm, asid, victim_gvp, victim);
        }
        self.l2.fill(vm, asid, gvp, entry);
    }

    fn ntlb_translate(
        &mut self,
        vm: VmId,
        segment: &NestedWalkSegment,
        refs: &mut Vec<SystemPhysAddr>,
        hits: &mut u32,
        misses: &mut u32,
    ) {
        if self.ntlb.lookup(vm, segment.gpp).is_some() {
            *hits += 1;
        } else {
            *misses += 1;
            refs.extend(segment.step_addrs.iter().copied());
            self.ntlb.fill(
                vm,
                segment.gpp,
                NestedTlbEntry {
                    spp: segment.spp,
                    cotag: self.cotag(segment.leaf_pte_addr()),
                },
            );
        }
    }

    /// Services a TLB miss: consults the MMU cache and nested TLB to decide
    /// which of the walk's 24 references are actually needed, fills every
    /// structure (MMU cache levels 4..2, nTLB segments, and both TLBs with
    /// the final translation), and returns the plan.
    ///
    /// `accessed_bit_was_clear` should be `true` when the nested leaf entry's
    /// accessed bit was clear before this walk — in that case the walker must
    /// inform the coherence directory that the line now feeds translation
    /// structures (Sec. 4.2, "Directory entry changes").
    pub fn service_miss(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        walk: &TwoDimWalk,
        accessed_bit_was_clear: bool,
    ) -> WalkAssist {
        let mut refs = Vec::with_capacity(walk.memory_references());
        let mut ntlb_hits = 0;
        let mut ntlb_misses = 0;

        let psc_hit = self.mmu.lookup_longest(vm, asid, walk.gvp);
        let start_level = match psc_hit {
            Some(MmuCacheHit { level, .. }) => level - 1,
            None => 4,
        };

        for (idx, step) in walk.guest_steps.iter().enumerate() {
            if step.level > start_level {
                continue;
            }
            // The first performed level after a PSC hit already knows its
            // node's system frame; deeper levels must translate the node's
            // guest-physical frame through the nTLB or the nested table.
            let first_after_psc = psc_hit.is_some() && step.level == start_level;
            if !first_after_psc {
                self.ntlb_translate(
                    vm,
                    &step.table_segment,
                    &mut refs,
                    &mut ntlb_hits,
                    &mut ntlb_misses,
                );
            }
            refs.push(step.guest_pte_addr);
            let _ = idx;
        }

        // Final nested walk for the data frame.
        self.ntlb_translate(
            vm,
            &walk.data_segment,
            &mut refs,
            &mut ntlb_hits,
            &mut ntlb_misses,
        );

        // Fill the paging-structure cache: an entry at level L points at the
        // guest node of level L-1, whose location the walk just established.
        for step in &walk.guest_steps {
            if step.level == 1 {
                continue;
            }
            // The node at `step.level - 1` is the table the *next* guest step
            // reads; its system frame is that step's table segment result.
            if let Some(next) = walk.guest_steps.iter().find(|s| s.level == step.level - 1) {
                self.mmu.fill(
                    vm,
                    asid,
                    walk.gvp,
                    step.level,
                    MmuCacheEntry {
                        node_spp: next.table_segment.spp,
                        nested_cotag: self.cotag(next.table_segment.leaf_pte_addr()),
                        guest_cotag: self.cotag(step.guest_pte_addr),
                    },
                );
            }
        }

        // Finally fill the TLBs with the requested translation.
        self.fill_data(
            vm,
            asid,
            walk.gvp,
            walk.spp,
            walk.nested_leaf_pte_addr(),
            Some(walk.guest_leaf_pte_addr()),
        );

        WalkAssist {
            refs,
            psc_hit_level: psc_hit.map(|h| h.level),
            ntlb_hits,
            ntlb_misses,
            sets_accessed_bit: accessed_bit_was_clear,
        }
    }

    /// Invalidates every entry (in all structures) whose co-tag matches the
    /// co-tag of the given page-table cache line.
    pub fn invalidate_cotag(&mut self, cotag: CoTag) -> InvalidationCounts {
        InvalidationCounts {
            tlb: self.l1.invalidate_cotag(cotag) + self.l2.invalidate_cotag(cotag),
            mmu_cache: self.mmu.invalidate_cotag(cotag),
            ntlb: self.ntlb.invalidate_cotag(cotag),
        }
    }

    /// Invalidates TLB entries only (UNITD-style hardware coherence, which
    /// does not extend to MMU caches or nested TLBs); the other structures
    /// are flushed wholesale.
    pub fn invalidate_cotag_tlb_only(&mut self, cotag: CoTag) -> InvalidationCounts {
        InvalidationCounts {
            tlb: self.l1.invalidate_cotag(cotag) + self.l2.invalidate_cotag(cotag),
            mmu_cache: self.mmu.flush_all(),
            ntlb: self.ntlb.flush_all(),
        }
    }

    /// Flushes every structure (the software-coherence baseline's VM-exit
    /// path); returns how many entries were lost.
    pub fn flush_all(&mut self) -> InvalidationCounts {
        InvalidationCounts {
            tlb: self.l1.flush_all() + self.l2.flush_all(),
            mmu_cache: self.mmu.flush_all(),
            ntlb: self.ntlb.flush_all(),
        }
    }

    /// Flushes every entry belonging to `vm`.
    pub fn flush_vm(&mut self, vm: VmId) -> InvalidationCounts {
        InvalidationCounts {
            tlb: self.l1.flush_vm(vm) + self.l2.flush_vm(vm),
            mmu_cache: self.mmu.flush_vm(vm),
            ntlb: self.ntlb.flush_vm(vm),
        }
    }

    /// Total number of valid entries across all structures.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.l1.len() + self.l2.len() + self.mmu.len() + self.ntlb.len()
    }

    /// Hit/miss statistics for every structure.
    #[must_use]
    pub fn stats(&self) -> TranslationStatsSnapshot {
        TranslationStatsSnapshot {
            l1_tlb: self.l1.stats(),
            l2_tlb: self.l2.stats(),
            mmu_cache: self.mmu.stats(),
            ntlb: self.ntlb.stats(),
        }
    }

    /// Resets all hit/miss statistics.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.mmu.reset_stats();
        self.ntlb.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_pagetable::{GuestPageTable, NestedPageTable, TwoDimWalker};
    use hatric_types::GuestFrame;

    fn setup_walk(gvp: u64, gpp: u64, spp: u64) -> (GuestPageTable, NestedPageTable, TwoDimWalk) {
        let mut guest = GuestPageTable::new(GuestFrame::new(0x10_000));
        let mut nested = NestedPageTable::new(SystemFrame::new(0x80_000));
        guest.map(GuestVirtPage::new(gvp), GuestFrame::new(gpp));
        nested.map(GuestFrame::new(gpp), SystemFrame::new(spp));
        for node in guest.node_frames() {
            nested.map(node, SystemFrame::new(node.number() + 0x100_000));
        }
        let walk = TwoDimWalker::walk(GuestVirtPage::new(gvp), &guest, &nested).unwrap();
        (guest, nested, walk)
    }

    #[test]
    fn cold_miss_performs_full_walk() {
        let (_, _, walk) = setup_walk(0x42, 0x77, 0x99);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
        let assist = ts.service_miss(VmId::new(0), AddressSpaceId::new(0), &walk, true);
        assert_eq!(assist.memory_references(), 24);
        assert!(assist.psc_hit_level.is_none());
        assert!(assist.sets_accessed_bit);
    }

    #[test]
    fn second_miss_to_neighbour_page_is_cheap() {
        // After walking page P, a walk of P+1 should hit the level-2 PSC
        // entry and the nTLB for the data region's table, leaving only the
        // gL1 read plus the data nested walk (or fewer).
        let mut guest = GuestPageTable::new(GuestFrame::new(0x10_000));
        let mut nested = NestedPageTable::new(SystemFrame::new(0x80_000));
        for page in [0x42u64, 0x43u64] {
            guest.map(GuestVirtPage::new(page), GuestFrame::new(0x100 + page));
            nested.map(
                GuestFrame::new(0x100 + page),
                SystemFrame::new(0x9000 + page),
            );
        }
        for node in guest.node_frames() {
            nested.map(node, SystemFrame::new(node.number() + 0x100_000));
        }
        let vm = VmId::new(0);
        let asid = AddressSpaceId::new(0);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);

        let walk1 = TwoDimWalker::walk(GuestVirtPage::new(0x42), &guest, &nested).unwrap();
        let first = ts.service_miss(vm, asid, &walk1, true);
        assert_eq!(first.memory_references(), 24);

        let walk2 = TwoDimWalker::walk(GuestVirtPage::new(0x43), &guest, &nested).unwrap();
        let second = ts.service_miss(vm, asid, &walk2, true);
        assert_eq!(second.psc_hit_level, Some(2));
        assert!(
            second.memory_references() <= 5,
            "got {}",
            second.memory_references()
        );
    }

    #[test]
    fn tlb_hit_after_fill() {
        let (_, _, walk) = setup_walk(0x42, 0x77, 0x99);
        let vm = VmId::new(0);
        let asid = AddressSpaceId::new(0);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
        ts.service_miss(vm, asid, &walk, true);
        let hit = ts.lookup_data(vm, asid, GuestVirtPage::new(0x42)).unwrap();
        assert_eq!(hit.spp, SystemFrame::new(0x99));
        assert_eq!(hit.level, TlbLevel::L1);
    }

    #[test]
    fn cotag_invalidation_after_walk_removes_translation() {
        let (_, nested, walk) = setup_walk(0x42, 0x77, 0x99);
        let vm = VmId::new(0);
        let asid = AddressSpaceId::new(0);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
        ts.service_miss(vm, asid, &walk, true);
        // The hypervisor remaps GPP 0x77: the store hits the nested leaf
        // entry, whose co-tag must invalidate the TLB entry.
        let pte_addr = nested.leaf_entry_addr(GuestFrame::new(0x77)).unwrap();
        let counts = ts.invalidate_cotag(CoTag::from_pte_addr(pte_addr, 2));
        assert!(counts.tlb >= 1);
        assert!(ts.lookup_data(vm, asid, GuestVirtPage::new(0x42)).is_none());
    }

    #[test]
    fn flush_all_counts_everything() {
        let (_, _, walk) = setup_walk(0x42, 0x77, 0x99);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
        ts.service_miss(VmId::new(0), AddressSpaceId::new(0), &walk, true);
        let occupancy = ts.occupancy() as u64;
        let counts = ts.flush_all();
        assert_eq!(counts.total(), occupancy);
        assert_eq!(ts.occupancy(), 0);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let vm = VmId::new(0);
        let asid = AddressSpaceId::new(0);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
        // Fill many pages so early ones fall out of the small L1 but stay in L2.
        for i in 0..128u64 {
            ts.fill_data(
                vm,
                asid,
                GuestVirtPage::new(i),
                SystemFrame::new(i),
                SystemPhysAddr::new(i * 8),
                None,
            );
        }
        let lookup = ts.lookup_data(vm, asid, GuestVirtPage::new(0)).unwrap();
        assert_eq!(lookup.level, TlbLevel::L2);
        let again = ts.lookup_data(vm, asid, GuestVirtPage::new(0)).unwrap();
        assert_eq!(again.level, TlbLevel::L1);
    }

    #[test]
    fn unitd_style_invalidation_flushes_mmu_and_ntlb() {
        let (_, nested, walk) = setup_walk(0x42, 0x77, 0x99);
        let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
        ts.service_miss(VmId::new(0), AddressSpaceId::new(0), &walk, true);
        let pte_addr = nested.leaf_entry_addr(GuestFrame::new(0x77)).unwrap();
        let counts = ts.invalidate_cotag_tlb_only(CoTag::from_pte_addr(pte_addr, 2));
        assert!(counts.tlb >= 1);
        assert!(
            counts.mmu_cache >= 1,
            "MMU cache should be flushed wholesale"
        );
        assert!(counts.ntlb >= 1, "nTLB should be flushed wholesale");
    }
}
