//! A generic set-associative lookup structure with true-LRU replacement.
//!
//! All translation structures in this crate (TLBs, MMU caches, nested TLBs)
//! are instances of [`SetAssoc`].  Entries are stored per set in MRU-first
//! order; sets are selected by hashing the key, which is adequate for a
//! behavioural simulator (the real index functions differ per structure but
//! do not change the conclusions the paper draws).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A set-associative container mapping keys to values with LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssoc<K, V> {
    sets: Vec<Vec<(K, V)>>,
    ways: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> SetAssoc<K, V> {
    /// Creates a structure with `entries` total entries organised as
    /// `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ways` is zero, or if `ways` does not divide
    /// `entries`.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0, "structure must have at least one entry");
        assert!(ways > 0, "structure must have at least one way");
        assert!(
            entries.is_multiple_of(ways),
            "ways ({ways}) must divide total entries ({entries})"
        );
        let num_sets = entries / ways;
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
        }
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of currently valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no entries are valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn set_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.sets.len()
    }

    /// Looks up `key`, promoting it to MRU on a hit.
    pub fn lookup(&mut self, key: &K) -> Option<&V> {
        let set = self.set_index(key);
        let pos = self.sets[set].iter().position(|(k, _)| k == key)?;
        let entry = self.sets[set].remove(pos);
        self.sets[set].insert(0, entry);
        self.sets[set].first().map(|(_, v)| v)
    }

    /// Looks up `key` without changing recency (probe).
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key`, returning the evicted victim if the set
    /// overflowed.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        let set = self.set_index(&key);
        if let Some(pos) = self.sets[set].iter().position(|(k, _)| *k == key) {
            self.sets[set].remove(pos);
        }
        self.sets[set].insert(0, (key, value));
        if self.sets[set].len() > self.ways {
            self.sets[set].pop()
        } else {
            None
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let set = self.set_index(key);
        let pos = self.sets[set].iter().position(|(k, _)| k == key)?;
        Some(self.sets[set].remove(pos).1)
    }

    /// Removes every entry for which `pred` returns `true`; returns how many
    /// entries were removed.
    pub fn invalidate_matching<F: FnMut(&K, &V) -> bool>(&mut self, mut pred: F) -> u64 {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|(k, v)| !pred(k, v));
            removed += (before - set.len()) as u64;
        }
        removed
    }

    /// Removes every entry; returns how many entries were valid.
    pub fn flush(&mut self) -> u64 {
        let count = self.len() as u64;
        for set in &mut self.sets {
            set.clear();
        }
        count
    }

    /// Iterates over all valid entries (no recency effect).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.sets.iter().flatten().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut c: SetAssoc<u64, u64> = SetAssoc::new(8, 2);
        assert!(c.insert(1, 10).is_none());
        assert_eq!(c.lookup(&1), Some(&10));
        assert_eq!(c.lookup(&2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // Fully associative (1 set) makes eviction order easy to verify.
        let mut c: SetAssoc<u64, u64> = SetAssoc::new(2, 2);
        c.insert(1, 1);
        c.insert(2, 2);
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(&1).is_some());
        let victim = c.insert(3, 3);
        assert_eq!(victim, Some((2, 2)));
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&2).is_none());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c: SetAssoc<u64, u64> = SetAssoc::new(2, 2);
        c.insert(1, 1);
        c.insert(1, 100);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), Some(&100));
    }

    #[test]
    fn invalidate_matching_counts() {
        let mut c: SetAssoc<u64, u64> = SetAssoc::new(16, 4);
        for i in 0..10 {
            c.insert(i, i * 10);
        }
        let removed = c.invalidate_matching(|_, v| *v >= 50);
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn flush_empties() {
        let mut c: SetAssoc<u64, u64> = SetAssoc::new(16, 4);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.flush(), 10);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "ways")]
    fn rejects_nondividing_ways() {
        let _: SetAssoc<u64, u64> = SetAssoc::new(10, 4);
    }

    #[test]
    fn capacity_is_respected_overall() {
        let mut c: SetAssoc<u64, u64> = SetAssoc::new(64, 4);
        for i in 0..1000 {
            c.insert(i, i);
        }
        assert!(c.len() <= c.capacity());
    }
}
