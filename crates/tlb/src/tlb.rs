//! Set-associative TLBs caching GVP → SPP translations, with co-tags.

use serde::{Deserialize, Serialize};

use hatric_types::{AddressSpaceId, CoTag, GuestVirtPage, RatioStat, SystemFrame, VmId};

use crate::set_assoc::SetAssoc;

/// Configuration of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbConfig {
    /// 64-entry, 4-way L1 data TLB (the paper's per-CPU L1 TLB).
    #[must_use]
    pub fn l1_default() -> Self {
        Self {
            entries: 64,
            ways: 4,
        }
    }

    /// 512-entry, 8-way L2 TLB.
    #[must_use]
    pub fn l2_default() -> Self {
        Self {
            entries: 512,
            ways: 8,
        }
    }

    /// Scales the number of entries by `factor` (Fig. 9 sweeps 1×/2×/4×).
    #[must_use]
    pub fn scaled(self, factor: usize) -> Self {
        Self {
            entries: self.entries * factor,
            ways: self.ways,
        }
    }
}

/// The lookup key of a TLB entry: translations are private to a VM and a
/// guest address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbKey {
    /// Owning virtual machine.
    pub vm: VmId,
    /// Guest address space (process) within the VM.
    pub asid: AddressSpaceId,
    /// Guest-virtual page.
    pub gvp: GuestVirtPage,
}

/// A cached GVP → SPP translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// System-physical frame the page maps to.
    pub spp: SystemFrame,
    /// Co-tag derived from the nested leaf (nL1) entry's address.
    pub nested_cotag: CoTag,
    /// Co-tag derived from the guest leaf (gL1) entry's address, when the
    /// fill came from a two-dimensional walk (bare-metal fills have none).
    pub guest_cotag: Option<CoTag>,
    /// Whether the translation maps a writable page.
    pub writable: bool,
}

/// A set-associative TLB with co-tagged entries.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: SetAssoc<TlbKey, TlbEntry>,
    stats: RatioStat,
    config: TlbConfig,
}

impl Tlb {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        Self {
            entries: SetAssoc::new(config.entries, config.ways),
            stats: RatioStat::new(),
            config,
        }
    }

    /// This TLB's configuration.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up a translation, recording hit/miss statistics.
    pub fn lookup(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        gvp: GuestVirtPage,
    ) -> Option<TlbEntry> {
        let key = TlbKey { vm, asid, gvp };
        let result = self.entries.lookup(&key).copied();
        self.stats.record(result.is_some());
        result
    }

    /// Probes for a translation without affecting recency or statistics.
    #[must_use]
    pub fn probe(&self, vm: VmId, asid: AddressSpaceId, gvp: GuestVirtPage) -> Option<TlbEntry> {
        self.entries.peek(&TlbKey { vm, asid, gvp }).copied()
    }

    /// Inserts a translation, returning the evicted victim (if any).
    pub fn fill(
        &mut self,
        vm: VmId,
        asid: AddressSpaceId,
        gvp: GuestVirtPage,
        entry: TlbEntry,
    ) -> Option<(GuestVirtPage, TlbEntry)> {
        self.entries
            .insert(TlbKey { vm, asid, gvp }, entry)
            .map(|(k, v)| (k.gvp, v))
    }

    /// Invalidates a single page's translation (`invlpg`-style), returning
    /// whether an entry was removed.
    pub fn invalidate_page(&mut self, vm: VmId, asid: AddressSpaceId, gvp: GuestVirtPage) -> bool {
        self.entries.remove(&TlbKey { vm, asid, gvp }).is_some()
    }

    /// Invalidates every entry whose nested or guest co-tag matches `cotag`;
    /// returns the number of entries invalidated.  This is the HATRIC
    /// coherence-message path.
    pub fn invalidate_cotag(&mut self, cotag: CoTag) -> u64 {
        self.entries
            .invalidate_matching(|_, e| e.nested_cotag == cotag || e.guest_cotag == Some(cotag))
    }

    /// Flushes every entry belonging to `vm`; returns the number flushed.
    pub fn flush_vm(&mut self, vm: VmId) -> u64 {
        self.entries.invalidate_matching(|k, _| k.vm == vm)
    }

    /// Flushes the whole TLB; returns the number of entries flushed.
    pub fn flush_all(&mut self) -> u64 {
        self.entries.flush()
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the TLB holds no valid entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RatioStat {
        self.stats
    }

    /// Resets hit/miss statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RatioStat::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_types::SystemPhysAddr;

    fn entry(spp: u64, pte_addr: u64) -> TlbEntry {
        TlbEntry {
            spp: SystemFrame::new(spp),
            nested_cotag: CoTag::from_pte_addr(SystemPhysAddr::new(pte_addr), 2),
            guest_cotag: None,
            writable: true,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::l1_default());
        let (vm, asid, gvp) = (VmId::new(0), AddressSpaceId::new(0), GuestVirtPage::new(9));
        assert!(tlb.lookup(vm, asid, gvp).is_none());
        tlb.fill(vm, asid, gvp, entry(5, 0x1000));
        assert_eq!(tlb.lookup(vm, asid, gvp).unwrap().spp, SystemFrame::new(5));
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 1);
    }

    #[test]
    fn different_asid_misses() {
        let mut tlb = Tlb::new(TlbConfig::l1_default());
        let vm = VmId::new(0);
        tlb.fill(
            vm,
            AddressSpaceId::new(0),
            GuestVirtPage::new(9),
            entry(5, 0x1000),
        );
        assert!(tlb
            .lookup(vm, AddressSpaceId::new(1), GuestVirtPage::new(9))
            .is_none());
    }

    #[test]
    fn cotag_invalidation_hits_matching_entries_only() {
        let mut tlb = Tlb::new(TlbConfig::l1_default());
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        // Two PTEs in the same cache line share a co-tag; a third does not.
        tlb.fill(vm, asid, GuestVirtPage::new(1), entry(10, 0x2000));
        tlb.fill(vm, asid, GuestVirtPage::new(2), entry(11, 0x2008));
        tlb.fill(vm, asid, GuestVirtPage::new(3), entry(12, 0x2040));
        let tag = CoTag::from_pte_addr(SystemPhysAddr::new(0x2000), 2);
        assert_eq!(tlb.invalidate_cotag(tag), 2);
        assert!(tlb.probe(vm, asid, GuestVirtPage::new(3)).is_some());
    }

    #[test]
    fn flush_vm_spares_other_vms() {
        let mut tlb = Tlb::new(TlbConfig::l1_default());
        let asid = AddressSpaceId::new(0);
        tlb.fill(VmId::new(0), asid, GuestVirtPage::new(1), entry(1, 0x40));
        tlb.fill(VmId::new(1), asid, GuestVirtPage::new(2), entry(2, 0x80));
        assert_eq!(tlb.flush_vm(VmId::new(0)), 1);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 16,
            ways: 4,
        });
        let (vm, asid) = (VmId::new(0), AddressSpaceId::new(0));
        for i in 0..100 {
            tlb.fill(vm, asid, GuestVirtPage::new(i), entry(i, i * 64));
        }
        assert!(tlb.len() <= 16);
    }

    #[test]
    fn scaled_config_multiplies_entries() {
        let cfg = TlbConfig::l2_default().scaled(4);
        assert_eq!(cfg.entries, 2048);
        assert_eq!(cfg.ways, 8);
    }
}
