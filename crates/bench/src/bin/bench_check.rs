//! CI regression gate over the committed bench baselines.
//!
//! One generic loop over the scenario registry: every scenario with a
//! committed baseline (`Scenario::baseline_stem`) is re-run at
//! `Scale::Bench` — the exact scale and seeds the benches use — and its
//! gated metrics (`Scenario::gated_metrics`, smaller-is-better) are
//! compared against the committed `BENCH_*.json` by the same diff engine
//! the `scenarios diff` observatory exposes
//! ([`hatric_host::diff::diff_reports`] with [`DiffOptions::gate`]):
//!
//! * no gated metric may regress by more than 10% on any
//!   (config, mechanism) row.
//!
//! The NUMA scenario additionally asserts its headline claim while it runs
//! (HATRIC victim slowdown ≤ software's in every configuration, gap
//! widening monotonically with the remote-access ratio) — a model change
//! that breaks the claim aborts the gate outright.
//!
//! The simulator is bit-deterministic for a fixed seed, so on an unchanged
//! tree the fresh numbers equal the baselines exactly; the 10% headroom is
//! for intentional model changes, which must re-commit the JSON files when
//! they move a metric past it.  The gate fails closed: a fresh row with no
//! committed baseline (missing/corrupt JSON, renamed sweep point) is an
//! error too — re-run the benches and commit the regenerated files.
//!
//! Run with: `cargo run --release -p hatric-bench --bin bench_check`

use hatric_bench::{baseline_path, collect_records};
use hatric_host::diff::{diff_reports, DiffOptions, MetricDelta};
use hatric_host::scenario::{registry, ScenarioReport};

/// Allowed relative regression before the gate fails.
const TOLERANCE: f64 = 0.10;

/// The parallel slice engine's determinism contract, enforced on the
/// freshly collected `host_scale` report: rows that differ only in their
/// thread count must carry bit-identical *model* metrics (the timing
/// columns are machine-dependent and exempt).
fn check_thread_determinism(report: &ScenarioReport) -> usize {
    const MODEL_METRICS: [&str; 4] = [
        "host_runtime_cycles",
        "accesses",
        "aggressor_remaps",
        "host_disrupted_cycles",
    ];
    let mut drifted = 0;
    for row in &report.rows {
        let vcpus = row.number("vcpus").expect("host_scale rows carry vcpus");
        let base = report
            .rows
            .iter()
            .find(|r| r.number("vcpus") == Some(vcpus))
            .expect("the first row of a vcpus group exists");
        for metric in MODEL_METRICS {
            if row.number(metric) != base.number(metric) {
                drifted += 1;
                println!(
                    "  DRIFTED  host_scale/{}: {metric} {:?} != {:?} (threads must not \
                     change model metrics)",
                    row.label(),
                    row.number(metric),
                    base.number(metric)
                );
            }
        }
    }
    drifted
}

fn main() {
    let mut deltas: Vec<(String, MetricDelta)> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    let mut thread_drift = 0usize;

    for scenario in registry() {
        let Some(path) = baseline_path(scenario.name()) else {
            continue; // table-only scenario, nothing committed to gate
        };
        let report = collect_records(scenario.name(), false);
        if scenario.name() == "host_scale" {
            thread_drift += check_thread_determinism(&report);
        }
        let baseline = std::fs::read_to_string(&path)
            .map_err(|err| eprintln!("bench_check: cannot read baseline {path}: {err}"))
            .ok()
            .and_then(|text| ScenarioReport::from_json(scenario.name(), &text));
        let Some(baseline) = baseline else {
            // No parseable baseline at all: every fresh gated row is
            // uncovered, which the fail-closed verdict below rejects.
            for row in &report.rows {
                for &metric in scenario.gated_metrics() {
                    missing.push(format!(
                        "{}/{}/{} {metric}",
                        scenario.name(),
                        row.label(),
                        row.mechanism()
                    ));
                }
            }
            continue;
        };
        // The same engine `scenarios diff` runs, in gate mode: baseline as
        // run A, the fresh report as run B, smaller-is-better on exactly
        // the gated metrics.
        let diff = diff_reports(
            &baseline,
            &report,
            scenario.gated_metrics(),
            DiffOptions::gate(TOLERANCE),
        );
        deltas.extend(
            diff.deltas
                .into_iter()
                .map(|d| (scenario.name().to_string(), d)),
        );
        // Both alignment failures disable part of the gate: a baseline row
        // the fresh run no longer produces, and a fresh row the committed
        // baseline has never seen.
        missing.extend(
            diff.missing
                .iter()
                .map(|m| format!("{}/{m}", scenario.name())),
        );
        missing.extend(
            diff.extra
                .iter()
                .map(|row| format!("{}/{row}: no committed baseline row", scenario.name())),
        );
    }

    // ----- verdict ---------------------------------------------------------
    let mut regressions = 0;
    for (scenario, delta) in &deltas {
        let verdict = if delta.regressed {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{verdict:>9}  {:<72} baseline {:>14.3}  current {:>14.3}  ({:+.1}%)",
            format!("{scenario}/{} {}", delta.row, delta.metric),
            delta.a,
            delta.b,
            delta.delta_percent()
        );
    }
    for label in &missing {
        println!("  MISSING  {label}: no committed baseline row");
    }
    if !missing.is_empty() {
        // Fail closed: a missing row means a baseline file is absent or
        // stale (e.g. a renamed sweep point), which would otherwise
        // silently disable that part of the gate.
        let baselines: Vec<String> = registry()
            .iter()
            .filter_map(|s| s.baseline_stem())
            .map(|stem| format!("BENCH_{stem}.json"))
            .collect();
        eprintln!(
            "bench_check: {} row(s) have no committed baseline — regenerate the \
             scenario benches with `cargo bench -p hatric-bench` and commit {}",
            missing.len(),
            baselines.join(" / ")
        );
        std::process::exit(1);
    }
    if thread_drift > 0 {
        eprintln!(
            "bench_check: {thread_drift} model metric(s) drifted across thread counts — \
             the slice engine's determinism contract is broken"
        );
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} metric(s) regressed beyond {:.0}% — \
             investigate, or re-commit the baselines if the change is intended",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: {} metrics within {:.0}% of committed baselines",
        deltas.len(),
        TOLERANCE * 100.0
    );
}
