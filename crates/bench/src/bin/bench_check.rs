//! CI regression gate over the committed bench baselines.
//!
//! Re-runs the multi-VM interference sweep (`BENCH_multivm.json`), the
//! migration-storm scenarios (`BENCH_migration.json`) and the NUMA socket
//! sweep (`BENCH_numa.json`) at the exact scale and seeds the benches use,
//! then compares the fresh numbers against the committed baselines:
//!
//! * victim slowdown vs ideal may not regress by more than 10% on any
//!   (pressure|scenario|config, mechanism) row;
//! * migration downtime may not regress by more than 10% on any row.
//!
//! The NUMA sweep additionally asserts its headline claim while it runs
//! (HATRIC victim slowdown ≤ software's in every configuration, gap
//! widening monotonically with the remote-access ratio) — a model change
//! that breaks the claim aborts the gate outright.
//!
//! The simulator is bit-deterministic for a fixed seed, so on an unchanged
//! tree the fresh numbers equal the baselines exactly; the 10% headroom is
//! for intentional model changes, which must re-commit the JSON files when
//! they move a metric past it.  The gate fails closed: a fresh row with no
//! committed baseline (missing/corrupt JSON, renamed scenario) is an error
//! too — re-run the benches and commit the regenerated files.
//!
//! Run with: `cargo run --release -p hatric-bench --bin bench_check`

use hatric_bench::{
    collect_migration_records, collect_multivm_records, collect_numa_records, migration_json_path,
    multivm_json_path, numa_json_path, parse_json_records, record_field,
};

/// Allowed relative regression before the gate fails.
const TOLERANCE: f64 = 0.10;

/// One comparison: a labelled metric, its baseline and its fresh value.
struct Check {
    label: String,
    baseline: f64,
    current: f64,
}

impl Check {
    /// A regression is `current` exceeding `baseline` by more than the
    /// tolerance.  Metrics where smaller is better (slowdowns, downtime)
    /// all fit this shape.  Tiny baselines (ideal rows are exactly 1.0,
    /// downtime is always positive) need no absolute-epsilon special case.
    fn regressed(&self) -> bool {
        self.current > self.baseline * (1.0 + TOLERANCE)
    }
}

fn baseline_records(path: &str) -> Vec<Vec<(String, String)>> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_json_records(&text),
        Err(err) => {
            eprintln!("bench_check: cannot read baseline {path}: {err}");
            Vec::new()
        }
    }
}

fn find_baseline<'a>(
    baselines: &'a [Vec<(String, String)>],
    key_field: &str,
    key: &str,
    mechanism: &str,
) -> Option<&'a [(String, String)]> {
    baselines
        .iter()
        .find(|r| {
            record_field(r, key_field) == Some(key)
                && record_field(r, "mechanism") == Some(mechanism)
        })
        .map(Vec::as_slice)
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();
    let mut missing: Vec<String> = Vec::new();

    // ----- multi-VM interference sweep vs BENCH_multivm.json ---------------
    let multivm_baseline = baseline_records(&multivm_json_path());
    for record in collect_multivm_records(false) {
        let label = format!("multivm/{}/{}", record.pressure, record.mechanism);
        match find_baseline(
            &multivm_baseline,
            "pressure",
            &record.pressure,
            &record.mechanism,
        )
        .and_then(|b| record_field(b, "victim_slowdown_vs_ideal"))
        .and_then(|v| v.parse::<f64>().ok())
        {
            Some(baseline) => checks.push(Check {
                label: format!("{label} victim-slowdown"),
                baseline,
                current: record.victim_slowdown_vs_ideal,
            }),
            None => missing.push(label),
        }
    }

    // ----- migration storm vs BENCH_migration.json -------------------------
    let migration_baseline = baseline_records(&migration_json_path());
    for record in collect_migration_records(false) {
        let label = format!("migration/{}/{}", record.scenario, record.mechanism);
        let baseline = find_baseline(
            &migration_baseline,
            "scenario",
            &record.scenario,
            &record.mechanism,
        );
        let slowdown = baseline
            .and_then(|b| record_field(b, "victim_slowdown_vs_ideal"))
            .and_then(|v| v.parse::<f64>().ok());
        let downtime = baseline
            .and_then(|b| record_field(b, "downtime_cycles"))
            .and_then(|v| v.parse::<f64>().ok());
        match (slowdown, downtime) {
            (Some(slowdown), Some(downtime)) => {
                checks.push(Check {
                    label: format!("{label} victim-slowdown"),
                    baseline: slowdown,
                    current: record.victim_slowdown_vs_ideal,
                });
                checks.push(Check {
                    label: format!("{label} downtime-cycles"),
                    baseline: downtime,
                    current: record.downtime_cycles as f64,
                });
            }
            _ => missing.push(label),
        }
    }

    // ----- NUMA socket sweep vs BENCH_numa.json ----------------------------
    let numa_baseline = baseline_records(&numa_json_path());
    for record in collect_numa_records(false) {
        let label = format!("numa/{}/{}", record.config, record.mechanism);
        match find_baseline(&numa_baseline, "config", &record.config, &record.mechanism)
            .and_then(|b| record_field(b, "victim_slowdown_vs_ideal"))
            .and_then(|v| v.parse::<f64>().ok())
        {
            Some(baseline) => checks.push(Check {
                label: format!("{label} victim-slowdown"),
                baseline,
                current: record.victim_slowdown_vs_ideal,
            }),
            None => missing.push(label),
        }
    }

    // ----- verdict ---------------------------------------------------------
    let mut regressions = 0;
    for check in &checks {
        let delta = if check.baseline == 0.0 {
            0.0
        } else {
            (check.current / check.baseline - 1.0) * 100.0
        };
        let verdict = if check.regressed() {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{verdict:>9}  {:<48} baseline {:>14.3}  current {:>14.3}  ({delta:+.1}%)",
            check.label, check.baseline, check.current
        );
    }
    for label in &missing {
        println!("  MISSING  {label}: no committed baseline row");
    }
    if !missing.is_empty() {
        // Fail closed: a missing row means a baseline file is absent or
        // stale (e.g. a renamed scenario), which would otherwise silently
        // disable that part of the gate.
        eprintln!(
            "bench_check: {} row(s) have no committed baseline — regenerate with \
             `cargo bench -p hatric-bench --bench multivm_interference --bench \
             migration_downtime --bench numa_contention` and commit \
             BENCH_multivm.json / BENCH_migration.json / BENCH_numa.json",
            missing.len()
        );
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} metric(s) regressed beyond {:.0}% — \
             investigate, or re-commit the baselines if the change is intended",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: {} metrics within {:.0}% of committed baselines",
        checks.len(),
        TOLERANCE * 100.0
    );
}
