//! CI regression gate over the committed bench baselines.
//!
//! One generic loop over the scenario registry: every scenario with a
//! committed baseline (`Scenario::baseline_stem`) is re-run at
//! `Scale::Bench` — the exact scale and seeds the benches use — and each
//! of its gated metrics (`Scenario::gated_metrics`, smaller-is-better) is
//! compared row by row against the committed `BENCH_*.json`:
//!
//! * no gated metric may regress by more than 10% on any
//!   (config, mechanism) row.
//!
//! The NUMA scenario additionally asserts its headline claim while it runs
//! (HATRIC victim slowdown ≤ software's in every configuration, gap
//! widening monotonically with the remote-access ratio) — a model change
//! that breaks the claim aborts the gate outright.
//!
//! The simulator is bit-deterministic for a fixed seed, so on an unchanged
//! tree the fresh numbers equal the baselines exactly; the 10% headroom is
//! for intentional model changes, which must re-commit the JSON files when
//! they move a metric past it.  The gate fails closed: a fresh row with no
//! committed baseline (missing/corrupt JSON, renamed sweep point) is an
//! error too — re-run the benches and commit the regenerated files.
//!
//! Run with: `cargo run --release -p hatric-bench --bin bench_check`

use hatric_bench::{baseline_path, collect_records, parse_json_records, record_field};
use hatric_host::scenario::registry;

/// Allowed relative regression before the gate fails.
const TOLERANCE: f64 = 0.10;

/// One comparison: a labelled metric, its baseline and its fresh value.
struct Check {
    label: String,
    baseline: f64,
    current: f64,
}

impl Check {
    /// A regression is `current` exceeding `baseline` by more than the
    /// tolerance.  Metrics where smaller is better (slowdowns, downtime)
    /// all fit this shape.  Tiny baselines (ideal rows are exactly 1.0,
    /// downtime is always positive) need no absolute-epsilon special case.
    fn regressed(&self) -> bool {
        self.current > self.baseline * (1.0 + TOLERANCE)
    }
}

fn baseline_records(path: &str) -> Vec<Vec<(String, String)>> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_json_records(&text),
        Err(err) => {
            eprintln!("bench_check: cannot read baseline {path}: {err}");
            Vec::new()
        }
    }
}

fn find_baseline<'a>(
    baselines: &'a [Vec<(String, String)>],
    key_field: &str,
    key: &str,
    mechanism: &str,
) -> Option<&'a [(String, String)]> {
    baselines
        .iter()
        .find(|r| {
            record_field(r, key_field) == Some(key)
                && record_field(r, "mechanism") == Some(mechanism)
        })
        .map(Vec::as_slice)
}

/// The parallel slice engine's determinism contract, enforced on the
/// freshly collected `host_scale` report: rows that differ only in their
/// thread count must carry bit-identical *model* metrics (the timing
/// columns are machine-dependent and exempt).
fn check_thread_determinism(report: &hatric_host::ScenarioReport) -> usize {
    const MODEL_METRICS: [&str; 4] = [
        "host_runtime_cycles",
        "accesses",
        "aggressor_remaps",
        "host_disrupted_cycles",
    ];
    let mut drifted = 0;
    for row in &report.rows {
        let vcpus = row.number("vcpus").expect("host_scale rows carry vcpus");
        let base = report
            .rows
            .iter()
            .find(|r| r.number("vcpus") == Some(vcpus))
            .expect("the first row of a vcpus group exists");
        for metric in MODEL_METRICS {
            if row.number(metric) != base.number(metric) {
                drifted += 1;
                println!(
                    "  DRIFTED  host_scale/{}: {metric} {:?} != {:?} (threads must not \
                     change model metrics)",
                    row.label(),
                    row.number(metric),
                    base.number(metric)
                );
            }
        }
    }
    drifted
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    let mut thread_drift = 0usize;

    for scenario in registry() {
        let Some(path) = baseline_path(scenario.name()) else {
            continue; // table-only scenario, nothing committed to gate
        };
        let baselines = baseline_records(&path);
        let report = collect_records(scenario.name(), false);
        if scenario.name() == "host_scale" {
            thread_drift += check_thread_determinism(&report);
        }
        for row in &report.rows {
            let baseline = find_baseline(&baselines, row.label_key(), row.label(), row.mechanism());
            for &metric in scenario.gated_metrics() {
                let label = format!(
                    "{}/{}/{} {metric}",
                    scenario.name(),
                    row.label(),
                    row.mechanism()
                );
                let current = row
                    .number(metric)
                    .unwrap_or_else(|| panic!("{label}: gated metrics are numeric"));
                match baseline
                    .and_then(|b| record_field(b, metric))
                    .and_then(|v| v.parse::<f64>().ok())
                {
                    Some(baseline) => checks.push(Check {
                        label,
                        baseline,
                        current,
                    }),
                    None => missing.push(label),
                }
            }
        }
    }

    // ----- verdict ---------------------------------------------------------
    let mut regressions = 0;
    for check in &checks {
        let delta = if check.baseline == 0.0 {
            0.0
        } else {
            (check.current / check.baseline - 1.0) * 100.0
        };
        let verdict = if check.regressed() {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{verdict:>9}  {:<72} baseline {:>14.3}  current {:>14.3}  ({delta:+.1}%)",
            check.label, check.baseline, check.current
        );
    }
    for label in &missing {
        println!("  MISSING  {label}: no committed baseline row");
    }
    if !missing.is_empty() {
        // Fail closed: a missing row means a baseline file is absent or
        // stale (e.g. a renamed sweep point), which would otherwise
        // silently disable that part of the gate.
        let baselines: Vec<String> = registry()
            .iter()
            .filter_map(|s| s.baseline_stem())
            .map(|stem| format!("BENCH_{stem}.json"))
            .collect();
        eprintln!(
            "bench_check: {} row(s) have no committed baseline — regenerate the \
             scenario benches with `cargo bench -p hatric-bench` and commit {}",
            missing.len(),
            baselines.join(" / ")
        );
        std::process::exit(1);
    }
    if thread_drift > 0 {
        eprintln!(
            "bench_check: {thread_drift} model metric(s) drifted across thread counts — \
             the slice engine's determinism contract is broken"
        );
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} metric(s) regressed beyond {:.0}% — \
             investigate, or re-commit the baselines if the change is intended",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: {} metrics within {:.0}% of committed baselines",
        checks.len(),
        TOLERANCE * 100.0
    );
}
