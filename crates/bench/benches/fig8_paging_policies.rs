//! Figure 8: runtime vs KVM paging policy (lru / +migration daemon / +prefetch).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig8};
use hatric::{CoherenceMechanism, PagingKnobs, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig8::run(&figure_params());
    println!("\n{}", fig8::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    let labels = fig8::policy_labels();
    for (i, knobs) in PagingKnobs::fig8_sweep().into_iter().enumerate() {
        group.bench_function(
            format!("hatric_tunkrank_{}", labels[i].replace('&', "and_")),
            |b| {
                b.iter(|| {
                    execute(
                        &RunSpec::new(WorkloadKind::Tunkrank, CoherenceMechanism::Hatric)
                            .with_paging(knobs),
                        &kernel_params(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
