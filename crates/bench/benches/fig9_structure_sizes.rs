//! Figure 9: runtime vs translation-structure sizes (1x / 2x / 4x).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig9};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{collect_records, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    // The fig9 scenario's Scale::Bench sizing is the figure scale this
    // bench has always regenerated at.
    let _ = collect_records("fig9", true);
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for scale in fig9::SCALE_SWEEP {
        group.bench_function(format!("hatric_canneal_{scale}x_structures"), |b| {
            b.iter(|| {
                execute(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Hatric)
                        .with_structure_scale(scale),
                    &kernel_params(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
