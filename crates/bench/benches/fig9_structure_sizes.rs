//! Figure 9: runtime vs translation-structure sizes (1x / 2x / 4x).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig9};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig9::run(&figure_params());
    println!("\n{}", fig9::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for scale in fig9::SCALE_SWEEP {
        group.bench_function(format!("hatric_canneal_{scale}x_structures"), |b| {
            b.iter(|| {
                execute(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Hatric)
                        .with_structure_scale(scale),
                    &kernel_params(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
