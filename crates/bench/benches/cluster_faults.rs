//! The cluster tier under a deterministic fault storm: an engineered host
//! crash mid-migration (aborting a migration source *and* a migration
//! destination, the latter with a bounded retry), a stuck pre-copy that
//! force-escalates to post-copy at the non-convergence timeout,
//! crash-driven cold restarts through the placement policy, and a seeded
//! background schedule of link degradation, blackouts and DRAM brownouts.
//!
//! The recorded claim: under the *identical* fault storm, HATRIC recovers
//! no slower than the software path — aggregate victim slowdown and the
//! p99 of recovery downtime (handed-off migration blackouts ∪ restart
//! windows) both gate `hatric ≤ software` (asserted by the scenario and,
//! against the committed baseline, by `bench_check`).
//!
//! Results land in `BENCH_faults.json` (or `$HATRIC_BENCH_FAULTS_JSON`).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_records, skip_tables, write_baseline};
use hatric_host::experiments::{cluster_faults, ClusterFaultsParams};
use hatric_host::CoherenceMechanism;

fn bench(c: &mut Criterion) {
    let report = if skip_tables() {
        None
    } else {
        Some(collect_records("cluster_faults", true))
    };

    let mut group = c.benchmark_group("cluster_faults");
    group.sample_size(10);
    group.bench_function("faulted_4host_storm_kernel", |b| {
        b.iter(|| {
            let params = ClusterFaultsParams::quick();
            let mut cluster = params.build_cluster(CoherenceMechanism::Hatric);
            cluster.run(params.base.warmup_epochs, params.base.measured_epochs)
        })
    });
    group.bench_function("faulted_4host_storm_table", |b| {
        b.iter(|| cluster_faults::run(&ClusterFaultsParams::quick()))
    });
    group.finish();

    if let Some(report) = report {
        match write_baseline(&report) {
            Ok(path) => println!("\nwrote {} fault rows to {path}", report.rows.len()),
            Err(err) => eprintln!("could not write faults JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
