//! Simulator-throughput scaling of the parallel slice engine: one HATRIC
//! host swept over total vCPUs × slice-engine thread counts.
//!
//! Two claims are recorded per run:
//!
//! * **determinism** — model metrics of rows differing only in their
//!   thread count are bit-identical (asserted here and, against the
//!   committed baseline, by `bench_check`);
//! * **throughput** — the `accesses_per_sec` column shows the wall-clock
//!   speedup multithreading buys on the running machine (machine-dependent
//!   and therefore never gated).
//!
//! Results land in `BENCH_scale.json` (or `$HATRIC_BENCH_SCALE_JSON`).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_records, skip_tables, write_baseline};
use hatric_host::experiments::HostScaleParams;
use hatric_host::ConsolidatedHost;

fn bench(c: &mut Criterion) {
    let report = if skip_tables() {
        None
    } else {
        Some(collect_records("host_scale", true))
    };
    if let Some(report) = &report {
        // Cross-check the determinism contract right where the baseline is
        // produced: same vcpus, different threads ⇒ same model metrics.
        for row in &report.rows {
            let vcpus = row.number("vcpus").expect("host_scale rows carry vcpus");
            let base = report
                .rows
                .iter()
                .find(|r| r.number("vcpus") == Some(vcpus))
                .expect("the first row of a vcpus group exists");
            for metric in ["host_runtime_cycles", "accesses", "aggressor_remaps"] {
                assert_eq!(
                    row.number(metric),
                    base.number(metric),
                    "{}: model metric {metric} drifted across thread counts",
                    row.label()
                );
            }
        }
    }

    let mut group = c.benchmark_group("host_scale");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let label = format!("host_8vcpu_{threads}thread_kernel");
        group.bench_function(label, move |b| {
            b.iter(|| {
                let params = HostScaleParams::quick();
                let mut host = ConsolidatedHost::new(params.host_config(8, threads))
                    .expect("bench configurations are valid");
                host.run(params.warmup_slices, params.measured_slices)
            })
        });
    }
    group.finish();

    if let Some(report) = report {
        match write_baseline(&report) {
            Ok(path) => println!("\nwrote {} scale rows to {path}", report.rows.len()),
            Err(err) => eprintln!("could not write scale JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
