//! Figure 10: multiprogrammed SPEC mixes — weighted runtime and fairness.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute_mix, fig10, ExperimentParams};
use hatric::{CoherenceMechanism, MemoryMode, SpecMix};
use hatric_bench::{kernel_params, mix_count, skip_tables};

fn figure_params_fig10() -> ExperimentParams {
    // Mixes run 16 apps each; keep traces a little shorter than the other
    // figures so the full sweep stays fast.
    ExperimentParams {
        vcpus: 16,
        fast_pages: 1_024,
        warmup: 1_000,
        measured: 1_500,
        seed: hatric::DEFAULT_SEED,
    }
}

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig10::run(&figure_params_fig10(), mix_count());
    println!("\n{}", fig10::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    let mix = SpecMix::generate(1, hatric::DEFAULT_SEED).remove(0);
    for (label, mechanism) in [
        ("software", CoherenceMechanism::Software),
        ("hatric", CoherenceMechanism::Hatric),
    ] {
        let mix = mix.clone();
        group.bench_function(format!("one_mix_{label}"), move |b| {
            b.iter(|| execute_mix(&mix, mechanism, MemoryMode::Paged, &kernel_params()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
