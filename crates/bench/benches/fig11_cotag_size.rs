//! Figure 11 (right): co-tag width sweep (1 / 2 / 3 bytes).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig11};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig11::run_cotag_sweep(&figure_params());
    println!("\n{}", fig11::format_cotag(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig11_cotag");
    group.sample_size(10);
    for bytes in fig11::COTAG_SWEEP {
        group.bench_function(format!("hatric_facesim_{bytes}byte_cotag"), |b| {
            b.iter(|| {
                execute(
                    &RunSpec::new(WorkloadKind::Facesim, CoherenceMechanism::Hatric)
                        .with_cotag_bytes(bytes),
                    &kernel_params(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
