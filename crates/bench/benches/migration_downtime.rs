//! Live-migration downtime and co-located-victim slowdown under each
//! translation-coherence mechanism, over three migration scenarios
//! (plain pre-copy, slow link, migration + balloon).
//!
//! Besides the Criterion-timed kernels, this bench emits its results as
//! JSON (`BENCH_migration.json`, or `$HATRIC_BENCH_MIGRATION_JSON` if
//! set) so the repository accumulates a downtime trajectory the CI
//! regression gate (`bench_check`) compares against.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_migration_records, skip_tables, write_migration_json};
use hatric_host::experiments::migration_storm::MigrationStormParams;
use hatric_host::ConsolidatedHost;

fn bench(c: &mut Criterion) {
    let records = if skip_tables() {
        Vec::new()
    } else {
        collect_migration_records(true)
    };

    let mut group = c.benchmark_group("migration");
    group.sample_size(10);
    for mechanism in [
        hatric_host::CoherenceMechanism::Software,
        hatric_host::CoherenceMechanism::Hatric,
    ] {
        let label = format!("storm_4vm_{mechanism:?}_kernel");
        group.bench_function(label, move |b| {
            b.iter(|| {
                let params = MigrationStormParams::quick();
                let mut host = ConsolidatedHost::new(params.host_config(mechanism))
                    .expect("bench configurations are valid");
                host.run(params.warmup_slices, params.measured_slices)
            })
        });
    }
    group.finish();

    if !records.is_empty() {
        match write_migration_json(&records) {
            Ok(path) => println!("\nwrote {} migration records to {path}", records.len()),
            Err(err) => eprintln!("could not write migration JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
