//! Live-migration downtime and co-located-victim slowdown under each
//! translation-coherence mechanism, over three migration scenarios
//! (plain pre-copy, slow link, migration + balloon).
//!
//! Besides the Criterion-timed kernels, this bench emits its results as
//! JSON (`BENCH_migration.json`, or `$HATRIC_BENCH_MIGRATION_JSON` if
//! set) so the repository accumulates a downtime trajectory the CI
//! regression gate (`bench_check`) compares against.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_records, skip_tables, write_baseline};
use hatric_host::experiments::migration_storm::MigrationStormParams;
use hatric_host::ConsolidatedHost;

fn bench(c: &mut Criterion) {
    // The scenario sweep lives in the scenario registry
    // (`hatric_host::scenario`), so the CI regression gate (`bench_check`)
    // re-runs exactly what this bench committed as its baseline.
    let report = if skip_tables() {
        None
    } else {
        Some(collect_records("migration_storm", true))
    };

    let mut group = c.benchmark_group("migration");
    group.sample_size(10);
    for mechanism in [
        hatric_host::CoherenceMechanism::Software,
        hatric_host::CoherenceMechanism::Hatric,
    ] {
        let label = format!("storm_4vm_{mechanism:?}_kernel");
        group.bench_function(label, move |b| {
            b.iter(|| {
                let params = MigrationStormParams::quick();
                let mut host = ConsolidatedHost::new(params.host_config(mechanism))
                    .expect("bench configurations are valid");
                host.run(params.warmup_slices, params.measured_slices)
            })
        });
    }
    group.finish();

    if let Some(report) = report {
        match write_baseline(&report) {
            Ok(path) => println!("\nwrote {} migration rows to {path}", report.rows.len()),
            Err(err) => eprintln!("could not write migration JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
