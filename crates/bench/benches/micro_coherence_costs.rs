//! Microbenchmarks of the structures on the translation-coherence critical
//! path (the Sec. 3.2 anatomy): TLB fills and lookups, co-tag invalidation,
//! full flushes, directory-mediated page-table writes, and the per-remap
//! planning cost of each protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_cache::SharerSet;
use hatric_cache::{CacheHierarchy, CacheHierarchyConfig, PtKind};
use hatric_coherence::{CoherenceCosts, CoherenceMechanism, RemapContext};
use hatric_tlb::{StructureSizes, TranslationStructures};
use hatric_types::{
    AddressSpaceId, CacheLineAddr, CoTag, CpuId, GuestVirtPage, SystemFrame, SystemPhysAddr, VmId,
};

fn filled_structures() -> TranslationStructures {
    let mut ts = TranslationStructures::new(&StructureSizes::haswell_like(), 2);
    let vm = VmId::new(0);
    let asid = AddressSpaceId::new(0);
    for i in 0..512u64 {
        ts.fill_data(
            vm,
            asid,
            GuestVirtPage::new(i),
            SystemFrame::new(i + 1),
            SystemPhysAddr::new(0x10_0000 + i * 8),
            None,
        );
    }
    ts
}

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_structures");
    group.bench_function("tlb_lookup_hit", |b| {
        let mut ts = filled_structures();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            ts.lookup_data(VmId::new(0), AddressSpaceId::new(0), GuestVirtPage::new(i))
        })
    });
    group.bench_function("cotag_selective_invalidation", |b| {
        let mut ts = filled_structures();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % 512;
            ts.invalidate_cotag(CoTag::from_pte_addr(
                SystemPhysAddr::new(0x10_0000 + i * 8),
                2,
            ))
        })
    });
    group.bench_function("full_flush", |b| {
        b.iter_batched(
            filled_structures,
            |mut ts| ts.flush_all(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_directory");
    group.bench_function("pt_line_write_with_16_sharers", |b| {
        let mut caches = CacheHierarchy::new(CacheHierarchyConfig::haswell_like(16));
        let line = CacheLineAddr::new(0x40_0000);
        for cpu in 0..16 {
            caches.read(CpuId::new(cpu), line);
        }
        caches.mark_pt_line(line, PtKind::Nested);
        b.iter(|| caches.write(CpuId::new(0), line))
    });
    group.finish();
}

fn bench_protocol_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_protocol");
    let mut sharers = SharerSet::empty();
    for cpu in 0..16 {
        sharers.add(CpuId::new(cpu));
    }
    let ctx = RemapContext {
        initiator: CpuId::new(0),
        vm: VmId::new(0),
        vm_cpus: (0..16).map(CpuId::new).collect(),
        running_guest: (0..16).map(CpuId::new).collect(),
        sharers,
    };
    for mechanism in [
        CoherenceMechanism::Software,
        CoherenceMechanism::Hatric,
        CoherenceMechanism::UnitdPlusPlus,
        CoherenceMechanism::Ideal,
    ] {
        let protocol = mechanism.build(CoherenceCosts::haswell_measured());
        let label = format!("plan_remap_{mechanism:?}");
        let ctx = ctx.clone();
        group.bench_function(label, move |b| b.iter(|| protocol.plan_remap(&ctx)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_structures,
    bench_directory,
    bench_protocol_planning
);
criterion_main!(benches);
