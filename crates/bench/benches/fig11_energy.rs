//! Figure 11 (left): performance-energy scatter of HATRIC vs the software
//! baseline across big-memory and small-footprint workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig11};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let points = fig11::run_scatter(&figure_params());
    println!("\n{}", fig11::format_scatter(&points));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig11_energy");
    group.sample_size(10);
    group.bench_function("hatric_small_footprint_kernel", |b| {
        b.iter(|| {
            execute(
                &RunSpec::new(WorkloadKind::SmallFootprint, CoherenceMechanism::Hatric),
                &kernel_params(),
            )
        })
    });
    group.bench_function("software_small_footprint_kernel", |b| {
        b.iter(|| {
            execute(
                &RunSpec::new(WorkloadKind::SmallFootprint, CoherenceMechanism::Software),
                &kernel_params(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
