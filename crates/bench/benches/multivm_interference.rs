//! Multi-VM consolidated-host interference: victim slowdown under each
//! translation-coherence mechanism, swept over the aggressor's paging
//! pressure (which sets its remap rate).
//!
//! Besides the Criterion-timed kernels, this bench re-emits the `multivm`
//! scenario's `Scale::Bench` report as JSON (`BENCH_multivm.json`, or
//! `$HATRIC_BENCH_MULTIVM_JSON` / legacy `$HATRIC_BENCH_JSON` if set) so
//! the repository accumulates a perf trajectory for the host subsystem.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_records, multivm_quick_params, skip_tables, write_baseline};
use hatric_host::ConsolidatedHost;

fn bench(c: &mut Criterion) {
    // The pressure sweep lives in the scenario registry
    // (`hatric_host::scenario`), so the CI regression gate (`bench_check`)
    // re-runs exactly what this bench committed as its baseline.
    let report = if skip_tables() {
        None
    } else {
        Some(collect_records("multivm", true))
    };

    let mut group = c.benchmark_group("multivm");
    group.sample_size(10);
    for mechanism in [
        hatric_host::CoherenceMechanism::Software,
        hatric_host::CoherenceMechanism::Hatric,
    ] {
        let label = format!("host_4vm_{mechanism:?}_kernel");
        group.bench_function(label, move |b| {
            b.iter(|| {
                let params = multivm_quick_params();
                let mut host = ConsolidatedHost::new(params.host_config(mechanism))
                    .expect("bench configurations are valid");
                host.run(params.warmup_slices, params.measured_slices)
            })
        });
    }
    group.finish();

    if let Some(report) = report {
        match write_baseline(&report) {
            Ok(path) => println!("\nwrote {} multivm rows to {path}", report.rows.len()),
            Err(err) => eprintln!("could not write multivm JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
