//! Multi-VM consolidated-host interference: victim slowdown under each
//! translation-coherence mechanism, swept over the aggressor's paging
//! pressure (which sets its remap rate).
//!
//! Besides the Criterion-timed kernels, this bench emits its results as
//! JSON (`BENCH_multivm.json`, or `$HATRIC_BENCH_JSON` if set) so the
//! repository accumulates a perf trajectory for the host subsystem.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{multivm_quick_params, skip_tables, write_multivm_json, MultiVmJsonRecord};
use hatric_host::experiments::multivm::{self, MultiVmParams};
use hatric_host::ConsolidatedHost;

/// The aggressor pressure sweep: the machine and the victims stay fixed
/// while the aggressor's footprint-to-quota ratio grows, so its remap rate
/// rises from mild to severe.
fn pressure_sweep() -> Vec<(&'static str, MultiVmParams)> {
    let base = MultiVmParams::default_scale();
    vec![
        ("mild", base.with_aggressor_footprint_factor(0.4)),
        ("moderate", base),
        ("severe", base.with_aggressor_footprint_factor(2.0)),
    ]
}

fn regenerate_tables() -> Vec<MultiVmJsonRecord> {
    let mut records = Vec::new();
    for (pressure, params) in pressure_sweep() {
        let rows = multivm::run(&params);
        println!(
            "\naggressor pressure: {pressure} (fast_pages = {})",
            params.fast_pages
        );
        println!("{}", multivm::format_table(&rows));
        for row in &rows {
            records.push(MultiVmJsonRecord {
                pressure: pressure.to_string(),
                mechanism: format!("{:?}", row.mechanism),
                victim_slowdown_vs_ideal: row.victim_slowdown_vs_ideal,
                victim_disrupted_cycles: row.victim_disrupted_cycles,
                aggressor_remaps: row.aggressor_remaps,
                ipis: row.report.host.coherence.ipis,
                coherence_vm_exits: row.report.host.coherence.coherence_vm_exits,
                host_runtime_cycles: row.report.host.runtime_cycles(),
            });
        }
    }
    records
}

fn bench(c: &mut Criterion) {
    let records = if skip_tables() {
        Vec::new()
    } else {
        regenerate_tables()
    };

    let mut group = c.benchmark_group("multivm");
    group.sample_size(10);
    for mechanism in [
        hatric_host::CoherenceMechanism::Software,
        hatric_host::CoherenceMechanism::Hatric,
    ] {
        let label = format!("host_4vm_{mechanism:?}_kernel");
        group.bench_function(label, move |b| {
            b.iter(|| {
                let params = multivm_quick_params();
                let mut host = ConsolidatedHost::new(params.host_config(mechanism))
                    .expect("bench configurations are valid");
                host.run(params.warmup_slices, params.measured_slices)
            })
        });
    }
    group.finish();

    if !records.is_empty() {
        match write_multivm_json(&records) {
            Ok(path) => println!("\nwrote {} multivm records to {path}", records.len()),
            Err(err) => eprintln!("could not write multivm JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
