//! Figure 13: HATRIC vs UNITD++ (performance and energy).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig13};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig13::run(&figure_params());
    println!("\n{}", fig13::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    for (label, mechanism) in [
        ("unitd_pp", CoherenceMechanism::UnitdPlusPlus),
        ("hatric", CoherenceMechanism::Hatric),
    ] {
        group.bench_function(format!("{label}_data_caching_kernel"), |b| {
            b.iter(|| {
                execute(
                    &RunSpec::new(WorkloadKind::DataCaching, mechanism),
                    &kernel_params(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
