//! The cluster tier under concurrent inter-host migrations: a fleet of
//! consolidated hosts swept over the simultaneously in-flight migration
//! count, with churn-driven placement running throughout.
//!
//! Two claims are recorded per run:
//!
//! * **bounded damage** — HATRIC's aggregate victim slowdown and p99
//!   migration downtime stay at or below the software path's in every
//!   sweep point (asserted by the scenario and, against the committed
//!   baseline, by `bench_check`);
//! * **monotonic degradation** — the software path's victim slowdown
//!   grows with every added concurrent migration.
//!
//! Results land in `BENCH_cluster.json` (or `$HATRIC_BENCH_CLUSTER_JSON`).

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_records, skip_tables, write_baseline};
use hatric_host::experiments::{cluster_churn, ClusterChurnParams};
use hatric_host::CoherenceMechanism;

fn bench(c: &mut Criterion) {
    let report = if skip_tables() {
        None
    } else {
        Some(collect_records("cluster_churn", true))
    };

    let mut group = c.benchmark_group("cluster_churn");
    group.sample_size(10);
    group.bench_function("fleet_4host_4mig_kernel", |b| {
        b.iter(|| {
            let params = ClusterChurnParams::quick();
            let mut cluster = params.build_cluster(CoherenceMechanism::Hatric, 4);
            cluster.run(params.warmup_epochs, params.measured_epochs)
        })
    });
    group.bench_function("fleet_4host_churn_table", |b| {
        b.iter(|| cluster_churn::run(&ClusterChurnParams::quick(), 2))
    });
    group.finish();

    if let Some(report) = report {
        match write_baseline(&report) {
            Ok(path) => println!("\nwrote {} cluster rows to {path}", report.rows.len()),
            Err(err) => eprintln!("could not write cluster JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
