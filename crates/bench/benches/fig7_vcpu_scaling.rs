//! Figure 7: runtime vs vCPU count for sw / hatric / ideal.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig7};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig7::run(&figure_params());
    println!("\n{}", fig7::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for vcpus in [2usize, 4usize] {
        group.bench_function(format!("hatric_graph500_{vcpus}_vcpus"), |b| {
            b.iter(|| {
                execute(
                    &RunSpec::new(WorkloadKind::Graph500, CoherenceMechanism::Hatric),
                    &kernel_params().with_vcpus(vcpus),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
