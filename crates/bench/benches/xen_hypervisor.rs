//! Section 6 Xen results: HATRIC's benefit on a Xen-like hypervisor.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec};
use hatric::{CoherenceMechanism, HypervisorKind, WorkloadKind};
use hatric_bench::{collect_records, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    // The xen scenario's Scale::Bench sizing is the figure scale this
    // bench has always regenerated at.
    let _ = collect_records("xen", true);
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("xen");
    group.sample_size(10);
    for (label, mechanism) in [
        ("xen_software", CoherenceMechanism::SoftwareXen),
        ("xen_hatric", CoherenceMechanism::Hatric),
    ] {
        group.bench_function(format!("{label}_canneal_kernel"), |b| {
            b.iter(|| {
                execute(
                    &RunSpec::new(WorkloadKind::Canneal, mechanism)
                        .with_hypervisor(HypervisorKind::Xen),
                    &kernel_params(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
