//! Figure 2: die-stacked paging potential vs software translation coherence.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig2};
use hatric::{CoherenceMechanism, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig2::run(&figure_params());
    println!("\n{}", fig2::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("curr_best_data_caching_kernel", |b| {
        b.iter(|| {
            execute(
                &RunSpec::new(WorkloadKind::DataCaching, CoherenceMechanism::Software),
                &kernel_params(),
            )
        })
    });
    group.bench_function("achievable_data_caching_kernel", |b| {
        b.iter(|| {
            execute(
                &RunSpec::new(WorkloadKind::DataCaching, CoherenceMechanism::Ideal),
                &kernel_params(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
