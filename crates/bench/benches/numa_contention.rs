//! NUMA multi-socket contention: victim slowdown under each
//! translation-coherence mechanism, swept over the socket count — and with
//! it the remote-access ratio that interleaved allocation produces.
//!
//! Besides the Criterion-timed kernels, this bench emits its results as
//! JSON (`BENCH_numa.json`, or `$HATRIC_BENCH_NUMA_JSON` if set) so the
//! repository accumulates a perf trajectory for the NUMA subsystem.  The
//! sweep itself asserts the headline claim (HATRIC never worse, gap
//! widening with the remote ratio), so a model change that breaks it fails
//! here and in `bench_check`.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric_bench::{collect_records, skip_tables, write_baseline};
use hatric_host::experiments::NumaContentionParams;
use hatric_host::ConsolidatedHost;

fn bench(c: &mut Criterion) {
    // The socket sweep lives in the scenario registry
    // (`hatric_host::scenario`), so the CI regression gate (`bench_check`)
    // re-runs exactly what this bench committed as its baseline.
    let report = if skip_tables() {
        None
    } else {
        Some(collect_records("numa_contention", true))
    };

    let mut group = c.benchmark_group("numa");
    group.sample_size(10);
    for mechanism in [
        hatric_host::CoherenceMechanism::Software,
        hatric_host::CoherenceMechanism::Hatric,
    ] {
        let label = format!("host_2socket_{mechanism:?}_kernel");
        group.bench_function(label, move |b| {
            b.iter(|| {
                let params = NumaContentionParams::quick().with_sockets(2);
                let mut host = ConsolidatedHost::new(params.host_config(mechanism))
                    .expect("bench configurations are valid");
                host.run(params.warmup_slices, params.measured_slices)
            })
        });
    }
    group.finish();

    if let Some(report) = report {
        match write_baseline(&report) {
            Ok(path) => println!("\nwrote {} numa rows to {path}", report.rows.len()),
            Err(err) => eprintln!("could not write numa JSON: {err}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
