//! Figure 12: coherence-directory design ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use hatric::experiments::{common::execute, common::RunSpec, fig12};
use hatric::{CoherenceMechanism, DesignVariant, WorkloadKind};
use hatric_bench::{figure_params, kernel_params, skip_tables};

fn regenerate_figure() {
    if skip_tables() {
        return;
    }
    let rows = fig12::run(&figure_params());
    println!("\n{}", fig12::format_table(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for variant in DesignVariant::all() {
        group.bench_function(
            format!("hatric_canneal_{}", variant.label().replace('-', "_")),
            |b| {
                b.iter(|| {
                    execute(
                        &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Hatric)
                            .with_variant(variant),
                        &kernel_params(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
