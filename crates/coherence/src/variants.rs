//! Coherence-directory design variants (the Fig. 12 ablation).

use serde::{Deserialize, Serialize};

/// The directory-design options Sec. 4.2 discusses and Fig. 12 evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DesignVariant {
    /// Baseline HATRIC: lazy sharer updates, pseudo-specific line-grain
    /// tracking, a bounded dual-grain directory with back-invalidations.
    #[default]
    Baseline,
    /// Eagerly update directory sharer lists whenever a page-table line is
    /// evicted from a private cache or a translation structure.  Saves some
    /// spurious messages but costs translation-structure lookup energy.
    EagerDirUpdate,
    /// Track whether a translation is cached in the TLB, MMU cache, nTLB or
    /// L1 individually.  Slightly less coherence traffic, but a larger and
    /// more energy-hungry directory.
    FineGrainTracking,
    /// An infinitely large directory that never back-invalidates.
    NoBackInv,
    /// All of the above combined.
    AllCombined,
}

impl DesignVariant {
    /// Whether sharer lists are updated eagerly on page-table line evictions.
    #[must_use]
    pub fn eager_directory_update(self) -> bool {
        matches!(
            self,
            DesignVariant::EagerDirUpdate | DesignVariant::AllCombined
        )
    }

    /// Whether the directory tracks which structure (TLB vs MMU cache vs
    /// nTLB vs L1) caches each translation.
    #[must_use]
    pub fn fine_grain_tracking(self) -> bool {
        matches!(
            self,
            DesignVariant::FineGrainTracking | DesignVariant::AllCombined
        )
    }

    /// Whether the directory is unbounded (never back-invalidates).
    #[must_use]
    pub fn unbounded_directory(self) -> bool {
        matches!(self, DesignVariant::NoBackInv | DesignVariant::AllCombined)
    }

    /// Relative energy multiplier for directory accesses under this variant.
    /// Fine-grain tracking needs wider entries and more banks; eager updates
    /// add translation-structure lookups on every eviction.
    #[must_use]
    pub fn directory_energy_factor(self) -> f64 {
        let mut factor = 1.0;
        if self.fine_grain_tracking() {
            factor *= 1.6;
        }
        if self.eager_directory_update() {
            factor *= 1.35;
        }
        if self.unbounded_directory() {
            factor *= 1.15;
        }
        factor
    }

    /// Fraction of HATRIC's spurious invalidation messages that this variant
    /// still sends (fine-grain tracking and eager updates suppress some).
    #[must_use]
    pub fn spurious_message_factor(self) -> f64 {
        match self {
            DesignVariant::Baseline => 1.0,
            DesignVariant::EagerDirUpdate => 0.35,
            DesignVariant::FineGrainTracking => 0.55,
            DesignVariant::NoBackInv => 0.95,
            DesignVariant::AllCombined => 0.25,
        }
    }

    /// All variants, in the order Fig. 12 presents them.
    #[must_use]
    pub fn all() -> [DesignVariant; 5] {
        [
            DesignVariant::Baseline,
            DesignVariant::EagerDirUpdate,
            DesignVariant::FineGrainTracking,
            DesignVariant::NoBackInv,
            DesignVariant::AllCombined,
        ]
    }

    /// Human-readable name matching the paper's figure labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DesignVariant::Baseline => "HATRIC",
            DesignVariant::EagerDirUpdate => "EGR-dir-update",
            DesignVariant::FineGrainTracking => "FG-tracking",
            DesignVariant::NoBackInv => "No-back-inv",
            DesignVariant::AllCombined => "All",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_default_and_cheapest_directory() {
        assert_eq!(DesignVariant::default(), DesignVariant::Baseline);
        for v in DesignVariant::all() {
            assert!(
                v.directory_energy_factor() >= DesignVariant::Baseline.directory_energy_factor()
            );
        }
    }

    #[test]
    fn all_combines_flags() {
        let all = DesignVariant::AllCombined;
        assert!(all.eager_directory_update());
        assert!(all.fine_grain_tracking());
        assert!(all.unbounded_directory());
        assert!(all.directory_energy_factor() > 2.0);
    }

    #[test]
    fn spurious_suppression_never_exceeds_baseline() {
        for v in DesignVariant::all() {
            assert!(v.spurious_message_factor() <= 1.0);
            assert!(v.spurious_message_factor() > 0.0);
        }
    }

    #[test]
    fn labels_match_figure_12() {
        assert_eq!(DesignVariant::EagerDirUpdate.label(), "EGR-dir-update");
        assert_eq!(DesignVariant::NoBackInv.label(), "No-back-inv");
    }
}
