//! Cycle costs of translation-coherence primitives.
//!
//! The values come from the paper's measurements (Sec. 3.2–3.3): IPIs cost
//! thousands of cycles, a VM exit averages ~1300 cycles, a lightweight
//! guest interrupt ~640 cycles, and flushed translation structures must be
//! repopulated by 24-reference two-dimensional walks (charged by the timing
//! model when the misses actually happen, not here).

use serde::{Deserialize, Serialize};

/// Cycle costs used by the coherence planners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceCosts {
    /// Initiator-side cost of setting up and issuing an IPI broadcast.
    pub ipi_initiate_cycles: u64,
    /// Additional initiator-side cost per IPI target (KVM loops over vCPUs).
    pub ipi_per_target_cycles: u64,
    /// Target-side cost of taking a VM exit and re-entering the guest.
    pub vm_exit_cycles: u64,
    /// Target-side cost of a lightweight guest interrupt (the software
    /// alternative discussed in Sec. 3.3).
    pub guest_interrupt_cycles: u64,
    /// Target-side cost of flushing all translation structures.
    pub flush_cycles: u64,
    /// Target-side cost of a single selective invalidation instruction
    /// (`invlpg`-style).
    pub invlpg_cycles: u64,
    /// Cost of one hardware coherence message hop.
    pub coherence_message_cycles: u64,
    /// Cost of a co-tag match in a translation structure (pipelined off the
    /// critical path; charged to the target).
    pub cotag_match_cycles: u64,
    /// Cost of a UNITD reverse-CAM search across the TLB.
    pub cam_search_cycles: u64,
    /// Initiator-side cost of waiting for software acknowledgements
    /// (synchronisation overhead beyond the per-target costs).
    pub ack_wait_cycles: u64,
}

impl CoherenceCosts {
    /// Costs measured on the paper's Haswell platform.
    #[must_use]
    pub fn haswell_measured() -> Self {
        Self {
            ipi_initiate_cycles: 2_000,
            ipi_per_target_cycles: 1_200,
            vm_exit_cycles: 1_300,
            guest_interrupt_cycles: 640,
            flush_cycles: 250,
            invlpg_cycles: 120,
            coherence_message_cycles: 40,
            cotag_match_cycles: 2,
            cam_search_cycles: 12,
            ack_wait_cycles: 1_500,
        }
    }

    /// Costs for a Xen-like hypervisor: the shootdown path is similar but
    /// Xen's event-channel based signalling and scheduler interactions make
    /// the per-target overhead somewhat higher.
    #[must_use]
    pub fn xen_like() -> Self {
        let mut c = Self::haswell_measured();
        c.ipi_per_target_cycles = 1_500;
        c.vm_exit_cycles = 1_450;
        c.ack_wait_cycles = 1_900;
        c
    }
}

impl Default for CoherenceCosts {
    fn default() -> Self {
        Self::haswell_measured()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_exit_is_about_twice_an_interrupt() {
        let c = CoherenceCosts::haswell_measured();
        let ratio = c.vm_exit_cycles as f64 / c.guest_interrupt_cycles as f64;
        assert!((1.8..2.3).contains(&ratio), "paper: 1300 vs 640 cycles");
    }

    #[test]
    fn ipis_cost_thousands_of_cycles() {
        let c = CoherenceCosts::haswell_measured();
        assert!(c.ipi_initiate_cycles + c.ipi_per_target_cycles >= 2_000);
    }

    #[test]
    fn hardware_costs_are_orders_of_magnitude_smaller() {
        let c = CoherenceCosts::haswell_measured();
        assert!(c.cotag_match_cycles * 100 < c.vm_exit_cycles);
        assert!(c.coherence_message_cycles * 10 < c.ipi_initiate_cycles);
    }

    #[test]
    fn xen_is_somewhat_slower() {
        let kvm = CoherenceCosts::haswell_measured();
        let xen = CoherenceCosts::xen_like();
        assert!(xen.vm_exit_cycles > kvm.vm_exit_cycles);
        assert!(xen.ipi_per_target_cycles > kvm.ipi_per_target_cycles);
    }
}
