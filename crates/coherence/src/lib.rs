//! # hatric-coherence
//!
//! Translation-coherence protocols.  When privileged software modifies a
//! page-table entry, some mechanism must bring the stale copies cached in
//! TLBs, MMU caches and nested TLBs up to date.  This crate models the four
//! mechanisms the paper evaluates, as *planners*: given a remap event and
//! the system state relevant to targeting (which CPUs ran the VM, which CPUs
//! the coherence directory lists as sharers of the modified page-table
//! line), each protocol produces a [`CoherencePlan`] describing exactly what
//! happens on the initiator and on every target — VM exits, IPIs, full
//! flushes, selective co-tag invalidations — together with their cycle
//! costs.  The core simulator applies the plan to the translation
//! structures and charges the cycles.
//!
//! * [`SoftwareShootdown`] — today's KVM/Xen path: IPIs to every CPU that
//!   ever ran a vCPU of the VM, VM exits, and full flushes (Sec. 3.2).
//! * [`HatricProtocol`] — the paper's contribution: the hypervisor's store
//!   to the nested page table is picked up by the cache-coherence
//!   directory; only the CPUs on the line's sharer list receive
//!   invalidation messages, which their translation structures satisfy with
//!   co-tag matches.  No IPIs, no VM exits, no flushes (Sec. 4).
//! * [`UnitdPlusPlus`] — prior hardware work upgraded for virtualization:
//!   like HATRIC for TLBs (via a reverse-lookup CAM), but MMU caches and
//!   nested TLBs are still flushed, and the CAM costs energy (Sec. 6,
//!   Fig. 13).
//! * [`IdealCoherence`] — zero-overhead translation coherence, the
//!   unachievable bound used throughout the evaluation.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod costs;
pub mod plan;
pub mod protocol;
pub mod variants;

pub use costs::CoherenceCosts;
pub use plan::{CoherencePlan, TargetAction, TargetPlan};
pub use protocol::{
    CoherenceMechanism, HatricProtocol, IdealCoherence, RemapContext, SoftwareShootdown,
    TranslationCoherence, UnitdPlusPlus,
};
pub use variants::DesignVariant;
