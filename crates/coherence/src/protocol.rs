//! The translation-coherence protocol implementations.

use serde::{Deserialize, Serialize};

use hatric_cache::SharerSet;
use hatric_types::{CpuId, VmId};

use crate::costs::CoherenceCosts;
use crate::plan::{CoherencePlan, TargetAction, TargetPlan};

/// Everything a protocol needs to know about one nested-page-table
/// modification in order to plan coherence.
///
/// The context is VMID-aware: `vm` names the virtual machine whose nested
/// page table was modified, and `vm_cpus` is the conservative CPU set the
/// hypervisor tracks *for that VM*.  On a consolidated host running many
/// VMs, those CPUs may currently be executing other VMs' vCPUs — software
/// shootdowns disrupt them anyway (the "innocent bystander" cost of
/// imprecise targeting, Sec. 3.2), while hardware mechanisms consult only
/// the directory's per-line sharer list and leave unrelated VMs alone.
#[derive(Debug, Clone)]
pub struct RemapContext {
    /// The CPU executing the hypervisor code that modifies the entry.
    pub initiator: CpuId,
    /// The VM whose nested page-table entry is being modified.
    pub vm: VmId,
    /// CPUs that have executed *any* vCPU of the remapping VM — the only
    /// targeting information software has (Sec. 3.2).
    pub vm_cpus: Vec<CpuId>,
    /// CPUs currently executing a guest (any VM) — an IPI arriving at one of
    /// these forces a VM exit on whoever occupies it; the rest only take the
    /// flush at their next VM entry.
    pub running_guest: Vec<CpuId>,
    /// The coherence directory's sharer list for the modified page-table
    /// cache line — the precise targeting information hardware has.
    pub sharers: SharerSet,
}

impl RemapContext {
    /// Whether `cpu` is currently executing a guest in guest mode.
    #[must_use]
    pub fn is_running_guest(&self, cpu: CpuId) -> bool {
        self.running_guest.contains(&cpu)
    }
}

/// Identifies a translation-coherence mechanism (used in configuration and
/// reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherenceMechanism {
    /// Software shootdowns as performed by KVM today.
    Software,
    /// Software shootdowns as performed by Xen.
    SoftwareXen,
    /// HATRIC: co-tags exposed to cache coherence.
    Hatric,
    /// UNITD extended for virtualization (reverse-lookup CAM, TLBs only).
    UnitdPlusPlus,
    /// Zero-overhead translation coherence (unachievable bound).
    Ideal,
}

impl CoherenceMechanism {
    /// Builds the protocol object for this mechanism.
    #[must_use]
    pub fn build(self, costs: CoherenceCosts) -> Box<dyn TranslationCoherence> {
        match self {
            CoherenceMechanism::Software => Box::new(SoftwareShootdown::kvm(costs)),
            CoherenceMechanism::SoftwareXen => Box::new(SoftwareShootdown::xen(costs)),
            CoherenceMechanism::Hatric => Box::new(HatricProtocol::new(costs)),
            CoherenceMechanism::UnitdPlusPlus => Box::new(UnitdPlusPlus::new(costs)),
            CoherenceMechanism::Ideal => Box::new(IdealCoherence),
        }
    }

    /// Whether this mechanism keeps translation structures coherent in
    /// hardware (and therefore needs no hypervisor flush hooks).
    #[must_use]
    pub fn is_hardware(self) -> bool {
        matches!(
            self,
            CoherenceMechanism::Hatric
                | CoherenceMechanism::UnitdPlusPlus
                | CoherenceMechanism::Ideal
        )
    }
}

/// A translation-coherence protocol: turns a remap event into a plan.
pub trait TranslationCoherence: std::fmt::Debug + Send + Sync {
    /// Which mechanism this is.
    fn mechanism(&self) -> CoherenceMechanism;

    /// Plans the coherence actions for one nested-page-table modification.
    fn plan_remap(&self, ctx: &RemapContext) -> CoherencePlan;
}

/// The software baseline: IPI every CPU that ever ran the VM, VM-exit those
/// in guest mode, flush everything (Fig. 3).
#[derive(Debug, Clone)]
pub struct SoftwareShootdown {
    costs: CoherenceCosts,
    xen: bool,
}

impl SoftwareShootdown {
    /// KVM-flavoured shootdowns.
    #[must_use]
    pub fn kvm(costs: CoherenceCosts) -> Self {
        Self { costs, xen: false }
    }

    /// Xen-flavoured shootdowns (slightly higher per-target costs).
    #[must_use]
    pub fn xen(_costs: CoherenceCosts) -> Self {
        Self {
            costs: CoherenceCosts::xen_like(),
            xen: true,
        }
    }
}

impl TranslationCoherence for SoftwareShootdown {
    fn mechanism(&self) -> CoherenceMechanism {
        if self.xen {
            CoherenceMechanism::SoftwareXen
        } else {
            CoherenceMechanism::Software
        }
    }

    fn plan_remap(&self, ctx: &RemapContext) -> CoherencePlan {
        let c = &self.costs;
        let mut targets = Vec::new();
        let mut ipis = 0;
        for &cpu in &ctx.vm_cpus {
            if cpu == ctx.initiator {
                // The initiator flushes its own structures directly.
                targets.push(TargetPlan {
                    cpu,
                    action: TargetAction::FlushAll,
                    vm_exit: false,
                    target_cycles: c.flush_cycles,
                });
                continue;
            }
            ipis += 1;
            let vm_exit = ctx.is_running_guest(cpu);
            let disruption = if vm_exit {
                c.vm_exit_cycles + c.flush_cycles
            } else {
                // The flush request bit is honoured at the next VM entry.
                c.flush_cycles
            };
            targets.push(TargetPlan {
                cpu,
                action: TargetAction::FlushAll,
                vm_exit,
                target_cycles: disruption,
            });
        }
        let initiator_cycles =
            c.ipi_initiate_cycles + c.ipi_per_target_cycles * ipis + c.ack_wait_cycles;
        CoherencePlan {
            vm: ctx.vm,
            initiator_cycles,
            targets,
            ipis_sent: ipis,
            hw_messages: 0,
        }
    }
}

/// HATRIC: coherence messages carrying the modified line's address reach the
/// sharer CPUs' translation structures, which invalidate by co-tag match.
#[derive(Debug, Clone)]
pub struct HatricProtocol {
    costs: CoherenceCosts,
}

impl HatricProtocol {
    /// Creates the protocol with the given costs.
    #[must_use]
    pub fn new(costs: CoherenceCosts) -> Self {
        Self { costs }
    }
}

impl TranslationCoherence for HatricProtocol {
    fn mechanism(&self) -> CoherenceMechanism {
        CoherenceMechanism::Hatric
    }

    fn plan_remap(&self, ctx: &RemapContext) -> CoherencePlan {
        let c = &self.costs;
        let mut targets = Vec::new();
        let mut messages = 0;
        for cpu in ctx.sharers.iter() {
            messages += 1;
            // The initiator's own structures snoop its store; remote sharers
            // get an invalidation message.  Either way: no VM exit, no
            // flush, a pipelined co-tag match.
            targets.push(TargetPlan {
                cpu,
                action: TargetAction::InvalidateCotag,
                vm_exit: false,
                target_cycles: c.cotag_match_cycles,
            });
        }
        CoherencePlan {
            vm: ctx.vm,
            // The store itself is an ordinary cache write; the only extra
            // initiator cost is the message fan-out, which the cache system
            // already performs for data coherence.
            initiator_cycles: c.coherence_message_cycles,
            targets,
            ipis_sent: 0,
            hw_messages: messages,
        }
    }
}

/// UNITD++ — UNITD upgraded with nested-page-table support and directory
/// integration: selective TLB invalidation via a reverse-lookup CAM, but MMU
/// caches and nested TLBs are not covered and must be flushed.
#[derive(Debug, Clone)]
pub struct UnitdPlusPlus {
    costs: CoherenceCosts,
}

impl UnitdPlusPlus {
    /// Creates the protocol with the given costs.
    #[must_use]
    pub fn new(costs: CoherenceCosts) -> Self {
        Self { costs }
    }
}

impl TranslationCoherence for UnitdPlusPlus {
    fn mechanism(&self) -> CoherenceMechanism {
        CoherenceMechanism::UnitdPlusPlus
    }

    fn plan_remap(&self, ctx: &RemapContext) -> CoherencePlan {
        let c = &self.costs;
        let mut targets = Vec::new();
        let mut messages = 0;
        for cpu in ctx.sharers.iter() {
            messages += 1;
            targets.push(TargetPlan {
                cpu,
                action: TargetAction::InvalidateCotagTlbOnly,
                vm_exit: false,
                target_cycles: c.cam_search_cycles + c.flush_cycles / 4,
            });
        }
        CoherencePlan {
            vm: ctx.vm,
            initiator_cycles: c.coherence_message_cycles,
            targets,
            ipis_sent: 0,
            hw_messages: messages,
        }
    }
}

/// The unachievable zero-overhead bound: stale entries vanish for free.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealCoherence;

impl TranslationCoherence for IdealCoherence {
    fn mechanism(&self) -> CoherenceMechanism {
        CoherenceMechanism::Ideal
    }

    fn plan_remap(&self, ctx: &RemapContext) -> CoherencePlan {
        // Stale entries must still disappear for correctness, but at zero
        // cost and with perfect precision.
        let targets = ctx
            .sharers
            .iter()
            .map(|cpu| TargetPlan {
                cpu,
                action: TargetAction::InvalidateCotag,
                vm_exit: false,
                target_cycles: 0,
            })
            .collect();
        CoherencePlan {
            vm: ctx.vm,
            initiator_cycles: 0,
            targets,
            ipis_sent: 0,
            hw_messages: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(vm_cpus: &[u32], running: &[u32], sharers: &[u32]) -> RemapContext {
        let mut set = SharerSet::empty();
        for &s in sharers {
            set.add(CpuId::new(s));
        }
        RemapContext {
            initiator: CpuId::new(0),
            vm: VmId::new(0),
            vm_cpus: vm_cpus.iter().map(|&c| CpuId::new(c)).collect(),
            running_guest: running.iter().map(|&c| CpuId::new(c)).collect(),
            sharers: set,
        }
    }

    #[test]
    fn software_targets_all_vm_cpus_and_exits_running_ones() {
        let proto = SoftwareShootdown::kvm(CoherenceCosts::haswell_measured());
        let plan = proto.plan_remap(&ctx(&[0, 1, 2, 3], &[1, 2], &[2]));
        assert_eq!(plan.targets.len(), 4);
        assert_eq!(plan.vm_exits(), 2);
        assert_eq!(plan.full_flushes(), 4);
        assert_eq!(plan.ipis_sent, 3);
        assert!(plan.initiator_cycles > 5_000);
    }

    #[test]
    fn hatric_targets_only_sharers_with_no_exits() {
        let proto = HatricProtocol::new(CoherenceCosts::haswell_measured());
        let plan = proto.plan_remap(&ctx(&[0, 1, 2, 3], &[1, 2], &[2]));
        assert_eq!(plan.targets.len(), 1);
        assert_eq!(plan.targets[0].cpu, CpuId::new(2));
        assert_eq!(plan.vm_exits(), 0);
        assert_eq!(plan.full_flushes(), 0);
        assert_eq!(plan.ipis_sent, 0);
        assert!(plan.total_cycles() < 100);
    }

    #[test]
    fn hatric_is_orders_of_magnitude_cheaper_than_software() {
        let costs = CoherenceCosts::haswell_measured();
        let context = ctx(&[0, 1, 2, 3, 4, 5, 6, 7], &[1, 2, 3, 4], &[1, 3]);
        let sw = SoftwareShootdown::kvm(costs).plan_remap(&context);
        let hw = HatricProtocol::new(costs).plan_remap(&context);
        assert!(sw.total_cycles() > 50 * hw.total_cycles());
    }

    #[test]
    fn unitd_flushes_non_tlb_structures() {
        let proto = UnitdPlusPlus::new(CoherenceCosts::haswell_measured());
        let plan = proto.plan_remap(&ctx(&[0, 1], &[1], &[0, 1]));
        assert_eq!(plan.targets.len(), 2);
        assert!(plan
            .targets
            .iter()
            .all(|t| t.action == TargetAction::InvalidateCotagTlbOnly));
        assert_eq!(plan.vm_exits(), 0);
    }

    #[test]
    fn ideal_is_free() {
        let plan = IdealCoherence.plan_remap(&ctx(&[0, 1, 2], &[1], &[1, 2]));
        assert_eq!(plan.total_cycles(), 0);
        assert_eq!(plan.targets.len(), 2);
    }

    #[test]
    fn xen_plans_cost_more_than_kvm_plans() {
        let costs = CoherenceCosts::haswell_measured();
        let context = ctx(&[0, 1, 2, 3], &[1, 2, 3], &[1]);
        let kvm = SoftwareShootdown::kvm(costs).plan_remap(&context);
        let xen = SoftwareShootdown::xen(costs).plan_remap(&context);
        assert!(xen.total_cycles() > kvm.total_cycles());
    }

    #[test]
    fn mechanism_classification() {
        assert!(CoherenceMechanism::Hatric.is_hardware());
        assert!(CoherenceMechanism::Ideal.is_hardware());
        assert!(!CoherenceMechanism::Software.is_hardware());
        let boxed = CoherenceMechanism::Hatric.build(CoherenceCosts::default());
        assert_eq!(boxed.mechanism(), CoherenceMechanism::Hatric);
    }
}
