//! The coherence plan a protocol produces for one page-table modification.

use serde::{Deserialize, Serialize};

use hatric_types::{CpuId, VmId};

/// What a target CPU must do to its translation structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetAction {
    /// Flush the TLBs, MMU cache and nested TLB completely (software path).
    FlushAll,
    /// Selectively invalidate entries whose co-tag matches the modified
    /// page-table line (HATRIC).
    InvalidateCotag,
    /// Selectively invalidate TLB entries via a reverse-lookup CAM but flush
    /// the MMU cache and nested TLB (UNITD++).
    InvalidateCotagTlbOnly,
    /// Do nothing (ideal coherence, or a CPU that needs no action).
    None,
}

/// The work one target CPU performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetPlan {
    /// The target CPU.
    pub cpu: CpuId,
    /// What it does to its translation structures.
    pub action: TargetAction,
    /// Whether the CPU suffers a VM exit (interrupting its guest).
    pub vm_exit: bool,
    /// Cycles of work/disruption charged to this CPU.
    pub target_cycles: u64,
}

/// The complete plan for one page-table modification.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoherencePlan {
    /// The VM whose nested page table the plan is for (copied from the
    /// [`crate::RemapContext`]; the executor cross-checks it against the
    /// initiating VM so plans can never be applied on behalf of the wrong
    /// tenant).
    pub vm: VmId,
    /// Cycles charged to the initiating CPU (IPI loops, waiting for acks…).
    pub initiator_cycles: u64,
    /// Per-target work.
    pub targets: Vec<TargetPlan>,
    /// Number of inter-processor interrupts sent.
    pub ipis_sent: u64,
    /// Number of hardware coherence messages sent to translation structures.
    pub hw_messages: u64,
}

impl CoherencePlan {
    /// Number of VM exits this plan causes.
    #[must_use]
    pub fn vm_exits(&self) -> u64 {
        self.targets.iter().filter(|t| t.vm_exit).count() as u64
    }

    /// Number of targets whose structures are flushed completely.
    #[must_use]
    pub fn full_flushes(&self) -> u64 {
        self.targets
            .iter()
            .filter(|t| t.action == TargetAction::FlushAll)
            .count() as u64
    }

    /// Total cycles charged across initiator and targets (an upper bound on
    /// the serialised cost; the timing model distributes them per CPU).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.initiator_cycles + self.targets.iter().map(|t| t.target_cycles).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_summaries() {
        let plan = CoherencePlan {
            vm: VmId::new(3),
            initiator_cycles: 1000,
            targets: vec![
                TargetPlan {
                    cpu: CpuId::new(1),
                    action: TargetAction::FlushAll,
                    vm_exit: true,
                    target_cycles: 1550,
                },
                TargetPlan {
                    cpu: CpuId::new(2),
                    action: TargetAction::InvalidateCotag,
                    vm_exit: false,
                    target_cycles: 2,
                },
            ],
            ipis_sent: 1,
            hw_messages: 1,
        };
        assert_eq!(plan.vm_exits(), 1);
        assert_eq!(plan.full_flushes(), 1);
        assert_eq!(plan.total_cycles(), 1000 + 1550 + 2);
    }

    #[test]
    fn empty_plan_is_free() {
        let plan = CoherencePlan::default();
        assert_eq!(plan.total_cycles(), 0);
        assert_eq!(plan.vm_exits(), 0);
    }
}
