//! Property-based tests of the NUMA memory system's per-stream bandwidth
//! attribution: however traffic is spread over sockets, devices and VM
//! streams, the per-`(socket, device, vmid)` books must sum exactly to the
//! device-level totals — nothing double-counted, nothing dropped.

use proptest::prelude::*;

use hatric_memory::{DeviceStats, MemoryKind, MemorySystem, MemorySystemConfig, NumaConfig};
use hatric_types::{SocketId, PAGE_SIZE_4K};

/// A small system with every capacity divisible by up to 4 sockets.
fn system(sockets: usize) -> MemorySystem {
    let mut cfg = MemorySystemConfig::paper_default().with_numa(NumaConfig::symmetric(sockets));
    cfg.die_stacked.capacity_bytes = 64 * PAGE_SIZE_4K;
    cfg.off_chip.capacity_bytes = 256 * PAGE_SIZE_4K;
    MemorySystem::new(cfg)
}

proptest! {
    /// Per-(socket, device, stream) attribution sums exactly to the
    /// per-socket device totals, and those to the device-kind totals; the
    /// same holds for the inter-socket links.
    #[test]
    fn stream_attribution_sums_to_device_totals(
        sockets in 1usize..=4,
        ops in proptest::collection::vec(
            // (is_copy, stream, frame selector, accessor socket, time delta)
            (any::<bool>(), 0usize..6, any::<u64>(), any::<u64>(), 0u64..512),
            1..200,
        ),
    ) {
        let mut mem = system(sockets);
        // A pool of frames spread over every socket and both kinds.
        let mut frames = Vec::new();
        for s in 0..sockets {
            for kind in [MemoryKind::DieStacked, MemoryKind::OffChip] {
                for _ in 0..4 {
                    frames.push(
                        mem.allocate_on(kind, SocketId::new(s as u32))
                            .expect("pool fits each socket's capacity"),
                    );
                }
            }
        }
        let mut now = 0u64;
        for (is_copy, stream, frame_sel, socket_sel, dt) in ops {
            now += dt;
            let frame = frames[(frame_sel % frames.len() as u64) as usize];
            if is_copy {
                let other = frames[((frame_sel / 7) % frames.len() as u64) as usize];
                mem.page_copy_cycles(frame, other, stream, now);
            } else {
                let from = SocketId::new((socket_sel % sockets as u64) as u32);
                mem.access(frame, stream, from, now);
            }
        }

        for kind in [MemoryKind::DieStacked, MemoryKind::OffChip] {
            let mut socket_total = DeviceStats::default();
            let mut stream_total = DeviceStats::default();
            for s in 0..sockets {
                let socket = SocketId::new(s as u32);
                socket_total.merge(&mem.socket_device_stats(socket, kind));
                for stream in 0..mem.stream_count() {
                    stream_total.merge(&mem.stream_device_stats(socket, kind, stream));
                }
            }
            prop_assert_eq!(socket_total, mem.device_stats(kind));
            prop_assert_eq!(stream_total, mem.device_stats(kind));
        }
        let mut link_total = DeviceStats::default();
        for stream in 0..mem.stream_count() {
            link_total.merge(&mem.link_stream_stats(stream));
        }
        prop_assert_eq!(link_total, mem.link_stats());
    }

    /// On a single-socket system no access is remote and the link stays
    /// untouched, whatever the traffic pattern.
    #[test]
    fn single_socket_traffic_never_crosses_the_link(
        ops in proptest::collection::vec((0usize..6, any::<u64>(), 0u64..512), 1..100),
    ) {
        let mut mem = system(1);
        let frame = mem.allocate(MemoryKind::OffChip).unwrap();
        let mut now = 0u64;
        for (stream, _, dt) in ops {
            now += dt;
            prop_assert!(!mem.is_remote(frame, SocketId::new(0)));
            mem.access(frame, stream, SocketId::new(0), now);
        }
        prop_assert_eq!(mem.link_stats(), DeviceStats::default());
    }
}
