//! # hatric-memory
//!
//! The physical-memory substrate of the HATRIC simulator: a forward-looking
//! two-level DRAM system with a small, high-bandwidth **die-stacked** device
//! and a large, lower-bandwidth **off-chip** device (2 GiB at 4× the
//! bandwidth of 8 GiB, as in Sec. 5.1 of the paper), plus frame allocation
//! and a simple queueing model that converts bandwidth pressure into access
//! latency.
//!
//! ```
//! use hatric_memory::{MemoryKind, MemorySystem, MemorySystemConfig};
//!
//! # fn main() -> Result<(), hatric_types::SimError> {
//! let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
//! let fast = mem.allocate(MemoryKind::DieStacked)?;
//! let slow = mem.allocate(MemoryKind::OffChip)?;
//! assert_eq!(mem.kind_of(fast), MemoryKind::DieStacked);
//! assert_eq!(mem.kind_of(slow), MemoryKind::OffChip);
//!
//! // Under load, the off-chip device queues far more than the die-stacked one.
//! let mut fast_total = 0;
//! let mut slow_total = 0;
//! for i in 0..1000u64 {
//!     fast_total += mem.access(fast, i * 2);
//!     slow_total += mem.access(slow, i * 2);
//! }
//! assert!(slow_total > fast_total);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod allocator;
pub mod device;

pub use allocator::FrameAllocator;
pub use device::{DeviceConfig, DeviceStats, MemoryDevice, MemoryKind};

use serde::{Deserialize, Serialize};

use hatric_types::consts::CACHE_LINE_BYTES;
use hatric_types::{Result, SimError, SystemFrame, PAGE_SIZE_4K};

/// Configuration of the whole two-level memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// Die-stacked (fast) device.
    pub die_stacked: DeviceConfig,
    /// Off-chip (slow, large) device.
    pub off_chip: DeviceConfig,
    /// Fixed software/DMA overhead per migrated page, in cycles, on top of
    /// the bandwidth cost of streaming the page through both devices.
    pub page_copy_overhead_cycles: u64,
}

impl MemorySystemConfig {
    /// The paper's configuration: 2 GiB die-stacked DRAM with 4× the
    /// bandwidth of 8 GiB off-chip DRAM.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            die_stacked: DeviceConfig {
                kind: MemoryKind::DieStacked,
                capacity_bytes: 2 * 1024 * 1024 * 1024,
                base_latency_cycles: 120,
                service_cycles_per_line: 1,
            },
            off_chip: DeviceConfig {
                kind: MemoryKind::OffChip,
                capacity_bytes: 8 * 1024 * 1024 * 1024,
                base_latency_cycles: 200,
                service_cycles_per_line: 4,
            },
            page_copy_overhead_cycles: 2_000,
        }
    }

    /// A configuration with no die-stacked DRAM at all (the `no-hbm`
    /// baseline of Fig. 2): the fast device has zero capacity.
    #[must_use]
    pub fn no_hbm() -> Self {
        let mut cfg = Self::paper_default();
        cfg.die_stacked.capacity_bytes = 0;
        cfg
    }

    /// A configuration with effectively infinite die-stacked DRAM (the
    /// `inf-hbm` upper bound of Fig. 2).
    #[must_use]
    pub fn infinite_hbm() -> Self {
        let mut cfg = Self::paper_default();
        cfg.die_stacked.capacity_bytes = 1 << 44;
        cfg
    }
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The two-level physical memory system.
///
/// System-physical frames are laid out as: `[0, off_chip_frames)` on the
/// off-chip device, `[off_chip_frames, off_chip_frames + die_frames)` on the
/// die-stacked device, and everything above that is *hypervisor / page-table
/// reserve* space charged at off-chip latency.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    off_chip: MemoryDevice,
    die_stacked: MemoryDevice,
    off_chip_frames: u64,
    die_frames: u64,
    off_allocator: FrameAllocator,
    die_allocator: FrameAllocator,
}

impl MemorySystem {
    /// Creates the memory system.
    #[must_use]
    pub fn new(config: MemorySystemConfig) -> Self {
        let off_chip_frames = config.off_chip.capacity_bytes / PAGE_SIZE_4K;
        let die_frames = config.die_stacked.capacity_bytes / PAGE_SIZE_4K;
        Self {
            config,
            off_chip: MemoryDevice::new(config.off_chip),
            die_stacked: MemoryDevice::new(config.die_stacked),
            off_chip_frames,
            die_frames,
            off_allocator: FrameAllocator::new(0, off_chip_frames),
            die_allocator: FrameAllocator::new(off_chip_frames, die_frames),
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MemorySystemConfig {
        &self.config
    }

    /// Which device a system frame lives on.  Frames beyond both devices
    /// (the page-table / hypervisor reserve) are charged as off-chip.
    #[must_use]
    pub fn kind_of(&self, frame: SystemFrame) -> MemoryKind {
        if frame.number() >= self.off_chip_frames
            && frame.number() < self.off_chip_frames + self.die_frames
        {
            MemoryKind::DieStacked
        } else {
            MemoryKind::OffChip
        }
    }

    /// First frame number of the die-stacked region.
    #[must_use]
    pub fn die_stacked_base(&self) -> SystemFrame {
        SystemFrame::new(self.off_chip_frames)
    }

    /// First frame number above both devices; useful as a base for
    /// page-table / hypervisor reserve allocations.
    #[must_use]
    pub fn reserve_base(&self) -> SystemFrame {
        SystemFrame::new(self.off_chip_frames + self.die_frames)
    }

    /// Number of free frames on a device.
    #[must_use]
    pub fn free_frames(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::DieStacked => self.die_allocator.free(),
            MemoryKind::OffChip => self.off_allocator.free(),
        }
    }

    /// Total frames on a device.
    #[must_use]
    pub fn total_frames(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::DieStacked => self.die_frames,
            MemoryKind::OffChip => self.off_chip_frames,
        }
    }

    /// Allocates a frame on the requested device.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the device has no free frames.
    pub fn allocate(&mut self, kind: MemoryKind) -> Result<SystemFrame> {
        let allocator = match kind {
            MemoryKind::DieStacked => &mut self.die_allocator,
            MemoryKind::OffChip => &mut self.off_allocator,
        };
        allocator.allocate().ok_or_else(|| SimError::OutOfMemory {
            device: kind.to_string(),
        })
    }

    /// Frees a previously allocated frame.
    pub fn free(&mut self, frame: SystemFrame) {
        match self.kind_of(frame) {
            MemoryKind::DieStacked => self.die_allocator.free_frame(frame),
            MemoryKind::OffChip => self.off_allocator.free_frame(frame),
        }
    }

    /// Performs one cache-line access to `frame`'s device at simulation time
    /// `now`, returning the access latency in cycles (base + queueing).
    pub fn access(&mut self, frame: SystemFrame, now: u64) -> u64 {
        match self.kind_of(frame) {
            MemoryKind::DieStacked => self.die_stacked.access(now),
            MemoryKind::OffChip => self.off_chip.access(now),
        }
    }

    /// Cost, in cycles, of copying one 4 KiB page from `from` to `to`,
    /// including the bandwidth occupancy it adds to both devices.
    pub fn page_copy_cycles(&mut self, from: SystemFrame, to: SystemFrame, now: u64) -> u64 {
        let lines = PAGE_SIZE_4K / CACHE_LINE_BYTES;
        let src = self.kind_of(from);
        let dst = self.kind_of(to);
        let mut cycles = self.config.page_copy_overhead_cycles;
        // Streaming transfers pipeline well; charge the occupancy of both
        // devices but only the larger of the two as serialised latency.
        let src_cost: u64 = (0..lines)
            .map(|i| self.device_mut(src).occupy(now + i))
            .sum();
        let dst_cost: u64 = (0..lines)
            .map(|i| self.device_mut(dst).occupy(now + i))
            .sum();
        cycles += src_cost.max(dst_cost);
        cycles
    }

    fn device_mut(&mut self, kind: MemoryKind) -> &mut MemoryDevice {
        match kind {
            MemoryKind::DieStacked => &mut self.die_stacked,
            MemoryKind::OffChip => &mut self.off_chip,
        }
    }

    /// Resets both devices' queueing clocks (used when the simulation's
    /// cycle counters are reset between warmup and measurement).
    pub fn reset_timing(&mut self) {
        self.die_stacked.reset_timing();
        self.off_chip.reset_timing();
    }

    /// Per-device statistics.
    #[must_use]
    pub fn device_stats(&self, kind: MemoryKind) -> DeviceStats {
        match kind {
            MemoryKind::DieStacked => self.die_stacked.stats(),
            MemoryKind::OffChip => self.off_chip.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_do_not_overlap() {
        let mem = MemorySystem::new(MemorySystemConfig::paper_default());
        assert_eq!(mem.total_frames(MemoryKind::OffChip), 8 * 1024 * 1024 / 4);
        assert_eq!(
            mem.total_frames(MemoryKind::DieStacked),
            2 * 1024 * 1024 / 4
        );
        assert_eq!(mem.kind_of(SystemFrame::new(0)), MemoryKind::OffChip);
        assert_eq!(mem.kind_of(mem.die_stacked_base()), MemoryKind::DieStacked);
        assert_eq!(mem.kind_of(mem.reserve_base()), MemoryKind::OffChip);
    }

    #[test]
    fn allocation_respects_device() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let fast = mem.allocate(MemoryKind::DieStacked).unwrap();
        assert_eq!(mem.kind_of(fast), MemoryKind::DieStacked);
        let slow = mem.allocate(MemoryKind::OffChip).unwrap();
        assert_eq!(mem.kind_of(slow), MemoryKind::OffChip);
    }

    #[test]
    fn no_hbm_config_cannot_allocate_fast_frames() {
        let mut mem = MemorySystem::new(MemorySystemConfig::no_hbm());
        assert!(mem.allocate(MemoryKind::DieStacked).is_err());
        assert_eq!(mem.free_frames(MemoryKind::DieStacked), 0);
    }

    #[test]
    fn free_then_reallocate() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let before = mem.free_frames(MemoryKind::DieStacked);
        let frame = mem.allocate(MemoryKind::DieStacked).unwrap();
        assert_eq!(mem.free_frames(MemoryKind::DieStacked), before - 1);
        mem.free(frame);
        assert_eq!(mem.free_frames(MemoryKind::DieStacked), before);
    }

    #[test]
    fn bandwidth_differential_shows_under_load() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let fast = mem.allocate(MemoryKind::DieStacked).unwrap();
        let slow = mem.allocate(MemoryKind::OffChip).unwrap();
        let mut fast_total = 0u64;
        let mut slow_total = 0u64;
        // Hammer both devices with back-to-back accesses.
        for i in 0..10_000u64 {
            fast_total += mem.access(fast, i);
            slow_total += mem.access(slow, i);
        }
        assert!(
            slow_total > 2 * fast_total,
            "off-chip should queue much more: fast={fast_total} slow={slow_total}"
        );
    }

    #[test]
    fn page_copy_cost_is_substantial() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let src = mem.allocate(MemoryKind::OffChip).unwrap();
        let dst = mem.allocate(MemoryKind::DieStacked).unwrap();
        let cost = mem.page_copy_cycles(src, dst, 0);
        assert!(cost >= MemorySystemConfig::paper_default().page_copy_overhead_cycles);
        assert!(cost < 1_000_000);
    }
}
