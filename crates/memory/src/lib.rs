//! # hatric-memory
//!
//! The physical-memory substrate of the HATRIC simulator: a forward-looking
//! two-level DRAM system with a small, high-bandwidth **die-stacked** device
//! and a large, lower-bandwidth **off-chip** device (2 GiB at 4× the
//! bandwidth of 8 GiB, as in Sec. 5.1 of the paper), replicated across the
//! **sockets** of a NUMA host and stitched together by an inter-socket
//! link.  Frame allocation is per `(socket, device)`, every device's
//! queueing model attributes bandwidth per *stream* (one per VM slot), and
//! a demand access pays extra latency plus link occupancy whenever the
//! frame lives on a socket other than the accessor's.
//!
//! ```
//! use hatric_memory::{MemoryKind, MemorySystem, MemorySystemConfig};
//! use hatric_types::SocketId;
//!
//! # fn main() -> Result<(), hatric_types::SimError> {
//! let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
//! let fast = mem.allocate(MemoryKind::DieStacked)?;
//! let slow = mem.allocate(MemoryKind::OffChip)?;
//! assert_eq!(mem.kind_of(fast), MemoryKind::DieStacked);
//! assert_eq!(mem.kind_of(slow), MemoryKind::OffChip);
//!
//! // Under load, the off-chip device queues far more than the die-stacked
//! // one.  Stream 0 issues every access from socket 0 (the default config
//! // is a single-socket machine, so nothing is ever remote).
//! let local = SocketId::new(0);
//! let mut fast_total = 0;
//! let mut slow_total = 0;
//! for i in 0..1000u64 {
//!     fast_total += mem.access(fast, 0, local, i * 2);
//!     slow_total += mem.access(slow, 0, local, i * 2);
//! }
//! assert!(slow_total > fast_total);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod allocator;
pub mod device;
pub mod numa;

pub use allocator::FrameAllocator;
pub use device::{DeviceConfig, DeviceStats, MemoryDevice, MemoryKind};
pub use numa::{LinkConfig, NumaConfig};

use serde::{Deserialize, Serialize};

use hatric_types::consts::CACHE_LINE_BYTES;
use hatric_types::{Result, SimError, SocketId, SystemFrame, PAGE_SIZE_4K};

/// Configuration of the whole memory system: the two device kinds plus the
/// socket topology they are replicated across.
///
/// ```
/// use hatric_memory::{MemorySystemConfig, NumaConfig};
///
/// let cfg = MemorySystemConfig::paper_default().with_numa(NumaConfig::symmetric(2));
/// assert_eq!(cfg.numa.sockets, 2);
/// // The paper's 4x bandwidth differential.
/// assert_eq!(
///     cfg.off_chip.service_cycles_per_line,
///     4 * cfg.die_stacked.service_cycles_per_line
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// Die-stacked (fast) device, per socket-group aggregate (the capacity
    /// is divided evenly between sockets; each socket group gets the full
    /// per-device bandwidth).
    pub die_stacked: DeviceConfig,
    /// Off-chip (slow, large) device, divided between sockets likewise.
    pub off_chip: DeviceConfig,
    /// Fixed software/DMA overhead per migrated page, in cycles, on top of
    /// the bandwidth cost of streaming the page through both devices.
    pub page_copy_overhead_cycles: u64,
    /// Socket topology and distance cost table ([`NumaConfig::uma`] for the
    /// classic single-socket machine).
    pub numa: NumaConfig,
}

impl MemorySystemConfig {
    /// The paper's configuration: 2 GiB die-stacked DRAM with 4× the
    /// bandwidth of 8 GiB off-chip DRAM, on a single socket.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            die_stacked: DeviceConfig {
                kind: MemoryKind::DieStacked,
                capacity_bytes: 2 * 1024 * 1024 * 1024,
                base_latency_cycles: 120,
                service_cycles_per_line: 1,
            },
            off_chip: DeviceConfig {
                kind: MemoryKind::OffChip,
                capacity_bytes: 8 * 1024 * 1024 * 1024,
                base_latency_cycles: 200,
                service_cycles_per_line: 4,
            },
            page_copy_overhead_cycles: 2_000,
            numa: NumaConfig::uma(),
        }
    }

    /// A configuration with no die-stacked DRAM at all (the `no-hbm`
    /// baseline of Fig. 2): the fast device has zero capacity.
    #[must_use]
    pub fn no_hbm() -> Self {
        let mut cfg = Self::paper_default();
        cfg.die_stacked.capacity_bytes = 0;
        cfg
    }

    /// A configuration with effectively infinite die-stacked DRAM (the
    /// `inf-hbm` upper bound of Fig. 2).
    #[must_use]
    pub fn infinite_hbm() -> Self {
        let mut cfg = Self::paper_default();
        cfg.die_stacked.capacity_bytes = 1 << 44;
        cfg
    }

    /// Returns a copy with the given socket topology.
    #[must_use]
    pub fn with_numa(mut self, numa: NumaConfig) -> Self {
        self.numa = numa;
        self
    }
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The cost of one demand line access, with the queueing component broken
/// out: `total` is what the caller charges to the requesting CPU, while
/// `queueing` is the share of that spent waiting behind earlier requests
/// (device backlog, plus the inter-socket link backlog for remote frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCost {
    /// Full access latency in cycles (base + queueing + NUMA penalties).
    pub total: u64,
    /// Cycles of the total spent queueing behind earlier requests.
    pub queueing: u64,
}

/// One socket's memory group: its slice of each device plus the allocators
/// over those slices.
#[derive(Debug, Clone)]
struct SocketMemory {
    off_chip: MemoryDevice,
    die_stacked: MemoryDevice,
    off_allocator: FrameAllocator,
    die_allocator: FrameAllocator,
}

/// The multi-socket two-level physical memory system.
///
/// System-physical frames are laid out as: `[0, off_chip_frames)` on the
/// off-chip devices (socket-contiguous: socket *s* owns the *s*-th equal
/// chunk), `[off_chip_frames, off_chip_frames + die_frames)` on the
/// die-stacked devices (chunked likewise), and everything above that is
/// *hypervisor / page-table reserve* space charged at off-chip latency on
/// socket 0.  A single-socket configuration reproduces the original flat
/// layout exactly.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    sockets: Vec<SocketMemory>,
    /// Inter-socket links, one per *destination* socket (the ingress port of
    /// that socket's memory controller): remote traffic towards different
    /// sockets rides different point-to-point links, so aggregate link
    /// bandwidth grows with the socket count, as on real QPI/UPI meshes.
    links: Vec<MemoryDevice>,
    off_per_socket: u64,
    die_per_socket: u64,
    off_chip_frames: u64,
    die_frames: u64,
}

impl MemorySystem {
    /// Creates the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `config.numa.sockets` is zero.
    #[must_use]
    pub fn new(config: MemorySystemConfig) -> Self {
        let socket_count = config.numa.sockets;
        assert!(
            socket_count > 0,
            "a memory system needs at least one socket"
        );
        // Capacities that do not divide evenly are truncated to the largest
        // per-socket-equal total (at most sockets-1 frames are lost).
        let off_per_socket = config.off_chip.capacity_bytes / PAGE_SIZE_4K / socket_count as u64;
        let die_per_socket = config.die_stacked.capacity_bytes / PAGE_SIZE_4K / socket_count as u64;
        let off_chip_frames = off_per_socket * socket_count as u64;
        let die_frames = die_per_socket * socket_count as u64;
        let sockets = (0..socket_count as u64)
            .map(|s| SocketMemory {
                off_chip: MemoryDevice::new(config.off_chip),
                die_stacked: MemoryDevice::new(config.die_stacked),
                off_allocator: FrameAllocator::new(s * off_per_socket, off_per_socket),
                die_allocator: FrameAllocator::new(
                    off_chip_frames + s * die_per_socket,
                    die_per_socket,
                ),
            })
            .collect();
        let links = (0..socket_count)
            .map(|_| {
                MemoryDevice::new(DeviceConfig {
                    // The link is not an addressable device; the kind is only
                    // a placeholder required by the shared queueing model.
                    kind: MemoryKind::OffChip,
                    capacity_bytes: 0,
                    base_latency_cycles: config.numa.link.base_latency_cycles,
                    service_cycles_per_line: config.numa.link.service_cycles_per_line,
                })
            })
            .collect();
        Self {
            config,
            sockets,
            links,
            off_per_socket,
            die_per_socket,
            off_chip_frames,
            die_frames,
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MemorySystemConfig {
        &self.config
    }

    /// Number of sockets.
    #[must_use]
    pub fn sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Which device a system frame lives on.  Frames beyond both devices
    /// (the page-table / hypervisor reserve) are charged as off-chip.
    #[must_use]
    pub fn kind_of(&self, frame: SystemFrame) -> MemoryKind {
        if frame.number() >= self.off_chip_frames
            && frame.number() < self.off_chip_frames + self.die_frames
        {
            MemoryKind::DieStacked
        } else {
            MemoryKind::OffChip
        }
    }

    /// Which socket a system frame's memory is attached to.  Reserve frames
    /// (page tables, hypervisor structures) live on socket 0.
    #[must_use]
    pub fn socket_of(&self, frame: SystemFrame) -> SocketId {
        let n = frame.number();
        let socket = if n < self.off_chip_frames && self.off_per_socket > 0 {
            n / self.off_per_socket
        } else if n >= self.off_chip_frames
            && n < self.off_chip_frames + self.die_frames
            && self.die_per_socket > 0
        {
            (n - self.off_chip_frames) / self.die_per_socket
        } else {
            0
        };
        SocketId::new(socket.min(self.sockets.len() as u64 - 1) as u32)
    }

    /// First frame number of the die-stacked region.
    #[must_use]
    pub fn die_stacked_base(&self) -> SystemFrame {
        SystemFrame::new(self.off_chip_frames)
    }

    /// First frame number above both devices; useful as a base for
    /// page-table / hypervisor reserve allocations.
    #[must_use]
    pub fn reserve_base(&self) -> SystemFrame {
        SystemFrame::new(self.off_chip_frames + self.die_frames)
    }

    /// Number of free frames on a device kind, summed over sockets.
    #[must_use]
    pub fn free_frames(&self, kind: MemoryKind) -> u64 {
        self.sockets
            .iter()
            .map(|s| match kind {
                MemoryKind::DieStacked => s.die_allocator.free(),
                MemoryKind::OffChip => s.off_allocator.free(),
            })
            .sum()
    }

    /// Number of free frames of `kind` on one socket.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    #[must_use]
    pub fn free_frames_on(&self, kind: MemoryKind, socket: SocketId) -> u64 {
        let s = &self.sockets[socket.index()];
        match kind {
            MemoryKind::DieStacked => s.die_allocator.free(),
            MemoryKind::OffChip => s.off_allocator.free(),
        }
    }

    /// Total frames of a device kind, summed over sockets.
    #[must_use]
    pub fn total_frames(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::DieStacked => self.die_frames,
            MemoryKind::OffChip => self.off_chip_frames,
        }
    }

    /// Allocates a frame of `kind`, preferring socket 0 (the classic
    /// single-socket behaviour).  NUMA-aware callers should use
    /// [`MemorySystem::allocate_on`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if no socket has a free frame.
    pub fn allocate(&mut self, kind: MemoryKind) -> Result<SystemFrame> {
        self.allocate_on(kind, SocketId::new(0))
    }

    /// Allocates a frame of `kind`, preferring `socket` and falling back to
    /// the other sockets in ascending order (a first-touch allocation that
    /// spills to remote sockets only when the local group is exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if no socket has a free frame.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn allocate_on(&mut self, kind: MemoryKind, socket: SocketId) -> Result<SystemFrame> {
        let count = self.sockets.len();
        assert!(socket.index() < count, "socket out of range");
        for offset in 0..count {
            let s = (socket.index() + offset) % count;
            let allocator = match kind {
                MemoryKind::DieStacked => &mut self.sockets[s].die_allocator,
                MemoryKind::OffChip => &mut self.sockets[s].off_allocator,
            };
            if let Some(frame) = allocator.allocate() {
                return Ok(frame);
            }
        }
        Err(SimError::OutOfMemory {
            device: kind.to_string(),
        })
    }

    /// Frees a previously allocated frame (returned to its socket's group).
    pub fn free(&mut self, frame: SystemFrame) {
        let kind = self.kind_of(frame);
        let socket = self.socket_of(frame);
        let s = &mut self.sockets[socket.index()];
        match kind {
            MemoryKind::DieStacked => s.die_allocator.free_frame(frame),
            MemoryKind::OffChip => s.off_allocator.free_frame(frame),
        }
    }

    /// Performs one cache-line access to `frame`'s device at simulation time
    /// `now`, issued by `stream` (the VM slot) from a CPU on `from_socket`,
    /// returning the access latency in cycles (base + queueing, plus the
    /// inter-socket link traversal and remote-controller penalty when the
    /// frame lives on another socket).
    pub fn access(
        &mut self,
        frame: SystemFrame,
        stream: usize,
        from_socket: SocketId,
        now: u64,
    ) -> u64 {
        self.access_detail(frame, stream, from_socket, now).total
    }

    /// Like [`MemorySystem::access`], but also reports the queueing
    /// component (device backlog plus, for remote frames, link backlog) on
    /// its own so callers can histogram DRAM queueing delay separately
    /// from the fixed device latency.
    pub fn access_detail(
        &mut self,
        frame: SystemFrame,
        stream: usize,
        from_socket: SocketId,
        now: u64,
    ) -> AccessCost {
        let kind = self.kind_of(frame);
        let home = self.socket_of(frame);
        let device = self.device_mut(home, kind);
        let (mut cycles, mut queueing) = device.access_detail(stream, now);
        if home != from_socket {
            cycles += self.config.numa.remote_dram_extra_cycles;
            let (link_cycles, link_queueing) = self.links[home.index()].access_detail(stream, now);
            cycles += link_cycles;
            queueing += link_queueing;
        }
        AccessCost {
            total: cycles,
            queueing,
        }
    }

    /// Whether an access to `frame` from a CPU on `from_socket` crosses the
    /// inter-socket link.
    #[must_use]
    pub fn is_remote(&self, frame: SystemFrame, from_socket: SocketId) -> bool {
        self.socket_of(frame) != from_socket
    }

    /// Cost, in cycles, of copying one 4 KiB page from `from` to `to` on
    /// behalf of `stream`, including the bandwidth occupancy it adds to both
    /// devices — and to the inter-socket link when the copy crosses sockets.
    pub fn page_copy_cycles(
        &mut self,
        from: SystemFrame,
        to: SystemFrame,
        stream: usize,
        now: u64,
    ) -> u64 {
        let lines = PAGE_SIZE_4K / CACHE_LINE_BYTES;
        let src_kind = self.kind_of(from);
        let dst_kind = self.kind_of(to);
        let src_socket = self.socket_of(from);
        let dst_socket = self.socket_of(to);
        let mut cycles = self.config.page_copy_overhead_cycles;
        // Streaming transfers pipeline well; charge the occupancy of both
        // devices but only the larger of the two as serialised latency.
        let src_cost: u64 = (0..lines)
            .map(|i| {
                self.device_mut(src_socket, src_kind)
                    .occupy(stream, now + i)
            })
            .sum();
        let dst_cost: u64 = (0..lines)
            .map(|i| {
                self.device_mut(dst_socket, dst_kind)
                    .occupy(stream, now + i)
            })
            .sum();
        cycles += src_cost.max(dst_cost);
        if src_socket != dst_socket {
            // The whole page crosses the destination's ingress link; its
            // occupancy serialises with the device transfers.
            let link = &mut self.links[dst_socket.index()];
            let link_cost: u64 = (0..lines).map(|i| link.occupy(stream, now + i)).sum();
            cycles += self.config.numa.link.base_latency_cycles + link_cost;
        }
        cycles
    }

    fn device_mut(&mut self, socket: SocketId, kind: MemoryKind) -> &mut MemoryDevice {
        let s = &mut self.sockets[socket.index()];
        match kind {
            MemoryKind::DieStacked => &mut s.die_stacked,
            MemoryKind::OffChip => &mut s.off_chip,
        }
    }

    fn device(&self, socket: SocketId, kind: MemoryKind) -> &MemoryDevice {
        let s = &self.sockets[socket.index()];
        match kind {
            MemoryKind::DieStacked => &s.die_stacked,
            MemoryKind::OffChip => &s.off_chip,
        }
    }

    // ----- phased (simulate → commit) access planning -----------------------

    /// Predicts the latency of one demand line access against the *frozen*
    /// device state plus the caller's own pending occupancy (`pending`), and
    /// deposits the access's occupancy into `pending`.  No shared state is
    /// mutated; the caller logs a matching [`MemoryBooking::Access`] and
    /// replays it at the slice barrier via [`MemorySystem::apply_booking`].
    ///
    /// The prediction sees the backlog other tenants had accumulated by the
    /// start of the slice plus everything this caller booked since, but not
    /// other workers' in-flight bookings — within-slice cross-VM queueing
    /// lands on the next slice instead, which is what makes the result
    /// independent of worker scheduling.
    pub fn plan_access(
        &self,
        frame: SystemFrame,
        from_socket: SocketId,
        now: u64,
        pending: &mut DramPending,
    ) -> u64 {
        self.plan_access_detail(frame, from_socket, now, pending)
            .total
    }

    /// Like [`MemorySystem::plan_access`], but also reports the projected
    /// queueing component on its own (the frozen-state analogue of
    /// [`MemorySystem::access_detail`]).
    pub fn plan_access_detail(
        &self,
        frame: SystemFrame,
        from_socket: SocketId,
        now: u64,
        pending: &mut DramPending,
    ) -> AccessCost {
        let kind = self.kind_of(frame);
        let home = self.socket_of(frame);
        let device = self.device(home, kind);
        let bucket = pending.device_mut(home, kind);
        let mut queueing = device.projected_queueing(now) + bucket.projected(now);
        // Deposit the *effective* service time so a DRAM brownout degrades
        // the planned path exactly as it degrades the serial one.
        bucket.deposit(device.effective_service() as f64);
        let mut cycles = device.config().base_latency_cycles + queueing;
        if home != from_socket {
            cycles += self.config.numa.remote_dram_extra_cycles;
            let link = &self.links[home.index()];
            let link_bucket = pending.link_mut(home);
            let link_queueing = link.projected_queueing(now) + link_bucket.projected(now);
            cycles += link.config().base_latency_cycles + link_queueing;
            queueing += link_queueing;
            link_bucket.deposit(link.config().service_cycles_per_line as f64);
        }
        AccessCost {
            total: cycles,
            queueing,
        }
    }

    /// Predicts the cost of copying one 4 KiB page (the per-line occupancy
    /// costs are state-independent constants, so this matches
    /// [`MemorySystem::page_copy_cycles`] exactly) and deposits the copy's
    /// occupancy into `pending`.  The caller logs a matching
    /// [`MemoryBooking::PageCopy`] for the commit replay.
    pub fn plan_page_copy(
        &self,
        from: SystemFrame,
        to: SystemFrame,
        now: u64,
        pending: &mut DramPending,
    ) -> u64 {
        let lines = PAGE_SIZE_4K / CACHE_LINE_BYTES;
        let src_kind = self.kind_of(from);
        let dst_kind = self.kind_of(to);
        let src_socket = self.socket_of(from);
        let dst_socket = self.socket_of(to);
        let mut cycles = self.config.page_copy_overhead_cycles;
        // Effective (brownout-adjusted) service, so the prediction keeps its
        // exact-match promise against the serial `page_copy_cycles` path.
        let src_service = self.device(src_socket, src_kind).effective_service();
        let dst_service = self.device(dst_socket, dst_kind).effective_service();
        // Drain the overlay to `now` (as the serial occupy() path drains the
        // real buckets) before depositing the copy's occupancy.
        let src_bucket = pending.device_mut(src_socket, src_kind);
        src_bucket.projected(now);
        src_bucket.deposit((lines * src_service) as f64);
        let dst_bucket = pending.device_mut(dst_socket, dst_kind);
        dst_bucket.projected(now);
        dst_bucket.deposit((lines * dst_service) as f64);
        cycles += (lines * src_service).max(lines * dst_service);
        if src_socket != dst_socket {
            let link_service = self.links[dst_socket.index()]
                .config()
                .service_cycles_per_line;
            let link_bucket = pending.link_mut(dst_socket);
            link_bucket.projected(now);
            link_bucket.deposit((lines * link_service) as f64);
            cycles += self.config.numa.link.base_latency_cycles + lines * link_service;
        }
        cycles
    }

    /// Replays one logged booking against the real devices (commit phase,
    /// canonical order).  The returned latency of the underlying call is
    /// discarded — the simulate phase already charged its prediction — but
    /// the occupancy deposits and the per-stream attribution statistics
    /// land exactly as a serial run's would.
    pub fn apply_booking(&mut self, booking: &MemoryBooking) {
        match *booking {
            MemoryBooking::Access {
                frame,
                stream,
                from_socket,
                now,
            } => {
                let _ = self.access(frame, stream, from_socket, now);
            }
            MemoryBooking::PageCopy {
                from,
                to,
                stream,
                now,
            } => {
                let _ = self.page_copy_cycles(from, to, stream, now);
            }
        }
    }

    /// Applies a transient DRAM brownout: every device (both kinds, all
    /// sockets) serves lines `multiplier_x100/100` times slower until the
    /// multiplier is set back to `100`.  Inter-socket links are *not*
    /// affected — a brownout is a DRAM-device fault, not a fabric fault.
    pub fn set_dram_service_multiplier_x100(&mut self, multiplier_x100: u64) {
        for s in &mut self.sockets {
            s.die_stacked.set_service_multiplier_x100(multiplier_x100);
            s.off_chip.set_service_multiplier_x100(multiplier_x100);
        }
    }

    /// Resets every device's (and the link's) queueing clock (used when the
    /// simulation's cycle counters are reset between warmup and
    /// measurement).
    pub fn reset_timing(&mut self) {
        for s in &mut self.sockets {
            s.die_stacked.reset_timing();
            s.off_chip.reset_timing();
        }
        for link in &mut self.links {
            link.reset_timing();
        }
    }

    /// The queueing backlog (in cycles) an access at time `now` would
    /// observe on devices of `kind`, summed over sockets, computed
    /// against frozen device state (no mutation) — the DRAM queue-depth
    /// gauge the counter timelines sample.  Inter-socket links are not
    /// included.
    #[must_use]
    pub fn projected_queueing(&self, kind: MemoryKind, now: u64) -> u64 {
        (0..self.sockets.len())
            .map(|s| {
                self.device(SocketId::new(s as u32), kind)
                    .projected_queueing(now)
            })
            .sum()
    }

    /// Per-device-kind statistics, summed over sockets.
    #[must_use]
    pub fn device_stats(&self, kind: MemoryKind) -> DeviceStats {
        let mut total = DeviceStats::default();
        for s in &self.sockets {
            total.merge(&match kind {
                MemoryKind::DieStacked => s.die_stacked.stats(),
                MemoryKind::OffChip => s.off_chip.stats(),
            });
        }
        total
    }

    /// Statistics of one socket's device of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    #[must_use]
    pub fn socket_device_stats(&self, socket: SocketId, kind: MemoryKind) -> DeviceStats {
        let s = &self.sockets[socket.index()];
        match kind {
            MemoryKind::DieStacked => s.die_stacked.stats(),
            MemoryKind::OffChip => s.off_chip.stats(),
        }
    }

    /// One stream's statistics on one socket's device of `kind` — the
    /// per-`(socket, device, vmid)` bandwidth attribution.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    #[must_use]
    pub fn stream_device_stats(
        &self,
        socket: SocketId,
        kind: MemoryKind,
        stream: usize,
    ) -> DeviceStats {
        let s = &self.sockets[socket.index()];
        match kind {
            MemoryKind::DieStacked => s.die_stacked.stream_stats(stream),
            MemoryKind::OffChip => s.off_chip.stream_stats(stream),
        }
    }

    /// Largest stream index that has touched any device (plus one), i.e. an
    /// upper bound usable to iterate every stream's attribution.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.sockets
            .iter()
            .flat_map(|s| [s.die_stacked.stream_count(), s.off_chip.stream_count()])
            .chain(self.links.iter().map(MemoryDevice::stream_count))
            .max()
            .unwrap_or(0)
    }

    /// Inter-socket link statistics, summed over every per-destination link
    /// (all-zero on a single-socket host).
    #[must_use]
    pub fn link_stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for link in &self.links {
            total.merge(&link.stats());
        }
        total
    }

    /// One stream's inter-socket link statistics, summed over links.
    #[must_use]
    pub fn link_stream_stats(&self, stream: usize) -> DeviceStats {
        let mut total = DeviceStats::default();
        for link in &self.links {
            total.merge(&link.stream_stats(stream));
        }
        total
    }
}

/// One deferred DRAM/link booking, logged during simulate and replayed at
/// the slice barrier in canonical order via [`MemorySystem::apply_booking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryBooking {
    /// A demand line access.
    Access {
        /// The accessed frame.
        frame: SystemFrame,
        /// The issuing stream (VM slot).
        stream: usize,
        /// Socket of the issuing CPU.
        from_socket: SocketId,
        /// Simulation time of the access (the issuing CPU's cycle counter).
        now: u64,
    },
    /// A 4 KiB page copy between devices.
    PageCopy {
        /// Source frame.
        from: SystemFrame,
        /// Destination frame.
        to: SystemFrame,
        /// The issuing stream (VM slot).
        stream: usize,
        /// Simulation time of the copy.
        now: u64,
    },
}

/// One worker's private occupancy overlay: the backlog its *own* bookings
/// have accumulated this slice, per `(socket, device)` and per link.  The
/// overlay drains at the device's service rate like the real buckets do, so
/// back-to-back accesses by one worker still observe their own queueing
/// even though the shared devices are frozen until the barrier.
#[derive(Debug, Clone)]
pub struct DramPending {
    /// Per socket: `[off-chip, die-stacked]` buckets.
    devices: Vec<[PendingLoad; 2]>,
    links: Vec<PendingLoad>,
}

impl DramPending {
    /// An empty overlay for a host with `sockets` sockets.
    #[must_use]
    pub fn new(sockets: usize) -> Self {
        Self {
            devices: vec![[PendingLoad::default(), PendingLoad::default()]; sockets],
            links: vec![PendingLoad::default(); sockets],
        }
    }

    /// Clears every bucket (called at each slice start, when the shared
    /// devices re-freeze with the previous slice's bookings applied).
    pub fn clear(&mut self) {
        for socket in &mut self.devices {
            for bucket in socket.iter_mut() {
                *bucket = PendingLoad::default();
            }
        }
        for link in &mut self.links {
            *link = PendingLoad::default();
        }
    }

    fn device_mut(&mut self, socket: SocketId, kind: MemoryKind) -> &mut PendingLoad {
        let idx = match kind {
            MemoryKind::OffChip => 0,
            MemoryKind::DieStacked => 1,
        };
        &mut self.devices[socket.index()][idx]
    }

    fn link_mut(&mut self, socket: SocketId) -> &mut PendingLoad {
        &mut self.links[socket.index()]
    }
}

/// A single draining backlog bucket of a [`DramPending`] overlay.
#[derive(Debug, Clone, Copy, Default)]
struct PendingLoad {
    backlog: f64,
    last_update: u64,
}

impl PendingLoad {
    /// Drains the bucket to `now` and returns the remaining backlog.
    fn projected(&mut self, now: u64) -> u64 {
        if now > self.last_update {
            let elapsed = (now - self.last_update) as f64;
            self.backlog = (self.backlog - elapsed).max(0.0);
            self.last_update = now;
        }
        self.backlog as u64
    }

    fn deposit(&mut self, cycles: f64) {
        self.backlog += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: SocketId = SocketId::new(0);

    #[test]
    fn layout_regions_do_not_overlap() {
        let mem = MemorySystem::new(MemorySystemConfig::paper_default());
        assert_eq!(mem.total_frames(MemoryKind::OffChip), 8 * 1024 * 1024 / 4);
        assert_eq!(
            mem.total_frames(MemoryKind::DieStacked),
            2 * 1024 * 1024 / 4
        );
        assert_eq!(mem.kind_of(SystemFrame::new(0)), MemoryKind::OffChip);
        assert_eq!(mem.kind_of(mem.die_stacked_base()), MemoryKind::DieStacked);
        assert_eq!(mem.kind_of(mem.reserve_base()), MemoryKind::OffChip);
    }

    #[test]
    fn allocation_respects_device() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let fast = mem.allocate(MemoryKind::DieStacked).unwrap();
        assert_eq!(mem.kind_of(fast), MemoryKind::DieStacked);
        let slow = mem.allocate(MemoryKind::OffChip).unwrap();
        assert_eq!(mem.kind_of(slow), MemoryKind::OffChip);
    }

    #[test]
    fn no_hbm_config_cannot_allocate_fast_frames() {
        let mut mem = MemorySystem::new(MemorySystemConfig::no_hbm());
        assert!(mem.allocate(MemoryKind::DieStacked).is_err());
        assert_eq!(mem.free_frames(MemoryKind::DieStacked), 0);
    }

    #[test]
    fn free_then_reallocate() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let before = mem.free_frames(MemoryKind::DieStacked);
        let frame = mem.allocate(MemoryKind::DieStacked).unwrap();
        assert_eq!(mem.free_frames(MemoryKind::DieStacked), before - 1);
        mem.free(frame);
        assert_eq!(mem.free_frames(MemoryKind::DieStacked), before);
    }

    #[test]
    fn bandwidth_differential_shows_under_load() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let fast = mem.allocate(MemoryKind::DieStacked).unwrap();
        let slow = mem.allocate(MemoryKind::OffChip).unwrap();
        let mut fast_total = 0u64;
        let mut slow_total = 0u64;
        // Hammer both devices with back-to-back accesses.
        for i in 0..10_000u64 {
            fast_total += mem.access(fast, 0, S0, i);
            slow_total += mem.access(slow, 0, S0, i);
        }
        assert!(
            slow_total > 2 * fast_total,
            "off-chip should queue much more: fast={fast_total} slow={slow_total}"
        );
    }

    #[test]
    fn page_copy_cost_is_substantial() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let src = mem.allocate(MemoryKind::OffChip).unwrap();
        let dst = mem.allocate(MemoryKind::DieStacked).unwrap();
        let cost = mem.page_copy_cycles(src, dst, 0, 0);
        assert!(cost >= MemorySystemConfig::paper_default().page_copy_overhead_cycles);
        assert!(cost < 1_000_000);
    }

    // ----- NUMA-specific behaviour ------------------------------------------

    fn two_socket_config() -> MemorySystemConfig {
        MemorySystemConfig::paper_default().with_numa(NumaConfig::symmetric(2))
    }

    #[test]
    fn sockets_partition_both_device_regions() {
        let mem = MemorySystem::new(two_socket_config());
        assert_eq!(mem.sockets(), 2);
        let off_total = mem.total_frames(MemoryKind::OffChip);
        let die_total = mem.total_frames(MemoryKind::DieStacked);
        // First/last frame of each half.
        assert_eq!(mem.socket_of(SystemFrame::new(0)), SocketId::new(0));
        assert_eq!(
            mem.socket_of(SystemFrame::new(off_total / 2 - 1)),
            SocketId::new(0)
        );
        assert_eq!(
            mem.socket_of(SystemFrame::new(off_total / 2)),
            SocketId::new(1)
        );
        assert_eq!(mem.socket_of(mem.die_stacked_base()), SocketId::new(0));
        assert_eq!(
            mem.socket_of(SystemFrame::new(off_total + die_total / 2)),
            SocketId::new(1)
        );
        // Reserve frames are hypervisor-owned: socket 0.
        assert_eq!(mem.socket_of(mem.reserve_base()), SocketId::new(0));
        // Per-socket free counts halve the totals.
        assert_eq!(
            mem.free_frames_on(MemoryKind::DieStacked, SocketId::new(0)),
            die_total / 2
        );
    }

    #[test]
    fn allocate_on_prefers_the_requested_socket_and_spills() {
        let mut cfg = two_socket_config();
        cfg.die_stacked.capacity_bytes = 2 * PAGE_SIZE_4K; // one frame per socket
        let mut mem = MemorySystem::new(cfg);
        let s1 = SocketId::new(1);
        let first = mem.allocate_on(MemoryKind::DieStacked, s1).unwrap();
        assert_eq!(mem.socket_of(first), s1);
        // Socket 1 is now full: the next preferred-socket-1 allocation
        // spills to socket 0 rather than failing.
        let second = mem.allocate_on(MemoryKind::DieStacked, s1).unwrap();
        assert_eq!(mem.socket_of(second), SocketId::new(0));
        assert!(mem.allocate_on(MemoryKind::DieStacked, s1).is_err());
    }

    #[test]
    fn remote_access_strictly_exceeds_local_under_identical_load() {
        // Two freshly built systems, identical in every way; the only
        // difference is the socket the accessing CPU sits on.
        let mut local_sys = MemorySystem::new(two_socket_config());
        let mut remote_sys = MemorySystem::new(two_socket_config());
        let frame = local_sys.allocate_on(MemoryKind::OffChip, S0).unwrap();
        let frame2 = remote_sys.allocate_on(MemoryKind::OffChip, S0).unwrap();
        assert_eq!(frame, frame2);
        for i in 0..1_000u64 {
            let local = local_sys.access(frame, 0, S0, i);
            let remote = remote_sys.access(frame2, 0, SocketId::new(1), i);
            assert!(
                remote > local,
                "remote access ({remote}) must strictly exceed local ({local}) at step {i}"
            );
        }
        assert!(local_sys.link_stats().accesses.get() == 0);
        assert!(remote_sys.link_stats().accesses.get() >= 1_000);
    }

    #[test]
    fn cross_socket_page_copy_occupies_the_link() {
        let mut mem = MemorySystem::new(two_socket_config());
        let src = mem.allocate_on(MemoryKind::OffChip, S0).unwrap();
        let local_dst = mem.allocate_on(MemoryKind::DieStacked, S0).unwrap();
        let remote_dst = mem
            .allocate_on(MemoryKind::DieStacked, SocketId::new(1))
            .unwrap();
        let local = mem.page_copy_cycles(src, local_dst, 0, 0);
        assert_eq!(mem.link_stats().occupied_lines.get(), 0);
        let remote = mem.page_copy_cycles(src, remote_dst, 0, 10_000_000);
        assert!(remote > local, "cross-socket copy must cost more");
        assert_eq!(
            mem.link_stats().occupied_lines.get(),
            PAGE_SIZE_4K / CACHE_LINE_BYTES
        );
    }

    #[test]
    fn plan_access_matches_serial_on_an_idle_system() {
        // On an idle device the prediction and the serial path agree
        // exactly; the replayed booking then reproduces the serial
        // occupancy and statistics.
        let mut serial = MemorySystem::new(MemorySystemConfig::paper_default());
        let mut phased = MemorySystem::new(MemorySystemConfig::paper_default());
        let frame = serial.allocate(MemoryKind::OffChip).unwrap();
        let frame2 = phased.allocate(MemoryKind::OffChip).unwrap();
        assert_eq!(frame, frame2);
        let mut pending = DramPending::new(1);
        for i in 0..200u64 {
            let want = serial.access(frame, 0, S0, i);
            let got = phased.plan_access(frame2, S0, i, &mut pending);
            assert_eq!(want, got, "step {i}");
            phased.apply_booking(&MemoryBooking::Access {
                frame: frame2,
                stream: 0,
                from_socket: S0,
                now: i,
            });
            // Re-freeze after each barrier, as the engine does per slice.
            pending.clear();
        }
        assert_eq!(serial.device_stats(MemoryKind::OffChip).accesses.get(), 200);
        assert_eq!(phased.device_stats(MemoryKind::OffChip).accesses.get(), 200);
    }

    #[test]
    fn plan_page_copy_matches_the_serial_constant_cost() {
        let mut mem = MemorySystem::new(two_socket_config());
        let src = mem.allocate_on(MemoryKind::OffChip, S0).unwrap();
        let dst = mem
            .allocate_on(MemoryKind::DieStacked, SocketId::new(1))
            .unwrap();
        let mut pending = DramPending::new(2);
        let planned = mem.plan_page_copy(src, dst, 0, &mut pending);
        let serial = mem.page_copy_cycles(src, dst, 0, 0);
        assert_eq!(planned, serial);
    }

    #[test]
    fn pending_overlay_queues_own_bookings_and_drains() {
        let mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let frame = SystemFrame::new(0); // off-chip
        let mut pending = DramPending::new(1);
        let first = mem.plan_access(frame, S0, 0, &mut pending);
        let second = mem.plan_access(frame, S0, 0, &mut pending);
        assert!(
            second > first,
            "back-to-back planned accesses must queue behind the caller's own bookings"
        );
        // After a long idle gap the overlay has drained back to base.
        let relaxed = mem.plan_access(frame, S0, 1_000_000, &mut pending);
        assert_eq!(relaxed, first);
    }

    #[test]
    fn single_socket_never_touches_the_link() {
        let mut mem = MemorySystem::new(MemorySystemConfig::paper_default());
        let frame = mem.allocate(MemoryKind::OffChip).unwrap();
        for i in 0..100 {
            mem.access(frame, 0, S0, i);
        }
        assert_eq!(mem.link_stats().accesses.get(), 0);
        assert!(!mem.is_remote(frame, S0));
    }
}
