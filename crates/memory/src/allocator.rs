//! A simple physical-frame allocator over a contiguous range.

use hatric_types::SystemFrame;

/// Allocates 4 KiB frames from a contiguous range, reusing freed frames in
/// LIFO order (freed frames are preferred so die-stacked capacity is packed).
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    base: u64,
    total: u64,
    next_fresh: u64,
    free_list: Vec<u64>,
}

impl FrameAllocator {
    /// Creates an allocator covering `[base, base + total)` frame numbers.
    #[must_use]
    pub fn new(base: u64, total: u64) -> Self {
        Self {
            base,
            total,
            next_fresh: 0,
            free_list: Vec::new(),
        }
    }

    /// Number of frames still available.
    #[must_use]
    pub fn free(&self) -> u64 {
        (self.total - self.next_fresh) + self.free_list.len() as u64
    }

    /// Number of frames handed out and not yet freed.
    #[must_use]
    pub fn in_use(&self) -> u64 {
        self.next_fresh - self.free_list.len() as u64
    }

    /// Allocates one frame, or `None` if the range is exhausted.
    pub fn allocate(&mut self) -> Option<SystemFrame> {
        if let Some(number) = self.free_list.pop() {
            return Some(SystemFrame::new(number));
        }
        if self.next_fresh < self.total {
            let number = self.base + self.next_fresh;
            self.next_fresh += 1;
            Some(SystemFrame::new(number))
        } else {
            None
        }
    }

    /// Returns a frame to the allocator.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frame lies outside this allocator's range.
    pub fn free_frame(&mut self, frame: SystemFrame) {
        debug_assert!(
            frame.number() >= self.base && frame.number() < self.base + self.total,
            "frame {frame} outside allocator range"
        );
        self.free_list.push(frame.number());
    }

    /// Whether the allocator has no free frames left.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.free() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_sequentially_from_base() {
        let mut alloc = FrameAllocator::new(100, 3);
        assert_eq!(alloc.allocate(), Some(SystemFrame::new(100)));
        assert_eq!(alloc.allocate(), Some(SystemFrame::new(101)));
        assert_eq!(alloc.allocate(), Some(SystemFrame::new(102)));
        assert_eq!(alloc.allocate(), None);
        assert!(alloc.is_exhausted());
    }

    #[test]
    fn freed_frames_are_reused_first() {
        let mut alloc = FrameAllocator::new(0, 10);
        let a = alloc.allocate().unwrap();
        let _b = alloc.allocate().unwrap();
        alloc.free_frame(a);
        assert_eq!(alloc.allocate(), Some(a));
    }

    #[test]
    fn accounting_is_consistent() {
        let mut alloc = FrameAllocator::new(0, 10);
        assert_eq!(alloc.free(), 10);
        let f = alloc.allocate().unwrap();
        assert_eq!(alloc.free(), 9);
        assert_eq!(alloc.in_use(), 1);
        alloc.free_frame(f);
        assert_eq!(alloc.free(), 10);
        assert_eq!(alloc.in_use(), 0);
    }

    #[test]
    fn zero_capacity_allocator_is_always_exhausted() {
        let mut alloc = FrameAllocator::new(0, 0);
        assert!(alloc.is_exhausted());
        assert_eq!(alloc.allocate(), None);
    }
}
