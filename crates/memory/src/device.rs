//! A single DRAM device with a stream-aware leaky-bucket queueing model.
//!
//! The device serves many *streams* — one per VM slot (plus the hypervisor's
//! own traffic) — through one shared bandwidth pipe.  Each stream keeps its
//! own backlog bucket so the occupancy every tenant contributes is known
//! exactly, while the queueing delay any access observes is the *total*
//! backlog across all streams: bandwidth is shared, attribution is per VM.
//! With a single stream the model degenerates to the classic single-bucket
//! leaky bucket the simulator has always used.

use core::fmt;

use serde::{Deserialize, Serialize};

use hatric_types::Counter;

/// The two kinds of DRAM in the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Small, high-bandwidth die-stacked DRAM.
    DieStacked,
    /// Large, lower-bandwidth off-chip DRAM.
    OffChip,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::DieStacked => write!(f, "die-stacked DRAM"),
            MemoryKind::OffChip => write!(f, "off-chip DRAM"),
        }
    }
}

/// Static parameters of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Which device this is.
    pub kind: MemoryKind,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Unloaded access latency, in CPU cycles.
    pub base_latency_cycles: u64,
    /// Service time per 64-byte line, in cycles — the inverse of bandwidth.
    /// The paper's 4× bandwidth differential is expressed by giving the
    /// die-stacked device a service time 4× smaller.
    pub service_cycles_per_line: u64,
}

/// Counters kept per device and per stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of demand line accesses served.
    pub accesses: Counter,
    /// Total queueing delay added on top of the base latency.
    pub queueing_cycles: Counter,
    /// Bulk line transfers (page-copy occupancy) deposited without a demand
    /// access.
    pub occupied_lines: Counter,
}

impl DeviceStats {
    /// Accumulates `other` into `self` (used when aggregating per-socket or
    /// per-stream statistics).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.accesses.add(other.accesses.get());
        self.queueing_cycles.add(other.queueing_cycles.get());
        self.occupied_lines.add(other.occupied_lines.get());
    }
}

/// One stream's share of the device: its backlog bucket and its counters.
#[derive(Debug, Clone, Default)]
struct StreamState {
    backlog_cycles: f64,
    stats: DeviceStats,
}

/// One DRAM device modelled as a leaky bucket per stream: every access
/// deposits its service time into the issuing stream's bucket; the buckets
/// drain in real time at the device's (shared) service rate; the queueing
/// delay an access observes is the *sum* of all buckets — whoever uses the
/// pipe delays everyone behind it, but each stream's deposits are accounted
/// separately so per-VM bandwidth attribution is exact.
#[derive(Debug, Clone)]
pub struct MemoryDevice {
    config: DeviceConfig,
    streams: Vec<StreamState>,
    last_update: u64,
    stats: DeviceStats,
    /// Transient service-latency multiplier × 100 (`100` = nominal).
    /// Fault injection raises it during a DRAM brownout; every deposit —
    /// serial or planned — goes through [`MemoryDevice::effective_service`]
    /// so both slice-engine backends observe the same degraded timing.
    service_multiplier_x100: u64,
}

impl MemoryDevice {
    /// Creates an idle device.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            streams: Vec::new(),
            last_update: 0,
            stats: DeviceStats::default(),
            service_multiplier_x100: 100,
        }
    }

    /// The device's static parameters.
    #[must_use]
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Sets the transient brownout multiplier (×100 fixed point; `100`
    /// restores nominal service).  Zero is clamped to `100`: a brownout
    /// slows the device, it never makes it free.
    pub fn set_service_multiplier_x100(&mut self, multiplier_x100: u64) {
        self.service_multiplier_x100 = multiplier_x100.max(1);
    }

    /// The brownout multiplier currently in force.
    #[must_use]
    pub fn service_multiplier_x100(&self) -> u64 {
        self.service_multiplier_x100
    }

    /// Service time per line with the brownout multiplier applied
    /// (integer fixed-point: exact identity at the nominal `100`).
    #[must_use]
    pub fn effective_service(&self) -> u64 {
        self.config.service_cycles_per_line * self.service_multiplier_x100 / 100
    }

    /// Drains the shared pipe: `elapsed` cycles of service are consumed from
    /// the stream buckets in index order (a deterministic FIFO
    /// approximation).  The total backlog shrinks exactly as the classic
    /// single-bucket model's would.
    fn drain(&mut self, now: u64) {
        if now > self.last_update {
            let mut remaining = (now - self.last_update) as f64;
            for stream in &mut self.streams {
                if remaining <= 0.0 {
                    break;
                }
                let take = stream.backlog_cycles.min(remaining);
                stream.backlog_cycles -= take;
                remaining -= take;
            }
            self.last_update = now;
        }
    }

    fn ensure_stream(&mut self, stream: usize) {
        if stream >= self.streams.len() {
            self.streams.resize_with(stream + 1, StreamState::default);
        }
    }

    fn total_backlog(&self) -> f64 {
        self.streams.iter().map(|s| s.backlog_cycles).sum()
    }

    /// Adds one line transfer's occupancy by `stream` at time `now` and
    /// returns the occupancy cost (used for bulk page copies, which see
    /// bandwidth but not the full random-access latency per line).
    pub fn occupy(&mut self, stream: usize, now: u64) -> u64 {
        self.drain(now);
        self.ensure_stream(stream);
        let service = self.effective_service();
        self.streams[stream].backlog_cycles += service as f64;
        self.streams[stream].stats.occupied_lines.incr();
        self.stats.occupied_lines.incr();
        service
    }

    /// Performs one demand access by `stream` at time `now`; returns its
    /// latency (base + current queueing delay across all streams) in cycles.
    pub fn access(&mut self, stream: usize, now: u64) -> u64 {
        self.access_detail(stream, now).0
    }

    /// Like [`MemoryDevice::access`], but returns `(latency, queueing)` so callers
    /// can attribute the queueing component separately (the telemetry layer
    /// histograms DRAM queueing delay on its own).
    pub fn access_detail(&mut self, stream: usize, now: u64) -> (u64, u64) {
        self.drain(now);
        self.ensure_stream(stream);
        let queueing = self.total_backlog() as u64;
        self.streams[stream].backlog_cycles += self.effective_service() as f64;
        self.streams[stream].stats.accesses.incr();
        self.streams[stream].stats.queueing_cycles.add(queueing);
        self.stats.accesses.incr();
        self.stats.queueing_cycles.add(queueing);
        (self.config.base_latency_cycles + queueing, queueing)
    }

    /// The queueing delay an access at time `now` would observe, computed
    /// against the device's *frozen* state (no mutation): the total backlog
    /// at the last update minus the service performed since.  The parallel
    /// slice engine uses this to predict latencies against a slice-start
    /// snapshot while the real bookings are deferred to the commit phase.
    #[must_use]
    pub fn projected_queueing(&self, now: u64) -> u64 {
        let elapsed = now.saturating_sub(self.last_update) as f64;
        let backlog = self.total_backlog() - elapsed;
        if backlog > 0.0 {
            backlog as u64
        } else {
            0
        }
    }

    /// Counters accumulated so far across all streams.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Counters accumulated by one stream (all-zero for a stream that never
    /// touched this device).
    #[must_use]
    pub fn stream_stats(&self, stream: usize) -> DeviceStats {
        self.streams
            .get(stream)
            .map(|s| s.stats)
            .unwrap_or_default()
    }

    /// Number of streams that have touched this device.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Resets the queueing clock (used when the simulation's cycle counters
    /// are reset between the warmup and measured phases).  Statistics are
    /// preserved.
    pub fn reset_timing(&mut self) {
        for stream in &mut self.streams {
            stream.backlog_cycles = 0.0;
        }
        self.last_update = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(service: u64) -> DeviceConfig {
        DeviceConfig {
            kind: MemoryKind::OffChip,
            capacity_bytes: 1 << 30,
            base_latency_cycles: 100,
            service_cycles_per_line: service,
        }
    }

    #[test]
    fn idle_device_has_base_latency() {
        let mut dev = MemoryDevice::new(cfg(4));
        assert_eq!(dev.access(0, 0), 100);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut dev = MemoryDevice::new(cfg(4));
        let first = dev.access(0, 0);
        let second = dev.access(0, 0);
        let third = dev.access(0, 0);
        assert!(second > first);
        assert!(third > second);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut dev = MemoryDevice::new(cfg(4));
        for _ in 0..100 {
            dev.access(0, 0);
        }
        let loaded = dev.access(0, 0);
        // After a long idle gap the device is back to base latency.
        let relaxed = dev.access(0, 1_000_000);
        assert!(loaded > relaxed);
        assert_eq!(relaxed, 100);
    }

    #[test]
    fn higher_bandwidth_queues_less() {
        let mut fast = MemoryDevice::new(cfg(1));
        let mut slow = MemoryDevice::new(cfg(4));
        let fast_total: u64 = (0..1000).map(|i| fast.access(0, i)).sum();
        let slow_total: u64 = (0..1000).map(|i| slow.access(0, i)).sum();
        assert!(slow_total > fast_total);
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = MemoryDevice::new(cfg(2));
        dev.access(0, 0);
        dev.access(0, 0);
        assert_eq!(dev.stats().accesses.get(), 2);
        assert!(dev.stats().queueing_cycles.get() >= 2);
    }

    #[test]
    fn streams_share_the_pipe_but_are_attributed_separately() {
        let mut dev = MemoryDevice::new(cfg(4));
        // Stream 0 loads the device; stream 1's first access still sees the
        // full backlog (bandwidth is shared)...
        for _ in 0..10 {
            dev.access(0, 0);
        }
        let delayed = dev.access(1, 0);
        assert!(delayed > 100, "stream 1 must queue behind stream 0");
        // ...but the books say exactly who deposited what.
        assert_eq!(dev.stream_stats(0).accesses.get(), 10);
        assert_eq!(dev.stream_stats(1).accesses.get(), 1);
        assert_eq!(dev.stream_stats(7).accesses.get(), 0);
    }

    #[test]
    fn brownout_multiplies_service_and_restores_exactly() {
        let mut dev = MemoryDevice::new(cfg(4));
        assert_eq!(dev.effective_service(), 4);
        dev.set_service_multiplier_x100(250);
        assert_eq!(dev.effective_service(), 10);
        assert_eq!(dev.occupy(0, 0), 10, "occupancy pays the browned-out rate");
        dev.set_service_multiplier_x100(100);
        assert_eq!(dev.effective_service(), 4, "nominal is an exact identity");
        // Zero is clamped: a brownout never makes service free.
        dev.set_service_multiplier_x100(0);
        assert!(dev.effective_service() <= 1);
    }

    #[test]
    fn browned_out_device_queues_more() {
        let mut nominal = MemoryDevice::new(cfg(4));
        let mut browned = MemoryDevice::new(cfg(4));
        browned.set_service_multiplier_x100(300);
        let a: u64 = (0..200).map(|i| nominal.access(0, i)).sum();
        let b: u64 = (0..200).map(|i| browned.access(0, i)).sum();
        assert!(b > a, "3x service time must raise queueing delay");
    }

    #[test]
    fn stream_stats_sum_to_device_totals() {
        let mut dev = MemoryDevice::new(cfg(3));
        for i in 0..50u64 {
            dev.access((i % 3) as usize, i / 2);
            if i % 7 == 0 {
                dev.occupy((i % 2) as usize, i / 2);
            }
        }
        let total = dev.stats();
        let mut summed = DeviceStats::default();
        for s in 0..dev.stream_count() {
            summed.merge(&dev.stream_stats(s));
        }
        assert_eq!(summed, total);
    }
}
