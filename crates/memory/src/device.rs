//! A single DRAM device with a leaky-bucket queueing model.

use core::fmt;

use serde::{Deserialize, Serialize};

use hatric_types::Counter;

/// The two kinds of DRAM in the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Small, high-bandwidth die-stacked DRAM.
    DieStacked,
    /// Large, lower-bandwidth off-chip DRAM.
    OffChip,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::DieStacked => write!(f, "die-stacked DRAM"),
            MemoryKind::OffChip => write!(f, "off-chip DRAM"),
        }
    }
}

/// Static parameters of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Which device this is.
    pub kind: MemoryKind,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Unloaded access latency, in CPU cycles.
    pub base_latency_cycles: u64,
    /// Service time per 64-byte line, in cycles — the inverse of bandwidth.
    /// The paper's 4× bandwidth differential is expressed by giving the
    /// die-stacked device a service time 4× smaller.
    pub service_cycles_per_line: u64,
}

/// Counters kept per device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of line accesses served.
    pub accesses: Counter,
    /// Total queueing delay added on top of the base latency.
    pub queueing_cycles: Counter,
}

/// One DRAM device modelled as a leaky bucket: every access deposits its
/// service time; the bucket drains in real time; the current bucket level is
/// the queueing delay an access observes.
#[derive(Debug, Clone)]
pub struct MemoryDevice {
    config: DeviceConfig,
    backlog_cycles: f64,
    last_update: u64,
    stats: DeviceStats,
}

impl MemoryDevice {
    /// Creates an idle device.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            backlog_cycles: 0.0,
            last_update: 0,
            stats: DeviceStats::default(),
        }
    }

    /// The device's static parameters.
    #[must_use]
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    fn drain(&mut self, now: u64) {
        if now > self.last_update {
            let elapsed = (now - self.last_update) as f64;
            self.backlog_cycles = (self.backlog_cycles - elapsed).max(0.0);
            self.last_update = now;
        }
    }

    /// Adds one line transfer's occupancy at time `now` and returns the
    /// occupancy cost (used for bulk page copies, which see bandwidth but
    /// not the full random-access latency per line).
    pub fn occupy(&mut self, now: u64) -> u64 {
        self.drain(now);
        self.backlog_cycles += self.config.service_cycles_per_line as f64;
        self.config.service_cycles_per_line
    }

    /// Performs one demand access at time `now`; returns its latency
    /// (base + current queueing delay) in cycles.
    pub fn access(&mut self, now: u64) -> u64 {
        self.drain(now);
        let queueing = self.backlog_cycles as u64;
        self.backlog_cycles += self.config.service_cycles_per_line as f64;
        self.stats.accesses.incr();
        self.stats.queueing_cycles.add(queueing);
        self.config.base_latency_cycles + queueing
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets the queueing clock (used when the simulation's cycle counters
    /// are reset between the warmup and measured phases).  Statistics are
    /// preserved.
    pub fn reset_timing(&mut self) {
        self.backlog_cycles = 0.0;
        self.last_update = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(service: u64) -> DeviceConfig {
        DeviceConfig {
            kind: MemoryKind::OffChip,
            capacity_bytes: 1 << 30,
            base_latency_cycles: 100,
            service_cycles_per_line: service,
        }
    }

    #[test]
    fn idle_device_has_base_latency() {
        let mut dev = MemoryDevice::new(cfg(4));
        assert_eq!(dev.access(0), 100);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut dev = MemoryDevice::new(cfg(4));
        let first = dev.access(0);
        let second = dev.access(0);
        let third = dev.access(0);
        assert!(second > first);
        assert!(third > second);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut dev = MemoryDevice::new(cfg(4));
        for _ in 0..100 {
            dev.access(0);
        }
        let loaded = dev.access(0);
        // After a long idle gap the device is back to base latency.
        let relaxed = dev.access(1_000_000);
        assert!(loaded > relaxed);
        assert_eq!(relaxed, 100);
    }

    #[test]
    fn higher_bandwidth_queues_less() {
        let mut fast = MemoryDevice::new(cfg(1));
        let mut slow = MemoryDevice::new(cfg(4));
        let fast_total: u64 = (0..1000).map(|i| fast.access(i)).sum();
        let slow_total: u64 = (0..1000).map(|i| slow.access(i)).sum();
        assert!(slow_total > fast_total);
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = MemoryDevice::new(cfg(2));
        dev.access(0);
        dev.access(0);
        assert_eq!(dev.stats().accesses.get(), 2);
        assert!(dev.stats().queueing_cycles.get() >= 2);
    }
}
