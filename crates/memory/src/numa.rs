//! Socket topology of a multi-socket (NUMA) host.
//!
//! The paper's evaluation models a two-level DRAM system; on a consolidated
//! multi-socket host that system is *replicated per socket* and stitched
//! together by an inter-socket link (QPI/UPI-style).  A memory access that
//! leaves its socket pays the link's latency and occupies its bandwidth, and
//! translation-coherence messages that cross sockets cost more than local
//! ones — which is why remap/shootdown bills grow with socket distance.
//!
//! ```
//! use hatric_memory::NumaConfig;
//!
//! let uma = NumaConfig::uma();
//! assert_eq!(uma.sockets, 1);
//! let numa = NumaConfig::symmetric(2);
//! assert_eq!(numa.sockets, 2);
//! // Crossing the link always costs something on a multi-socket host.
//! assert!(numa.remote_dram_extra_cycles > 0);
//! assert!(numa.remote_shootdown_extra_cycles > numa.remote_hw_message_extra_cycles);
//! ```

use serde::{Deserialize, Serialize};

/// Static parameters of the inter-socket interconnect, modelled as one more
/// bandwidth-limited queueing device that every cross-socket line transfer
/// occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Unloaded one-way traversal latency, in CPU cycles.
    pub base_latency_cycles: u64,
    /// Service time per 64-byte line, in cycles — the inverse of the link's
    /// bandwidth (coarser than either DRAM device's).
    pub service_cycles_per_line: u64,
}

impl LinkConfig {
    /// A QPI/UPI-like link: ~60-cycle traversal at a bandwidth between the
    /// two DRAM devices'.
    #[must_use]
    pub fn qpi_like() -> Self {
        Self {
            base_latency_cycles: 60,
            service_cycles_per_line: 2,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::qpi_like()
    }
}

/// Socket topology and socket-distance cost table of the host.
///
/// `sockets == 1` is the classic UMA machine the single-VM experiments run
/// on: no access is ever remote, the link is never touched, and every
/// distance penalty is dead configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaConfig {
    /// Number of sockets.  Physical CPUs are split into `sockets` contiguous
    /// equal blocks, and each DRAM device's capacity (and bandwidth) is
    /// likewise divided into per-socket groups.
    pub sockets: usize,
    /// The inter-socket interconnect.
    pub link: LinkConfig,
    /// Extra latency of a DRAM access whose frame lives on another socket,
    /// on top of the link traversal (remote memory-controller arbitration).
    pub remote_dram_extra_cycles: u64,
    /// Extra target-side cycles of a *software* shootdown (IPI + VM exit +
    /// flush) whose target CPU is on a different socket than the initiator:
    /// the interrupt and its acknowledgement cross the link.
    pub remote_shootdown_extra_cycles: u64,
    /// Extra cycles of a *hardware* coherence message (HATRIC co-tag
    /// invalidation, UNITD CAM probe) that crosses sockets.  Orders of
    /// magnitude smaller than the software penalty — the message rides the
    /// existing cache-coherence interconnect.
    pub remote_hw_message_extra_cycles: u64,
}

impl NumaConfig {
    /// The single-socket (UMA) topology: the exact machine every experiment
    /// before the NUMA extension ran on.
    #[must_use]
    pub fn uma() -> Self {
        Self::symmetric(1)
    }

    /// A symmetric multi-socket topology with `sockets` identical sockets
    /// and the default link/distance cost table.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is zero.
    #[must_use]
    pub fn symmetric(sockets: usize) -> Self {
        assert!(sockets > 0, "a host needs at least one socket");
        Self {
            sockets,
            link: LinkConfig::qpi_like(),
            remote_dram_extra_cycles: 40,
            // Measured remote TLB shootdowns run 2-5x their local cost: the
            // IPI, its shootdown descriptor's cache lines and the final
            // acknowledgement all cross the link while the target spins.
            remote_shootdown_extra_cycles: 7_500,
            remote_hw_message_extra_cycles: 20,
        }
    }

    /// Returns a copy with the given socket count.
    #[must_use]
    pub fn with_sockets(mut self, sockets: usize) -> Self {
        self.sockets = sockets;
        self
    }
}

impl Default for NumaConfig {
    fn default() -> Self {
        Self::uma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uma_is_one_socket() {
        assert_eq!(NumaConfig::uma().sockets, 1);
        assert_eq!(NumaConfig::default(), NumaConfig::uma());
    }

    #[test]
    fn software_distance_penalty_dwarfs_hardware() {
        let numa = NumaConfig::symmetric(4);
        assert!(numa.remote_shootdown_extra_cycles >= 10 * numa.remote_hw_message_extra_cycles);
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn zero_sockets_is_rejected() {
        let _ = NumaConfig::symmetric(0);
    }
}
