//! System configuration: everything needed to build a [`crate::System`].

use serde::{Deserialize, Serialize};

use hatric_coherence::{CoherenceCosts, CoherenceMechanism, DesignVariant};
use hatric_energy::EnergyParams;
use hatric_hypervisor::{HypervisorKind, NumaPolicy, PagingPolicyKind};
use hatric_memory::{MemorySystemConfig, NumaConfig};
use hatric_tlb::StructureSizes;
use hatric_types::PAGE_SIZE_4K;

/// Extension methods tying a translation-coherence mechanism to the energy
/// parameters its hardware implies (co-tags for HATRIC, a reverse-lookup CAM
/// for UNITD++, neither for the software baseline and the ideal bound).
pub trait CoherenceMechanismExt {
    /// The energy parameters of a per-CPU translation-structure design that
    /// supports this mechanism, given the configured co-tag width.
    fn energy_params(&self, cotag_bytes: u8) -> EnergyParams;
}

impl CoherenceMechanismExt for CoherenceMechanism {
    fn energy_params(&self, cotag_bytes: u8) -> EnergyParams {
        match self {
            CoherenceMechanism::Hatric => EnergyParams::haswell_like(cotag_bytes),
            CoherenceMechanism::UnitdPlusPlus => EnergyParams::unitd_like(),
            CoherenceMechanism::Software
            | CoherenceMechanism::SoftwareXen
            | CoherenceMechanism::Ideal => EnergyParams::haswell_like(0),
        }
    }
}

/// How the two-level memory is used (the three Fig. 2 operating points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryMode {
    /// Only off-chip DRAM exists (`no-hbm`): nothing to page, nothing to
    /// keep translation-coherent beyond ordinary OS activity.
    NoHbm,
    /// Die-stacked DRAM is large enough to hold everything (`inf-hbm`):
    /// the unachievable upper bound.
    InfiniteHbm,
    /// Realistically sized die-stacked DRAM managed by hypervisor paging.
    Paged,
}

/// Fixed hit latencies (cycles) of on-chip structures.
///
/// ```
/// use hatric::LatencyConfig;
///
/// let lat = LatencyConfig::haswell_like();
/// assert!(lat.l1_hit < lat.l2_hit && lat.l2_hit < lat.llc_hit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// L1 data-cache hit.
    pub l1_hit: u64,
    /// Private L2 hit.
    pub l2_hit: u64,
    /// Shared LLC hit (or remote private cache forward).
    pub llc_hit: u64,
    /// Extra latency of an L2-TLB hit relative to an L1-TLB hit.
    pub l2_tlb_hit_extra: u64,
    /// Cost of taking a minor guest page fault to populate a brand-new
    /// mapping (first touch), excluding any migration.
    pub first_touch_cycles: u64,
}

impl LatencyConfig {
    /// Haswell-like latencies.
    #[must_use]
    pub fn haswell_like() -> Self {
        Self {
            l1_hit: 4,
            l2_hit: 12,
            llc_hit: 40,
            l2_tlb_hit_extra: 7,
            first_touch_cycles: 400,
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::haswell_like()
    }
}

/// Paging-policy knobs (the Fig. 8 sweep).
///
/// ```
/// use hatric::PagingKnobs;
///
/// let best = PagingKnobs::best();
/// assert!(best.migration_daemon && best.prefetch_pages > 0);
/// assert_eq!(PagingKnobs::default(), best);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingKnobs {
    /// Victim-selection policy.
    pub policy: PagingPolicyKind,
    /// Whether the migration daemon runs.
    pub migration_daemon: bool,
    /// Pages prefetched alongside each demand migration.
    pub prefetch_pages: usize,
}

impl PagingKnobs {
    /// CLOCK-LRU only (the `lru` bars of Fig. 8).
    #[must_use]
    pub fn lru() -> Self {
        Self {
            policy: PagingPolicyKind::ClockLru,
            migration_daemon: false,
            prefetch_pages: 0,
        }
    }

    /// LRU plus the migration daemon (`&mig-dmn`).
    #[must_use]
    pub fn lru_with_daemon() -> Self {
        Self {
            migration_daemon: true,
            ..Self::lru()
        }
    }

    /// LRU, migration daemon and prefetching (`&pref.`) — the paper's
    /// best-performing combination.
    #[must_use]
    pub fn best() -> Self {
        Self {
            policy: PagingPolicyKind::ClockLru,
            migration_daemon: true,
            prefetch_pages: 2,
        }
    }

    /// The three policies in Fig. 8 order.
    #[must_use]
    pub fn fig8_sweep() -> [PagingKnobs; 3] {
        [Self::lru(), Self::lru_with_daemon(), Self::best()]
    }
}

impl Default for PagingKnobs {
    fn default() -> Self {
        Self::best()
    }
}

/// The complete configuration of a simulated system.
///
/// ```
/// use hatric::{CoherenceMechanism, NumaConfig, SystemConfig};
///
/// // A scaled-down two-socket HATRIC system: 8 CPUs, 1024 fast pages.
/// let cfg = SystemConfig::scaled(8, 1_024)
///     .with_mechanism(CoherenceMechanism::Hatric)
///     .with_numa(NumaConfig::symmetric(2));
/// assert!(cfg.validate().is_ok());
/// assert_eq!(cfg.fast_capacity_pages(), 1_024);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of physical CPUs.
    pub num_cpus: usize,
    /// Number of vCPUs of the single simulated VM (one guest thread each).
    pub vcpus: usize,
    /// Hypervisor flavour (KVM or Xen).
    pub hypervisor: HypervisorKind,
    /// Translation-coherence mechanism under test.
    pub mechanism: CoherenceMechanism,
    /// Coherence-directory design variant (Fig. 12).
    pub variant: DesignVariant,
    /// Co-tag width in bytes (Fig. 11 right sweeps 1–3).
    pub cotag_bytes: u8,
    /// Per-CPU translation-structure sizes.
    pub structure_sizes: StructureSizes,
    /// Translation-structure size multiplier (Fig. 9 sweeps 1×/2×/4×).
    pub structure_scale: usize,
    /// Physical memory devices and the socket topology they sit on
    /// (`memory.numa` — [`NumaConfig::uma`] for the classic single-socket
    /// machine).
    pub memory: MemorySystemConfig,
    /// How the memory is used.
    pub memory_mode: MemoryMode,
    /// On which socket the hypervisor backs newly allocated guest pages
    /// (irrelevant on a single-socket host).
    pub numa_policy: NumaPolicy,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Paging-policy knobs.
    pub paging: PagingKnobs,
    /// Translation-coherence primitive costs.
    pub costs: CoherenceCosts,
    /// On-chip latencies.
    pub latencies: LatencyConfig,
    /// Master random seed.
    pub seed: u64,
}

impl SystemConfig {
    /// A full-scale configuration matching the paper's platform (Sec. 5.1):
    /// 2 GiB die-stacked + 8 GiB off-chip DRAM, 20 MiB LLC, Haswell-like
    /// structures.  Full-scale runs need very long traces; most experiments
    /// use [`SystemConfig::scaled`] instead.
    #[must_use]
    pub fn paper_scale(vcpus: usize) -> Self {
        Self {
            num_cpus: vcpus.max(1),
            vcpus: vcpus.max(1),
            hypervisor: HypervisorKind::Kvm,
            mechanism: CoherenceMechanism::Software,
            variant: DesignVariant::Baseline,
            cotag_bytes: 2,
            structure_sizes: StructureSizes::haswell_like(),
            structure_scale: 1,
            memory: MemorySystemConfig::paper_default(),
            memory_mode: MemoryMode::Paged,
            numa_policy: NumaPolicy::FirstTouch,
            llc_bytes: 20 * 1024 * 1024,
            paging: PagingKnobs::best(),
            costs: CoherenceCosts::haswell_measured(),
            latencies: LatencyConfig::haswell_like(),
            seed: DEFAULT_SEED,
        }
    }

    /// A proportionally scaled-down configuration used by the experiment
    /// harness: die-stacked capacity of `fast_pages` 4 KiB pages, off-chip
    /// capacity 4× that, and an LLC scaled so that the cache-to-footprint
    /// ratio of the full-size system is preserved.  The bandwidth ratio,
    /// latencies, translation-structure sizes and coherence costs are kept
    /// at their full-scale values, so per-event overheads are unchanged —
    /// only the amount of data (and hence the trace length needed to
    /// exercise paging) shrinks.
    #[must_use]
    pub fn scaled(vcpus: usize, fast_pages: u64) -> Self {
        let mut cfg = Self::paper_scale(vcpus);
        cfg.memory.die_stacked.capacity_bytes = fast_pages * PAGE_SIZE_4K;
        cfg.memory.off_chip.capacity_bytes = 4 * fast_pages * PAGE_SIZE_4K;
        // 20 MiB LLC : 2 GiB fast DRAM ≈ 1 : 100.
        cfg.llc_bytes = (fast_pages * PAGE_SIZE_4K / 100).max(256 * 1024);
        cfg
    }

    /// Number of 4 KiB pages of die-stacked DRAM in this configuration.
    #[must_use]
    pub fn fast_capacity_pages(&self) -> u64 {
        self.memory.die_stacked.capacity_bytes / PAGE_SIZE_4K
    }

    /// Applies the memory mode, returning the adjusted memory configuration.
    #[must_use]
    pub fn effective_memory(&self) -> MemorySystemConfig {
        let mut mem = self.memory;
        match self.memory_mode {
            MemoryMode::NoHbm => mem.die_stacked.capacity_bytes = 0,
            MemoryMode::InfiniteHbm => mem.die_stacked.capacity_bytes = 1 << 42,
            MemoryMode::Paged => {}
        }
        mem
    }

    /// Returns a copy configured for the given coherence mechanism.
    #[must_use]
    pub fn with_mechanism(mut self, mechanism: CoherenceMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Returns a copy configured for the given memory mode.
    #[must_use]
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Returns a copy with the given paging knobs.
    #[must_use]
    pub fn with_paging(mut self, paging: PagingKnobs) -> Self {
        self.paging = paging;
        self
    }

    /// Returns a copy with the given co-tag width.
    #[must_use]
    pub fn with_cotag_bytes(mut self, bytes: u8) -> Self {
        self.cotag_bytes = bytes;
        self
    }

    /// Returns a copy with the given translation-structure scale factor.
    #[must_use]
    pub fn with_structure_scale(mut self, scale: usize) -> Self {
        self.structure_scale = scale;
        self
    }

    /// Returns a copy with the given socket topology.
    #[must_use]
    pub fn with_numa(mut self, numa: NumaConfig) -> Self {
        self.memory.numa = numa;
        self
    }

    /// Returns a copy with the given NUMA memory-placement policy.
    #[must_use]
    pub fn with_numa_policy(mut self, policy: NumaPolicy) -> Self {
        self.numa_policy = policy;
        self
    }

    /// Returns a copy with the given directory design variant.
    #[must_use]
    pub fn with_variant(mut self, variant: DesignVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns a copy with the given hypervisor flavour (also switching the
    /// software mechanism's costs).
    #[must_use]
    pub fn with_hypervisor(mut self, hypervisor: HypervisorKind) -> Self {
        self.hypervisor = hypervisor;
        if hypervisor == HypervisorKind::Xen {
            self.costs = CoherenceCosts::xen_like();
            if self.mechanism == CoherenceMechanism::Software {
                self.mechanism = CoherenceMechanism::SoftwareXen;
            }
        }
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if the configuration cannot be simulated.
    pub fn validate(&self) -> hatric_types::Result<()> {
        if self.num_cpus == 0 || self.num_cpus > 64 {
            return Err(hatric_types::SimError::config("num_cpus must be in 1..=64"));
        }
        if self.vcpus == 0 || self.vcpus > self.num_cpus {
            return Err(hatric_types::SimError::config(
                "vcpus must be between 1 and num_cpus",
            ));
        }
        if !(1..=4).contains(&self.cotag_bytes) {
            return Err(hatric_types::SimError::config("cotag_bytes must be 1..=4"));
        }
        if self.structure_scale == 0 {
            return Err(hatric_types::SimError::config(
                "structure_scale must be nonzero",
            ));
        }
        if self.memory.numa.sockets == 0 {
            return Err(hatric_types::SimError::config(
                "a host needs at least one socket",
            ));
        }
        if !self.num_cpus.is_multiple_of(self.memory.numa.sockets) {
            return Err(hatric_types::SimError::config(
                "num_cpus must split evenly across sockets",
            ));
        }
        Ok(())
    }
}

/// Default master seed used by experiments (any fixed value works; the
/// harness only needs determinism).
pub const DEFAULT_SEED: u64 = 0x4a71_c0de_5eed_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_5() {
        let cfg = SystemConfig::paper_scale(16);
        assert_eq!(cfg.fast_capacity_pages(), 2 * 1024 * 1024 / 4);
        assert_eq!(cfg.llc_bytes, 20 * 1024 * 1024);
        assert_eq!(cfg.structure_sizes.l1_tlb.entries, 64);
        cfg.validate().unwrap();
    }

    #[test]
    fn scaled_preserves_capacity_ratio() {
        let cfg = SystemConfig::scaled(16, 2_048);
        assert_eq!(cfg.fast_capacity_pages(), 2_048);
        assert_eq!(
            cfg.memory.off_chip.capacity_bytes,
            4 * cfg.memory.die_stacked.capacity_bytes
        );
        cfg.validate().unwrap();
    }

    #[test]
    fn memory_modes_adjust_fast_capacity() {
        let cfg = SystemConfig::scaled(4, 1_024);
        assert_eq!(
            cfg.clone()
                .with_memory_mode(MemoryMode::NoHbm)
                .effective_memory()
                .die_stacked
                .capacity_bytes,
            0
        );
        assert!(
            cfg.clone()
                .with_memory_mode(MemoryMode::InfiniteHbm)
                .effective_memory()
                .die_stacked
                .capacity_bytes
                > cfg.memory.off_chip.capacity_bytes
        );
        assert_eq!(
            cfg.clone()
                .with_memory_mode(MemoryMode::Paged)
                .effective_memory()
                .die_stacked
                .capacity_bytes,
            cfg.memory.die_stacked.capacity_bytes
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = SystemConfig::scaled(4, 1_024);
        cfg.vcpus = 8;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::scaled(4, 1_024);
        cfg.cotag_bytes = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn xen_switches_costs_and_mechanism() {
        let cfg = SystemConfig::scaled(4, 1_024).with_hypervisor(HypervisorKind::Xen);
        assert_eq!(cfg.mechanism, CoherenceMechanism::SoftwareXen);
        assert!(cfg.costs.vm_exit_cycles > CoherenceCosts::haswell_measured().vm_exit_cycles);
    }

    #[test]
    fn fig8_sweep_orders_policies_by_sophistication() {
        let sweep = PagingKnobs::fig8_sweep();
        assert!(!sweep[0].migration_daemon && sweep[0].prefetch_pages == 0);
        assert!(sweep[1].migration_daemon && sweep[1].prefetch_pages == 0);
        assert!(sweep[2].migration_daemon && sweep[2].prefetch_pages > 0);
    }
}
