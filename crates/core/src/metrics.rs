//! Simulation reports: runtime, coherence activity, paging activity, cache
//! and translation statistics, and energy.

use serde::{Deserialize, Serialize};

use hatric_cache::CacheStatsSnapshot;
use hatric_energy::EnergyReport;
use hatric_hypervisor::PagingStats;
use hatric_telemetry::{CausalLedger, LatencyStats};
use hatric_tlb::TranslationStatsSnapshot;

/// Translation-coherence activity observed during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceActivity {
    /// Nested-page-table entries modified (page remaps).
    pub remaps: u64,
    /// Inter-processor interrupts sent by the software path.
    pub ipis: u64,
    /// VM exits caused by translation coherence (not demand faults).
    pub coherence_vm_exits: u64,
    /// Full translation-structure flushes performed.
    pub full_flushes: u64,
    /// Translation entries lost to full flushes.
    pub entries_flushed: u64,
    /// Translation entries removed by selective (co-tag) invalidation.
    pub entries_selectively_invalidated: u64,
    /// Hardware coherence messages delivered to translation structures.
    pub hw_messages: u64,
    /// Invalidation messages that found nothing to invalidate (spurious).
    pub spurious_messages: u64,
    /// Translation entries removed by directory back-invalidations.
    pub back_invalidated_entries: u64,
}

impl CoherenceActivity {
    /// Accumulates `other` into `self` (used when summing per-VM reports).
    pub fn merge(&mut self, other: &CoherenceActivity) {
        self.remaps += other.remaps;
        self.ipis += other.ipis;
        self.coherence_vm_exits += other.coherence_vm_exits;
        self.full_flushes += other.full_flushes;
        self.entries_flushed += other.entries_flushed;
        self.entries_selectively_invalidated += other.entries_selectively_invalidated;
        self.hw_messages += other.hw_messages;
        self.spurious_messages += other.spurious_messages;
        self.back_invalidated_entries += other.back_invalidated_entries;
    }
}

/// Cross-VM translation-coherence interference observed during a run.
///
/// On a consolidated host, one VM's page remaps can steal cycles from other
/// VMs: software shootdowns IPI every physical CPU the remapping VM ever ran
/// on, and whoever currently occupies those CPUs eats the VM exit and the
/// flush (Sec. 3.2 — "innocent bystanders").  Hardware mechanisms confine
/// invalidations to the directory's sharer list and never interrupt the
/// running guest, so a remap-free VM records zero disrupted cycles under
/// HATRIC.
///
/// *Disruptive* means the target action interrupts the occupant: a full
/// translation-structure flush or a coherence-induced VM exit.  Co-tag
/// invalidations are serviced by the translation-structure port without
/// stalling the pipeline and are not counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceActivity {
    /// Cycles stolen from this VM's vCPUs by *other* VMs' translation
    /// coherence (flushes and VM exits charged while this VM occupied the
    /// targeted physical CPU).
    pub disrupted_cycles: u64,
    /// Number of disruptive events (IPI-induced flushes / VM exits) this VM
    /// received from other VMs.
    pub disruptions_received: u64,
    /// Cycles this VM's remaps imposed on vCPUs of *other* VMs.
    pub inflicted_cycles: u64,
}

impl InterferenceActivity {
    /// Accumulates `other` into `self` (used when summing per-VM reports).
    pub fn merge(&mut self, other: &InterferenceActivity) {
        self.disrupted_cycles += other.disrupted_cycles;
        self.disruptions_received += other.disruptions_received;
        self.inflicted_cycles += other.inflicted_cycles;
    }
}

/// Socket-locality activity on a NUMA host (all-zero on a single-socket
/// host, where nothing is ever remote).
///
/// DRAM accesses and coherence targets are classified against the socket of
/// the CPU doing (or initiating) the work; allocations against the socket
/// the hypervisor's placement policy preferred.  The remote-access ratio is
/// the axis the `numa_contention` experiment sweeps: software shootdowns
/// whose flushes force victims to refill translations through a congested
/// inter-socket link lose ground to HATRIC as the ratio rises.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaActivity {
    /// DRAM line accesses served by the accessing CPU's own socket.
    pub local_dram_accesses: u64,
    /// DRAM line accesses that crossed the inter-socket link.
    pub remote_dram_accesses: u64,
    /// Translation-coherence targets on the initiator's socket.
    pub local_coherence_targets: u64,
    /// Translation-coherence targets on another socket (these pay the
    /// cross-socket shootdown or hardware-message premium).
    pub remote_coherence_targets: u64,
    /// Page allocations that could not be satisfied on the preferred socket
    /// and spilled to a remote one.
    pub remote_allocations: u64,
}

impl NumaActivity {
    /// Accumulates `other` into `self` (used when summing per-VM reports).
    pub fn merge(&mut self, other: &NumaActivity) {
        self.local_dram_accesses += other.local_dram_accesses;
        self.remote_dram_accesses += other.remote_dram_accesses;
        self.local_coherence_targets += other.local_coherence_targets;
        self.remote_coherence_targets += other.remote_coherence_targets;
        self.remote_allocations += other.remote_allocations;
    }

    /// Fraction of DRAM accesses that crossed the inter-socket link
    /// (0.0 when no DRAM access happened).
    #[must_use]
    pub fn remote_access_ratio(&self) -> f64 {
        let total = self.local_dram_accesses + self.remote_dram_accesses;
        if total == 0 {
            0.0
        } else {
            self.remote_dram_accesses as f64 / total as f64
        }
    }

    /// Fraction of coherence targets that sat on another socket than the
    /// remap's initiator (0.0 when no target was touched).
    #[must_use]
    pub fn remote_target_ratio(&self) -> f64 {
        let total = self.local_coherence_targets + self.remote_coherence_targets;
        if total == 0 {
            0.0
        } else {
            self.remote_coherence_targets as f64 / total as f64
        }
    }
}

/// Demand-paging activity observed during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultActivity {
    /// Demand faults on non-resident pages (each causes a VM exit).
    pub demand_faults: u64,
    /// First-touch minor faults that populated brand-new mappings.
    pub first_touch_faults: u64,
    /// Pages migrated into die-stacked memory.
    pub pages_promoted: u64,
    /// Pages migrated out to off-chip memory.
    pub pages_demoted: u64,
}

impl FaultActivity {
    /// Accumulates `other` into `self` (used when summing per-VM reports).
    pub fn merge(&mut self, other: &FaultActivity) {
        self.demand_faults += other.demand_faults;
        self.first_touch_faults += other.first_touch_faults;
        self.pages_promoted += other.pages_promoted;
        self.pages_demoted += other.pages_demoted;
    }
}

/// Live-migration and ballooning activity observed during a run
/// (hypervisor-driven remap storms beyond die-stacked paging — Sec. 7's
/// future-work scenarios, modeled by the `hatric-migration` crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Live migrations that began (entered pre-copy).
    pub migrations_started: u64,
    /// Live migrations that reached the end of stop-and-copy.
    pub migrations_completed: u64,
    /// Pre-copy rounds executed across all migrations.
    pub precopy_rounds: u64,
    /// Pages transferred (initial copy + re-copies + stop-and-copy).
    pub pages_copied: u64,
    /// Pages found dirty at the end of a copy round (they must be re-sent;
    /// the pre-copy convergence criterion watches this number).
    pub pages_redirtied: u64,
    /// Cycles the migrating VM was fully paused during stop-and-copy — the
    /// migration's downtime, the figure of merit mechanisms compete on.
    pub downtime_cycles: u64,
    /// Nested-page-table writes issued by migration (write-protects during
    /// pre-copy, final hand-off stores), each of which triggered
    /// translation coherence.
    pub migration_remaps: u64,
    /// Die-stacked capacity pages reclaimed by balloon inflation.
    pub balloon_reclaimed_pages: u64,
    /// Die-stacked capacity pages granted by balloon deflation.
    pub balloon_granted_pages: u64,
    /// Pages materialized on the destination host of an inter-host
    /// migration (each one a nested-PTE store with its coherence bill —
    /// the destination-side remap storm).
    pub received_pages: u64,
    /// Pages a post-copy destination demand-fetched from the source on a
    /// guest access's critical path (subset of `received_pages`).
    pub postcopy_fetched_pages: u64,
    /// Scheduler slices withheld from a migrating VM by auto-convergence
    /// throttling (pre-copy failing to converge against the dirty rate).
    pub throttled_slices: u64,
    /// Migrations torn down before hand-off: the source resumed the VM
    /// and the destination discarded its partial state.
    pub migrations_aborted: u64,
    /// Pre-copy migrations force-escalated (stop-and-copy skipped in
    /// favor of an immediate post-copy flip) by a non-convergence
    /// timeout.
    pub migrations_escalated: u64,
    /// Pages lost in flight on a blacked-out migration link; each one
    /// must be re-sent by the source.
    pub pages_dropped: u64,
    /// Pages thrown away during an abort: the source's unsent outbox
    /// plus everything the destination discarded (inbox backlog,
    /// outstanding post-copy set, and rolled-back landed pages).
    pub pages_discarded: u64,
    /// Scheduler slices a pre-copy round spent stuck (a `StuckPreCopy`
    /// fault held the engine: no pages copied, no rounds retired).
    pub stalled_slices: u64,
}

impl MigrationStats {
    /// Accumulates `other` into `self` (used when summing engine reports).
    pub fn merge(&mut self, other: &MigrationStats) {
        self.migrations_started += other.migrations_started;
        self.migrations_completed += other.migrations_completed;
        self.precopy_rounds += other.precopy_rounds;
        self.pages_copied += other.pages_copied;
        self.pages_redirtied += other.pages_redirtied;
        self.downtime_cycles += other.downtime_cycles;
        self.migration_remaps += other.migration_remaps;
        self.balloon_reclaimed_pages += other.balloon_reclaimed_pages;
        self.balloon_granted_pages += other.balloon_granted_pages;
        self.received_pages += other.received_pages;
        self.postcopy_fetched_pages += other.postcopy_fetched_pages;
        self.throttled_slices += other.throttled_slices;
        self.migrations_aborted += other.migrations_aborted;
        self.migrations_escalated += other.migrations_escalated;
        self.pages_dropped += other.pages_dropped;
        self.pages_discarded += other.pages_discarded;
        self.stalled_slices += other.stalled_slices;
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycles consumed by each physical CPU during the measured phase.
    pub cycles_per_cpu: Vec<u64>,
    /// Memory accesses simulated in the measured phase.
    pub accesses: u64,
    /// Translation-coherence activity.
    pub coherence: CoherenceActivity,
    /// Demand-paging activity.
    pub faults: FaultActivity,
    /// Cross-VM interference (all-zero for a single-VM run).
    pub interference: InterferenceActivity,
    /// Socket-locality activity (all-zero on a single-socket host).
    pub numa: NumaActivity,
    /// Hypervisor paging-policy statistics.
    pub paging: PagingStats,
    /// Aggregate translation-structure statistics (summed over CPUs).
    pub translation: TranslationStatsSnapshot,
    /// Cache-hierarchy statistics.
    pub cache: CacheStatsSnapshot,
    /// Energy accounting.
    pub energy: EnergyReport,
    /// Sim-time latency distributions (nested-walk latency, shootdown
    /// completion latency, DRAM queueing delay).  Counted in simulated
    /// cycles at the charge sites, so as deterministic as the charges.
    pub latency: LatencyStats,
    /// Per-remap causal attribution: the disruption each of this VM's
    /// remaps caused, keyed by [`hatric_telemetry::RemapId`].  The
    /// ledger's summed `victim_cycles` reconciles exactly with
    /// `interference.inflicted_cycles` — the charges are mirrored at the
    /// same sites.
    pub causal: CausalLedger,
}

impl SimReport {
    /// Runtime of the run: the largest per-CPU cycle count (all guest
    /// threads run concurrently, one per CPU).
    #[must_use]
    pub fn runtime_cycles(&self) -> u64 {
        self.cycles_per_cpu.iter().copied().max().unwrap_or(0)
    }

    /// Runtime of an individual thread/application (the cycles of the CPU it
    /// is pinned to).  Used by the Fig. 10 multiprogrammed metrics.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[must_use]
    pub fn thread_runtime_cycles(&self, thread: usize) -> u64 {
        self.cycles_per_cpu[thread]
    }

    /// Average cycles per access (a CPI-like figure of merit).
    #[must_use]
    pub fn cycles_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.runtime_cycles() as f64
                / (self.accesses as f64 / self.cycles_per_cpu.len().max(1) as f64)
        }
    }

    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_energy_nj(&self) -> f64 {
        self.energy.total_nj()
    }

    /// Runtime of this run normalised to a baseline run.
    #[must_use]
    pub fn runtime_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.runtime_cycles();
        if base == 0 {
            0.0
        } else {
            self.runtime_cycles() as f64 / base as f64
        }
    }

    /// Energy of this run normalised to a baseline run.
    #[must_use]
    pub fn energy_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.total_energy_nj();
        if base == 0.0 {
            0.0
        } else {
            self.total_energy_nj() / base
        }
    }
}

/// The result of one consolidated-host run: one [`SimReport`] per VM plus a
/// host-wide aggregate over the shared platform.
///
/// Per-VM reports attribute cycles to the VM's vCPUs (wherever they were
/// scheduled) and count only that VM's own coherence/paging activity; the
/// host aggregate carries the per-physical-CPU cycle counters and the shared
/// cache/translation/energy statistics, with activity counters summed over
/// the VMs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostReport {
    /// One report per VM, indexed by VM slot.
    pub per_vm: Vec<SimReport>,
    /// Host-wide aggregate (cycles per physical CPU; summed activity).
    pub host: SimReport,
    /// Live-migration and ballooning activity (all-zero on a host without
    /// migration events).
    pub migration: MigrationStats,
}

impl HostReport {
    /// Runtime of VM `vm`: the largest cycle count over its vCPUs.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn vm_runtime_cycles(&self, vm: usize) -> u64 {
        self.per_vm[vm].runtime_cycles()
    }

    /// Runtime of VM `vm` normalised to the same VM in a baseline run
    /// (slowdown factor > 1.0 means this run was slower).
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range in either report.
    #[must_use]
    pub fn vm_slowdown_vs(&self, baseline: &HostReport, vm: usize) -> f64 {
        self.per_vm[vm].runtime_vs(&baseline.per_vm[vm])
    }

    /// Total cycles stolen across all VMs by other VMs' translation
    /// coherence — the host-level interference figure of merit.
    #[must_use]
    pub fn total_disrupted_cycles(&self) -> u64 {
        self.per_vm
            .iter()
            .map(|r| r.interference.disrupted_cycles)
            .sum()
    }

    /// Fraction of all vCPU cycles lost to cross-VM coherence disruption.
    #[must_use]
    pub fn interference_fraction(&self) -> f64 {
        let total: u64 = self
            .per_vm
            .iter()
            .flat_map(|r| r.cycles_per_cpu.iter().copied())
            .sum();
        if total == 0 {
            0.0
        } else {
            self.total_disrupted_cycles() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: Vec<u64>, accesses: u64) -> SimReport {
        SimReport {
            cycles_per_cpu: cycles,
            accesses,
            ..SimReport::default()
        }
    }

    #[test]
    fn runtime_is_max_cpu() {
        let r = report(vec![10, 30, 20], 3);
        assert_eq!(r.runtime_cycles(), 30);
        assert_eq!(r.thread_runtime_cycles(2), 20);
    }

    #[test]
    fn normalisation_against_baseline() {
        let fast = report(vec![50], 10);
        let slow = report(vec![100], 10);
        assert!((fast.runtime_vs(&slow) - 0.5).abs() < 1e-12);
        assert!((slow.runtime_vs(&fast) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.runtime_cycles(), 0);
        assert_eq!(r.cycles_per_access(), 0.0);
        assert_eq!(r.runtime_vs(&r), 0.0);
    }
}
