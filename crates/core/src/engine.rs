//! The parallel deterministic slice engine: **simulate → commit**.
//!
//! A consolidated host advances in scheduler slices.  This module executes
//! one slice in two phases:
//!
//! 1. **Simulate** — the slice's placements are grouped into *units*, one
//!    per VM slot.  Each unit exclusively owns its [`VmInstance`], its
//!    [`WorkloadDriver`], and the per-CPU state of the physical CPUs its
//!    placements run on (translation structures, private L1/L2 pair, cycle
//!    counter), and sees everything shared — LLC + directory, DRAM devices,
//!    the occupancy table — as a *frozen* slice-start snapshot
//!    (`SliceShared`).  Every shared-state consequence is appended to the
//!    unit's `Effect` log instead of being applied.  Because a unit's
//!    simulation is a pure function of (slice-start state, unit state),
//!    units can run on any number of OS threads in any order.
//! 2. **Commit** — at the slice barrier, one thread replays every unit's
//!    effect log in canonical `(vm slot, emission order)` sequence:
//!    LLC/directory ops, DRAM bookings, dirty-page observations, cross-CPU
//!    coherence work and interference charging, energy tallies.
//!
//! The result is **bit-identical for any thread count** — `threads = 1`
//! and `threads = N` produce byte-identical reports — which the
//! `parallel_determinism` integration test enforces over every registered
//! scenario.
//!
//! The slice-executor contract is the [`EngineBackend`] trait: this
//! module's phased engine ([`EngineState`]) is one implementation, and the
//! sibling [`crate::engine_mp`] module provides a message-passing actor
//! variant ([`crate::engine_mp::MessageEngine`]) built from the same
//! phase helpers and effect types, so the two can only differ in
//! orchestration — the `engine_conformance` integration test proves them
//! byte-identical.  [`EngineKind`] selects between them.
//!
//! Two deliberate model relaxations make the split possible (both are
//! slice-granular, i.e. they defer cross-VM visibility to the barrier, and
//! both are documented in `docs/ARCHITECTURE.md`):
//!
//! * within a slice, one VM's cache/DRAM activity is not visible to
//!   co-running VMs — contention lands on the *next* slice;
//! * frame allocation goes through per-VM [`FramePool`]s, refilled serially
//!   at each barrier and recycling the VM's own frees, so the shared
//!   allocator is never touched concurrently.

use std::time::Instant;

use hatric_cache::{CacheStatsDelta, HitLevel, PrivatePair, SharedCache, SharedCacheOp};
use hatric_coherence::{
    CoherenceCosts, CoherenceMechanism, DesignVariant, RemapContext, TargetAction,
    TranslationCoherence,
};
use hatric_energy::{EnergyEvent, EnergyTally};
use hatric_hypervisor::{NumaPolicy, Placement};
use hatric_memory::{DramPending, MemoryBooking, MemoryKind, MemorySystem, NumaConfig};
use hatric_pagetable::TwoDimWalker;
use hatric_telemetry::{track, EnginePhase, PhaseProfiler, PhaseTotals, RemapId, TraceEvent};
use hatric_tlb::{TlbLevel, TranslationStructures};
use hatric_types::{
    CacheLineAddr, CoTag, CpuId, GuestFrame, GuestVirtPage, PageSize, SocketId, SystemFrame,
    SystemPhysAddr, VcpuId,
};
use hatric_workloads::Access;

use crate::config::LatencyConfig;
use crate::driver::WorkloadDriver;
use crate::platform::{remap_span_name, Platform};
use crate::vm_instance::{VmInstance, GUEST_PT_GPP_BASE};

// ---------------------------------------------------------------------------
// The persistent fork-join worker pool
// ---------------------------------------------------------------------------

/// A job dispatched to a pool worker (lifetime-erased borrowed closure).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A minimal persistent fork-join pool.
///
/// `std::thread::scope` spawns OS threads on every call; at one simulate
/// scope plus one commit scope per slice, thread-creation latency swamps
/// the parallel work (slices are ~1 ms).  This pool keeps its workers
/// alive across slices: [`WorkerPool::run_with_local`] dispatches one
/// borrowed closure per worker and blocks until all of them finish — the
/// same fork-join contract as a scope, without the per-slice spawns.
///
/// Public because the cluster tier reuses it to shard whole hosts across
/// threads with the exact same fork-join discipline the slice engine uses
/// for units.
pub struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
    job_txs: Vec<std::sync::mpsc::Sender<Job>>,
    done_rx: std::sync::mpsc::Receiver<bool>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` long-lived threads.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let (done_tx, done_rx) = std::sync::mpsc::channel::<bool>();
        let mut handles = Vec::with_capacity(workers);
        let mut job_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                for job in job_rx.iter() {
                    let panicked =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err();
                    // The pool owner may already be gone on shutdown races;
                    // a failed send is fine then.
                    let _ = done.send(panicked);
                }
            }));
            job_txs.push(job_tx);
        }
        Self {
            handles,
            job_txs,
            done_rx,
        }
    }

    /// Number of pool workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs the borrowed jobs — one per pool worker, in order — plus
    /// `local` on the calling thread, and blocks until every job
    /// completed.  Panics (after all jobs drained) if any job panicked.
    ///
    /// Jobs may borrow caller stack data: this function does not return
    /// until every job has run to completion, so the borrows outlive their
    /// use (the `std::thread::scope` guarantee, amortized across calls).
    ///
    /// # Panics
    ///
    /// Panics if more jobs than workers are submitted, or if any job
    /// panicked (after all jobs drained).
    pub fn run_with_local<'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        local: impl FnOnce(),
    ) {
        /// Blocks until every dispatched job has signalled completion —
        /// **also on unwind**.  The lifetime-erased jobs borrow the
        /// caller's stack, so returning (or unwinding past) this frame
        /// while a worker still runs one would be a use-after-free; the
        /// guard's `Drop` drains the completion channel first.
        struct DrainGuard<'a> {
            rx: &'a std::sync::mpsc::Receiver<bool>,
            remaining: usize,
        }
        impl Drop for DrainGuard<'_> {
            fn drop(&mut self) {
                while self.remaining > 0 {
                    // `Err` means every worker thread is gone (so no job
                    // can still hold a borrow) — safe to stop draining.
                    if self.rx.recv().is_err() {
                        break;
                    }
                    self.remaining -= 1;
                }
            }
        }

        assert!(jobs.len() <= self.workers(), "one job per worker");
        let mut guard = DrainGuard {
            rx: &self.done_rx,
            remaining: 0,
        };
        for (tx, job) in self.job_txs.iter().zip(jobs) {
            // SAFETY: `Job` erases the closure's `'env` lifetime to
            // `'static`.  The borrows inside stay valid because this
            // function — via the normal drain below or `DrainGuard` on any
            // unwind — blocks until every dispatched job has finished
            // executing; a worker can never touch the closure after this
            // frame is gone.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            tx.send(job).expect("pool worker thread is alive");
            guard.remaining += 1;
        }
        local();
        let mut panicked = false;
        while guard.remaining > 0 {
            panicked |= guard
                .rx
                .recv()
                .expect("pool worker signals every job completion");
            guard.remaining -= 1;
        }
        assert!(!panicked, "a slice-engine worker panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Frame pools
// ---------------------------------------------------------------------------

fn kind_index(kind: MemoryKind) -> usize {
    match kind {
        MemoryKind::OffChip => 0,
        MemoryKind::DieStacked => 1,
    }
}

/// A per-VM pool of pre-reserved physical frames, one LIFO stack per
/// `(device kind, socket)`.
///
/// The shared [`FrameAllocator`](hatric_memory::FrameAllocator)s cannot be
/// touched from simulate workers, so each scheduled VM's pool is refilled
/// *serially* at the slice barrier (in slot order — deterministic), and all
/// allocation during simulate draws from the pool.  Frames a unit frees
/// (paging evictions) are recycled straight back into its own pool, so
/// steady-state paging never starves even when the VM's quota is fully
/// committed.
#[derive(Debug, Clone)]
pub struct FramePool {
    frames: [Vec<Vec<SystemFrame>>; 2],
}

impl FramePool {
    /// An empty pool for a host with `sockets` sockets.
    #[must_use]
    pub fn new(sockets: usize) -> Self {
        Self {
            frames: [vec![Vec::new(); sockets], vec![Vec::new(); sockets]],
        }
    }

    /// Takes a frame of `kind`, preferring `preferred` and spilling to the
    /// other sockets in ascending wrap-around order (mirroring
    /// [`MemorySystem::allocate_on`]).  Returns the frame and the socket it
    /// actually came from.
    fn take(&mut self, kind: MemoryKind, preferred: SocketId) -> Option<(SystemFrame, SocketId)> {
        let stacks = &mut self.frames[kind_index(kind)];
        let count = stacks.len();
        for offset in 0..count {
            let s = (preferred.index() + offset) % count;
            if let Some(frame) = stacks[s].pop() {
                return Some((frame, SocketId::new(s as u32)));
            }
        }
        None
    }

    /// Returns a frame to the pool (refill, or a unit recycling its own
    /// free).
    fn put(&mut self, kind: MemoryKind, socket: SocketId, frame: SystemFrame) {
        self.frames[kind_index(kind)][socket.index()].push(frame);
    }

    /// Total pooled frames of `kind` across sockets.
    #[must_use]
    pub fn total(&self, kind: MemoryKind) -> usize {
        self.frames[kind_index(kind)].iter().map(Vec::len).sum()
    }
}

/// Persistent engine state of one host: per-slot frame pools, DRAM pending
/// overlays and interleave cursors.
#[derive(Debug)]
pub struct EngineState {
    pub(crate) pools: Vec<FramePool>,
    pub(crate) pendings: Vec<DramPending>,
    /// Per-VM round-robin cursor of the [`NumaPolicy::Interleaved`]
    /// placement (the serial path keeps one global cursor; a shared cursor
    /// cannot be advanced from concurrent workers, so the engine interleaves
    /// per VM instead).
    pub(crate) interleave: Vec<usize>,
    /// Lazily created persistent workers (`threads - 1` of them; the
    /// calling thread always executes one share itself).
    pub(crate) pool: Option<WorkerPool>,
    /// Reusable commit-phase buffers (cleared each slice — the hot loop
    /// allocates nothing in steady state).
    pub(crate) commit: CommitScratch,
    /// Recycled per-unit effect logs (their `Vec` capacities are the
    /// largest per-slice allocation; reusing them keeps the steady-state
    /// slice loop allocation-free).
    pub(crate) effects_pool: Vec<UnitEffects>,
    /// Wall-clock totals per engine phase (never read by model code).
    pub(crate) profiler: PhaseProfiler,
}

/// Reusable buffers of the commit phase — the component inboxes: one queue
/// per LLC bank, the DRAM device queue, the serial committer's queue, and
/// the seq → slot map effect replay charges against.
#[derive(Debug, Default)]
pub(crate) struct CommitScratch {
    pub(crate) bank_queues: Vec<Vec<(u64, SharedCacheOp)>>,
    pub(crate) mem_queue: Vec<MemoryBooking>,
    pub(crate) serial_queue: Vec<(u64, usize, SerialEffect)>,
    pub(crate) seq_slots: Vec<u32>,
    pub(crate) privs: Vec<(u64, hatric_cache::PrivEffect)>,
}

impl CommitScratch {
    /// Re-arms the buffers for a slice on a hierarchy with `bank_count`
    /// banks (capacities are retained — the hot loop allocates nothing in
    /// steady state).
    pub(crate) fn reset(&mut self, bank_count: usize) {
        self.bank_queues.resize_with(bank_count, Vec::new);
        for queue in &mut self.bank_queues {
            queue.clear();
        }
        self.mem_queue.clear();
        self.serial_queue.clear();
        self.seq_slots.clear();
        self.privs.clear();
    }
}

impl EngineState {
    /// Engine state for a host with `num_vms` VM slots on `sockets` sockets.
    #[must_use]
    pub fn new(num_vms: usize, sockets: usize) -> Self {
        Self {
            pools: (0..num_vms).map(|_| FramePool::new(sockets)).collect(),
            pendings: (0..num_vms).map(|_| DramPending::new(sockets)).collect(),
            interleave: vec![0; num_vms],
            pool: None,
            commit: CommitScratch::default(),
            effects_pool: Vec::new(),
            profiler: PhaseProfiler::default(),
        }
    }

    /// Wall-clock time this engine instance has spent per phase (simulate,
    /// bank replay, booking replay, serial commit, pool refill), plus the
    /// number of slices executed.  Purely observational — the model never
    /// reads it.
    #[must_use]
    pub fn phase_totals(&self) -> &PhaseTotals {
        self.profiler.totals()
    }

    /// Makes sure the persistent worker pool exists with at least
    /// `threads - 1` workers.
    pub(crate) fn ensure_pool(&mut self, threads: usize) {
        let want = threads.saturating_sub(1);
        if self.pool.as_ref().is_none_or(|p| p.workers() < want) {
            self.pool = Some(WorkerPool::new(want));
        }
    }
}

// ---------------------------------------------------------------------------
// The slice-executor contract
// ---------------------------------------------------------------------------

/// The slice-executor contract a consolidated host drives: execute one
/// scheduler slice against the shared platform and the per-VM state, and
/// expose wall-clock phase totals for telemetry.
///
/// Every backend must be **deterministic and thread-count invariant**:
/// for a fixed configuration, reports are byte-identical across backends
/// and across any `threads ≥ 1` (the `parallel_determinism` and
/// `engine_conformance` integration tests enforce both properties).
pub trait EngineBackend: std::fmt::Debug + Send {
    /// Executes one scheduler slice (see [`run_slice_parallel`] for the
    /// contract on `placements`, `slice_accesses` and `threads`).
    fn run_slice(
        &mut self,
        platform: &mut Platform,
        vms: &mut [VmInstance],
        drivers: &mut [WorkloadDriver],
        placements: &[Placement],
        slice_accesses: u64,
        threads: usize,
    );

    /// Wall-clock time spent per engine phase plus the number of slices
    /// executed.  Purely observational — the model never reads it.
    fn phase_totals(&self) -> &PhaseTotals;
}

impl EngineBackend for EngineState {
    fn run_slice(
        &mut self,
        platform: &mut Platform,
        vms: &mut [VmInstance],
        drivers: &mut [WorkloadDriver],
        placements: &[Placement],
        slice_accesses: u64,
        threads: usize,
    ) {
        run_slice_parallel(
            platform,
            vms,
            drivers,
            placements,
            slice_accesses,
            threads,
            self,
        );
    }

    fn phase_totals(&self) -> &PhaseTotals {
        self.profiler.totals()
    }
}

/// Selects which interchangeable [`EngineBackend`] a host runs.  Both
/// backends produce byte-identical reports for any configuration and
/// thread count; the knob exists for cross-validation and for comparing
/// their orchestration overheads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The phased simulate → commit executor of [`run_slice_parallel`].
    #[default]
    Sliced,
    /// The actor-style message-passing executor,
    /// [`crate::engine_mp::MessageEngine`].
    MessagePassing,
}

impl EngineKind {
    /// Short CLI/report label: `sliced` or `mp` (both are accepted back by
    /// the [`std::str::FromStr`] impl).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Sliced => "sliced",
            EngineKind::MessagePassing => "mp",
        }
    }

    /// Builds a fresh backend of this kind for a host with `num_vms` VM
    /// slots on `sockets` sockets.
    #[must_use]
    pub fn build(self, num_vms: usize, sockets: usize) -> Box<dyn EngineBackend> {
        match self {
            EngineKind::Sliced => Box::new(EngineState::new(num_vms, sockets)),
            EngineKind::MessagePassing => {
                Box::new(crate::engine_mp::MessageEngine::new(num_vms, sockets))
            }
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sliced" | "phased" => Ok(EngineKind::Sliced),
            "mp" | "message-passing" | "message_passing" => Ok(EngineKind::MessagePassing),
            other => Err(format!("unknown engine `{other}` (sliced|mp)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Effects
// ---------------------------------------------------------------------------

/// Deferred translation-coherence work on a physical CPU another unit owns.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RemoteTarget {
    cpu: CpuId,
    action: TargetAction,
    vm_exit: bool,
    disruptive: bool,
    cycles: u64,
    cotag: CoTag,
    line: CacheLineAddr,
    /// The initiating VM's remap ordinal — carried so the commit phase can
    /// charge this target's disruption to the causing remap's
    /// [`hatric_telemetry::RemapId`].
    remap_ordinal: u64,
}

/// One deferred shared-state mutation, applied at the slice barrier (and
/// doubling as the message payload of the message-passing engine — shared
/// payload types are what pin the two backends to one semantics).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Effect {
    /// An LLC/directory op (replayed via `CacheHierarchy::apply_op`).
    Cache(SharedCacheOp),
    /// A DRAM/link booking (replayed via `MemorySystem::apply_booking`).
    Mem(MemoryBooking),
    /// A guest write observed for dirty-page tracking.
    Observe { gpp: GuestFrame },
    /// Cross-CPU coherence work (flush/invalidate + charging).
    Remote(RemoteTarget),
}

/// Everything one unit's simulate phase produced.
#[derive(Debug)]
pub(crate) struct UnitEffects {
    pub(crate) slot: usize,
    pub(crate) effects: Vec<Effect>,
    energy: EnergyTally,
    cache_stats: CacheStatsDelta,
    /// Scratch buffer `simulate_read`/`simulate_write` push into before the
    /// ops are folded into `effects` (keeps emission order).
    scratch: Vec<SharedCacheOp>,
    /// Sim-time spans recorded during simulate (empty unless tracing is
    /// on), merged into the platform sink in slot order at the barrier —
    /// the same canonical merge the energy tallies use.
    trace: Vec<TraceEvent>,
}

impl UnitEffects {
    fn empty() -> Self {
        Self {
            slot: 0,
            effects: Vec::new(),
            energy: EnergyTally::new(),
            cache_stats: CacheStatsDelta::default(),
            scratch: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Re-arms a recycled log for `slot` (capacities are retained).
    fn reset(&mut self, slot: usize) {
        self.slot = slot;
        self.effects.clear();
        self.energy.clear();
        self.cache_stats = CacheStatsDelta::default();
        self.scratch.clear();
        self.trace.clear();
    }

    fn flush_scratch(&mut self) {
        for i in 0..self.scratch.len() {
            self.effects.push(Effect::Cache(self.scratch[i]));
        }
        self.scratch.clear();
    }
}

// ---------------------------------------------------------------------------
// The frozen shared view and the per-unit task
// ---------------------------------------------------------------------------

/// The slice-start snapshot of everything shared, immutably borrowed by all
/// simulate workers.
struct SliceShared<'a> {
    latencies: LatencyConfig,
    costs: CoherenceCosts,
    cotag_bytes: u8,
    variant: DesignVariant,
    numa: &'a NumaConfig,
    numa_policy: NumaPolicy,
    memory: &'a MemorySystem,
    cache: &'a SharedCache,
    /// Physical CPUs executing any guest this slice (ascending).
    occupied: Vec<CpuId>,
    protocol: &'a dyn TranslationCoherence,
    observer_present: bool,
    /// Whether a trace sink is installed on the platform (units buffer
    /// spans only when it is, so tracing off allocates nothing).
    tracing: bool,
    mechanism: CoherenceMechanism,
    num_cpus: usize,
}

impl SliceShared<'_> {
    fn socket_of_cpu(&self, cpu: CpuId) -> SocketId {
        let cpus_per_socket = self.num_cpus / self.numa.sockets;
        SocketId::new((cpu.index() / cpus_per_socket) as u32)
    }

    /// Mirror of `Platform::remap_distance_extra` over the frozen view.
    fn remap_distance_extra(
        &self,
        initiator_socket: SocketId,
        target_cpu: CpuId,
        disruptive: bool,
        does_work: bool,
    ) -> (bool, u64) {
        let cross_socket = does_work && self.socket_of_cpu(target_cpu) != initiator_socket;
        let extra = match (cross_socket, disruptive) {
            (false, _) => 0,
            (true, true) => self.numa.remote_shootdown_extra_cycles,
            (true, false) => self.numa.remote_hw_message_extra_cycles,
        };
        (cross_socket, extra)
    }
}

/// One physical CPU a unit owns for the slice.
struct UnitCpu<'a> {
    cpu: CpuId,
    vcpu: VcpuId,
    structures: &'a mut TranslationStructures,
    pair: &'a mut PrivatePair,
    cycles: &'a mut u64,
}

/// One unit of simulation: a VM slot plus everything it exclusively owns
/// this slice.
struct UnitTask<'a> {
    slot: usize,
    vm: &'a mut VmInstance,
    driver: &'a mut WorkloadDriver,
    /// The unit's CPUs, in the scheduler's placement order.
    cpus: Vec<UnitCpu<'a>>,
    pool: &'a mut FramePool,
    pending: &'a mut DramPending,
    interleave: &'a mut usize,
}

impl UnitTask<'_> {
    fn local_index(&self, cpu: CpuId) -> Option<usize> {
        self.cpus.iter().position(|c| c.cpu == cpu)
    }
}

/// Charges `cycles` to the unit's `p`-th CPU and the vCPU placed on it (the
/// unit-owned equivalent of `Platform::charge_occupant`).
fn charge(task: &mut UnitTask<'_>, p: usize, cycles: u64) {
    *task.cpus[p].cycles += cycles;
    let vcpu = task.cpus[p].vcpu;
    task.vm.charge(vcpu, cycles);
}

// ---------------------------------------------------------------------------
// The simulate phase (one unit)
// ---------------------------------------------------------------------------

fn simulate_unit(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    slice_accesses: u64,
    mut out: UnitEffects,
) -> UnitEffects {
    out.reset(task.slot);
    for p in 0..task.cpus.len() {
        let thread = task.cpus[p].vcpu.index();
        for _ in 0..slice_accesses {
            let access = task.driver.next_access(thread);
            let asid = task
                .vm
                .vm()
                .address_space(task.driver.address_space_index(thread));
            unit_step(shared, task, &mut out, p, asid, access);
        }
    }
    out
}

/// The unit-side mirror of [`Platform::step`].
fn unit_step(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    asid: hatric_types::AddressSpaceId,
    access: Access,
) {
    task.vm.bump_accesses();
    charge(task, p, u64::from(access.compute_cycles));
    let vm_id = task.vm.id();
    let gvp = access.gvp;

    out.energy.record(EnergyEvent::TlbLookup, 1);
    let lookup = task.cpus[p].structures.lookup_data(vm_id, asid, gvp);
    if let Some(hit) = lookup {
        let extra = match hit.level {
            TlbLevel::L1 => 0,
            TlbLevel::L2 => shared.latencies.l2_tlb_hit_extra,
        };
        charge(task, p, extra);
        let needs_gpp = task.vm.paging_enabled() || (access.is_write && shared.observer_present);
        if needs_gpp {
            if let Some(gpp) = task.vm.guest_page_table().translate(gvp) {
                if task.vm.paging_enabled() {
                    task.vm.paging_mut().on_fast_access(gpp);
                }
                if access.is_write && shared.observer_present {
                    out.effects.push(Effect::Observe { gpp });
                }
            }
        }
        unit_data_access(
            shared,
            task,
            out,
            p,
            hit.spp,
            access.line_in_page,
            access.is_write,
        );
        return;
    }

    // TLB miss: make sure the page is mapped, resident where the
    // hypervisor wants it, then walk.
    out.energy.record(EnergyEvent::MmuCacheLookup, 1);
    out.energy.record(EnergyEvent::NtlbLookup, 1);
    let gpp = unit_ensure_guest_mapping(shared, task, p, gvp);
    unit_ensure_nested_mapping(shared, task, p, gpp);
    if access.is_write && shared.observer_present {
        out.effects.push(Effect::Observe { gpp });
    }

    if task.vm.paging_enabled() {
        if task.vm.paging().is_resident(gpp) {
            task.vm.paging_mut().on_fast_access(gpp);
        } else if current_kind(shared, task.vm, gpp) == Some(MemoryKind::OffChip) {
            unit_handle_demand_fault(shared, task, out, p, gpp);
        }
    }

    let walk =
        match TwoDimWalker::walk(gvp, task.vm.guest_page_table(), task.vm.nested_page_table()) {
            Ok(walk) => walk,
            Err(_) => return,
        };
    let accessed_clear = task
        .vm
        .nested_pt_mut()
        .mark_used(gpp, access.is_write)
        .unwrap_or(false);
    if accessed_clear {
        // The walker informs the directory that this line now feeds
        // translation structures (Sec. 4.2) — a shared-level op.
        out.effects.push(Effect::Cache(SharedCacheOp::MarkPt {
            line: walk.nested_leaf_pte_addr().cache_line(),
            kind: hatric_cache::PtKind::Nested,
        }));
        out.effects.push(Effect::Cache(SharedCacheOp::MarkPt {
            line: walk.guest_leaf_pte_addr().cache_line(),
            kind: hatric_cache::PtKind::Guest,
        }));
        out.energy.record(EnergyEvent::DirectoryAccess, 1);
    }
    let assist = task.cpus[p]
        .structures
        .service_miss(vm_id, asid, &walk, accessed_clear);
    out.energy
        .record(EnergyEvent::PageWalkStep, assist.refs.len() as u64);
    let walk_start = *task.cpus[p].cycles;
    for addr in assist.refs {
        let sim = sim_read(shared, task, out, p, addr.cache_line());
        unit_charge_read(shared, task, out, p, addr, sim.level);
    }
    let walk_cycles = *task.cpus[p].cycles - walk_start;
    task.vm.latency_mut().walk.record(walk_cycles);

    unit_data_access(
        shared,
        task,
        out,
        p,
        walk.spp,
        access.line_in_page,
        access.is_write,
    );
}

fn sim_read(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    line: CacheLineAddr,
) -> hatric_cache::SimAccess {
    let cpu = task.cpus[p].cpu;
    let sim = task.cpus[p].pair.simulate_read(
        shared.cache,
        cpu,
        line,
        &mut out.scratch,
        &mut out.cache_stats,
    );
    out.flush_scratch();
    sim
}

fn sim_write(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    line: CacheLineAddr,
) -> hatric_cache::SimWrite {
    let cpu = task.cpus[p].cpu;
    let sim = task.cpus[p].pair.simulate_write(
        shared.cache,
        cpu,
        line,
        &mut out.scratch,
        &mut out.cache_stats,
    );
    out.flush_scratch();
    sim
}

fn unit_data_access(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    spp: SystemFrame,
    line_in_page: u8,
    is_write: bool,
) {
    let addr = spp.addr_at(u64::from(line_in_page) * 64);
    let line = addr.cache_line();
    if is_write {
        let w = sim_write(shared, task, out, p, line);
        unit_charge_read(shared, task, out, p, addr, w.level);
        out.energy.record(
            EnergyEvent::CoherenceMessage,
            u64::from(w.invalidated_sharers.count()),
        );
        // Ordinary data writes never hit page-table lines (workload data
        // regions and page-table frames are disjoint), so no translation
        // coherence is needed here.
    } else {
        let r = sim_read(shared, task, out, p, line);
        unit_charge_read(shared, task, out, p, addr, r.level);
    }
}

/// The unit-side mirror of `Platform::charge_read`: charges the predicted
/// latency of one cache access.  Back-invalidations are produced — and
/// handled — at commit time by the op replay.
fn unit_charge_read(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    addr: SystemPhysAddr,
    level: HitLevel,
) {
    let lat = &shared.latencies;
    let cycles = match level {
        HitLevel::L1 => {
            out.energy.record(EnergyEvent::L1Access, 1);
            lat.l1_hit
        }
        HitLevel::L2 => {
            out.energy.record(EnergyEvent::L2Access, 1);
            lat.l2_hit
        }
        HitLevel::Llc => {
            out.energy.record(EnergyEvent::LlcAccess, 1);
            out.energy.record(EnergyEvent::DirectoryAccess, 1);
            lat.llc_hit
        }
        HitLevel::Memory => {
            out.energy.record(EnergyEvent::LlcAccess, 1);
            out.energy.record(EnergyEvent::DirectoryAccess, 1);
            let frame = addr.frame(PageSize::Base);
            let kind = shared.memory.kind_of(frame);
            out.energy.record(
                match kind {
                    MemoryKind::DieStacked => EnergyEvent::DramAccessFast,
                    MemoryKind::OffChip => EnergyEvent::DramAccessSlow,
                },
                1,
            );
            let cpu_socket = shared.socket_of_cpu(task.cpus[p].cpu);
            let numa = task.vm.numa_mut();
            if shared.memory.is_remote(frame, cpu_socket) {
                numa.remote_dram_accesses += 1;
            } else {
                numa.local_dram_accesses += 1;
            }
            let now = *task.cpus[p].cycles;
            let cost = shared
                .memory
                .plan_access_detail(frame, cpu_socket, now, task.pending);
            task.vm.latency_mut().dram_queue.record(cost.queueing);
            out.effects.push(Effect::Mem(MemoryBooking::Access {
                frame,
                stream: task.slot,
                from_socket: cpu_socket,
                now,
            }));
            lat.llc_hit + cost.total
        }
    };
    charge(task, p, cycles);
}

// ----- mapping management (unit side) --------------------------------------

fn current_kind(shared: &SliceShared<'_>, vm: &VmInstance, gpp: GuestFrame) -> Option<MemoryKind> {
    vm.nested_page_table()
        .translate(gpp)
        .map(|spp| shared.memory.kind_of(spp))
}

fn unit_ensure_guest_mapping(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    p: usize,
    gvp: GuestVirtPage,
) -> GuestFrame {
    if let Some(gpp) = task.vm.guest_page_table().translate(gvp) {
        return gpp;
    }
    let gpp = GuestFrame::new(gvp.number());
    let outcome = task.vm.guest_pt_mut().map(gvp, gpp);
    // Give every new guest page-table node a nested mapping in the
    // hypervisor's page-table reserve region.
    let mut nodes = outcome.allocated_nodes;
    if task
        .vm
        .nested_page_table()
        .translate(GuestFrame::new(GUEST_PT_GPP_BASE))
        .is_none()
    {
        nodes.push(GuestFrame::new(GUEST_PT_GPP_BASE));
    }
    for node in nodes {
        if task.vm.nested_page_table().translate(node).is_none() {
            let backing = SystemFrame::new(task.vm.next_pt_backing_frame());
            task.vm.nested_pt_mut().map(node, backing);
        }
    }
    task.vm.faults_mut().first_touch_faults += 1;
    charge(task, p, shared.latencies.first_touch_cycles);
    gpp
}

/// Pool-backed equivalent of `Platform::allocate_for`.
fn unit_allocate(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    p: usize,
    kind: MemoryKind,
) -> Option<SystemFrame> {
    let preferred = match shared.numa_policy {
        NumaPolicy::FirstTouch => shared.socket_of_cpu(task.cpus[p].cpu),
        NumaPolicy::Interleaved => {
            let socket = *task.interleave % shared.numa.sockets;
            *task.interleave += 1;
            SocketId::new(socket as u32)
        }
    };
    let (frame, socket) = task.pool.take(kind, preferred)?;
    // A deliberate interleaved placement on another socket is not a
    // spill; only failing to get the *preferred* socket is.
    if socket != preferred {
        task.vm.numa_mut().remote_allocations += 1;
    }
    Some(frame)
}

fn unit_ensure_nested_mapping(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    p: usize,
    gpp: GuestFrame,
) {
    if task.vm.nested_page_table().translate(gpp).is_some() {
        return;
    }
    // First touch of a brand-new page (see `Platform::ensure_nested_mapping`
    // for the placement policy rationale).
    let spp = if task.vm.paging_enabled() && task.vm.paging().free_pages() > 0 {
        match unit_allocate(shared, task, p, MemoryKind::DieStacked) {
            Some(f) => {
                task.vm.paging_mut().commit_promotion(gpp);
                f
            }
            None => unit_allocate(shared, task, p, MemoryKind::OffChip)
                .unwrap_or_else(|| SystemFrame::new(task.vm.next_pt_backing_frame())),
        }
    } else {
        unit_allocate(shared, task, p, MemoryKind::OffChip)
            .unwrap_or_else(|| SystemFrame::new(task.vm.next_pt_backing_frame()))
    };
    task.vm.nested_pt_mut().map(gpp, spp);
    charge(task, p, shared.latencies.first_touch_cycles);
}

// ----- demand paging (unit side) -------------------------------------------

fn unit_handle_demand_fault(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    gpp: GuestFrame,
) {
    // The faulting access takes an EPT-violation VM exit regardless of
    // the translation-coherence mechanism.
    task.vm.faults_mut().demand_faults += 1;
    charge(task, p, shared.costs.vm_exit_cycles);
    out.energy.record(EnergyEvent::VmExit, 1);

    let decision = task.vm.paging_mut().on_slow_access(gpp);
    for &victim in &decision.evictions {
        unit_migrate(shared, task, out, p, victim, MemoryKind::OffChip, false);
    }
    if task.vm.paging().daemon_should_run() {
        for victim in task.vm.paging_mut().run_daemon() {
            unit_migrate(shared, task, out, p, victim, MemoryKind::OffChip, false);
        }
    }
    for (i, promo) in decision.promotions.iter().enumerate() {
        if task.vm.nested_page_table().translate(*promo).is_none() {
            // Prefetch candidate that the guest has never touched: skip.
            continue;
        }
        if current_kind(shared, task.vm, *promo) == Some(MemoryKind::OffChip) {
            let on_critical_path = i == 0;
            if unit_migrate(
                shared,
                task,
                out,
                p,
                *promo,
                MemoryKind::DieStacked,
                on_critical_path,
            ) {
                task.vm.paging_mut().commit_promotion(*promo);
            }
        } else {
            task.vm.paging_mut().commit_promotion(*promo);
        }
    }
}

/// Unit-side mirror of `Platform::migrate`: moves `gpp` to the `to` device.
/// The freed frame is recycled into the unit's own pool; the copy's device
/// occupancy is planned against the frozen devices and booked at commit.
fn unit_migrate(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    gpp: GuestFrame,
    to: MemoryKind,
    critical: bool,
) -> bool {
    let Some(old_spp) = task.vm.nested_page_table().translate(gpp) else {
        return false;
    };
    if shared.memory.kind_of(old_spp) == to {
        return false;
    }
    let Some(new_spp) = unit_allocate(shared, task, p, to) else {
        return false;
    };
    let now = *task.cpus[p].cycles;
    let copy = shared
        .memory
        .plan_page_copy(old_spp, new_spp, now, task.pending);
    out.effects.push(Effect::Mem(MemoryBooking::PageCopy {
        from: old_spp,
        to: new_spp,
        stream: task.slot,
        now,
    }));
    if critical {
        charge(task, p, copy);
    }
    out.energy.record(EnergyEvent::PageCopy, 1);
    // Recycle the freed frame into the VM's own pool (the shared allocator
    // is frozen during simulate; the frame stays VM-private).
    task.pool.put(
        shared.memory.kind_of(old_spp),
        shared.memory.socket_of(old_spp),
        old_spp,
    );
    let pte_addr = task
        .vm
        .nested_pt_mut()
        .remap(gpp, new_spp)
        .expect("translate() above guarantees the mapping exists");
    match to {
        MemoryKind::DieStacked => task.vm.faults_mut().pages_promoted += 1,
        MemoryKind::OffChip => task.vm.faults_mut().pages_demoted += 1,
    }
    unit_remap_coherence(shared, task, out, p, pte_addr);
    true
}

// ----- translation coherence (unit side) -----------------------------------

/// Unit-side mirror of [`Platform::remap_coherence`].  Targets on the
/// unit's own CPUs are applied inline (so the VM's own stale translations
/// vanish before its next access); targets on other CPUs become
/// [`Effect::Remote`] entries applied at the barrier.
fn unit_remap_coherence(
    shared: &SliceShared<'_>,
    task: &mut UnitTask<'_>,
    out: &mut UnitEffects,
    p: usize,
    pte_addr: SystemPhysAddr,
) {
    let slot = task.vm.slot() as u32;
    let remap_id = {
        let coherence = task.vm.coherence_mut();
        coherence.remaps += 1;
        RemapId::new(slot, coherence.remaps)
    };
    let span_start = *task.cpus[p].cycles;
    let line = pte_addr.cache_line();
    let write = sim_write(shared, task, out, p, line);
    unit_charge_read(shared, task, out, p, pte_addr, write.level);
    out.energy.record(
        EnergyEvent::CoherenceMessage,
        u64::from(write.invalidated_sharers.count()),
    );

    // The initiator's own translation structures snoop the store locally
    // (the directory's sharer list excludes the writer), so it is always
    // part of the hardware-coherence target set.
    let initiator = task.cpus[p].cpu;
    let mut sharers = write.invalidated_sharers;
    sharers.add(initiator);
    let ctx = RemapContext {
        initiator,
        vm: task.vm.id(),
        vm_cpus: task.vm.vm().cpus_ever_used().to_vec(),
        running_guest: shared.occupied.clone(),
        sharers,
    };
    let plan = shared.protocol.plan_remap(&ctx);
    debug_assert_eq!(
        plan.vm,
        task.vm.id(),
        "coherence plan must be executed on behalf of the VM that remapped"
    );
    charge(task, p, plan.initiator_cycles);
    task.vm.coherence_mut().ipis += plan.ipis_sent;
    task.vm.coherence_mut().hw_messages += plan.hw_messages;
    out.energy.record(EnergyEvent::Ipi, plan.ipis_sent);
    out.energy
        .record(EnergyEvent::CoherenceMessage, plan.hw_messages);

    let cotag = CoTag::from_pte_addr(pte_addr, shared.cotag_bytes);
    let initiator_socket = shared.socket_of_cpu(initiator);
    // Completion latency = initiator cycles plus the slowest target's
    // invalidation, computed over the plan before the charging loop so the
    // remap span precedes its per-target acks in the sink (trace order
    // stays monotone per track).
    let slowest_target = plan
        .targets
        .iter()
        .map(|t| {
            let disruptive = t.vm_exit || t.action == TargetAction::FlushAll;
            let does_work = disruptive || t.action != TargetAction::None;
            t.target_cycles
                + shared
                    .remap_distance_extra(initiator_socket, t.cpu, disruptive, does_work)
                    .1
        })
        .max()
        .unwrap_or(0);
    task.vm
        .latency_mut()
        .shootdown
        .record(plan.initiator_cycles + slowest_target);
    if shared.tracing {
        let dur = (*task.cpus[p].cycles - span_start) + slowest_target;
        out.trace.push(TraceEvent {
            name: remap_span_name(shared.mechanism),
            cat: "coherence",
            track: track::cpu(initiator.index()),
            ts: span_start,
            dur,
            args: vec![
                ("targets", plan.targets.len() as u64),
                ("ipis", plan.ipis_sent),
                ("hw_messages", plan.hw_messages),
            ],
        });
    }
    for target in &plan.targets {
        let disruptive = target.vm_exit || target.action == TargetAction::FlushAll;
        let does_work = disruptive || target.action != TargetAction::None;
        let (cross_socket, distance_extra) =
            shared.remap_distance_extra(initiator_socket, target.cpu, disruptive, does_work);
        let target_cycles = target.target_cycles + distance_extra;
        if does_work {
            let numa = task.vm.numa_mut();
            if cross_socket {
                numa.remote_coherence_targets += 1;
            } else {
                numa.local_coherence_targets += 1;
            }
            task.vm.causal_mut().charge_target(remap_id);
        }
        if let Some(q) = task.local_index(target.cpu) {
            // Own CPU: apply inline.  The occupant is this unit's own vCPU,
            // so no cross-VM interference is recorded (mirroring the serial
            // `occ_slot != slot` check).
            if shared.tracing && does_work {
                out.trace.push(TraceEvent {
                    name: "inval_target",
                    cat: "coherence",
                    track: track::cpu(target.cpu.index()),
                    ts: *task.cpus[q].cycles,
                    dur: target_cycles,
                    args: vec![("vm_exit", u64::from(target.vm_exit))],
                });
            }
            if disruptive {
                charge(task, q, target_cycles);
            } else {
                // Co-tag matches run in the translation-structure port and
                // never stall the occupant.
                *task.cpus[q].cycles += target_cycles;
            }
            if target.vm_exit {
                task.vm.coherence_mut().coherence_vm_exits += 1;
                out.energy.record(EnergyEvent::VmExit, 1);
            }
            let holds_line = task.cpus[q].pair.holds(line);
            let energy = &mut out.energy;
            let (demote, invalidated) = apply_target_action(
                task.cpus[q].structures,
                holds_line,
                task.vm.coherence_mut(),
                &mut |event, count| energy.record(event, count),
                target.action,
                cotag,
            );
            task.vm
                .causal_mut()
                .charge_invalidations(remap_id, invalidated);
            if demote {
                out.effects.push(Effect::Cache(SharedCacheOp::DemoteSharer {
                    cpu: target.cpu,
                    line,
                }));
            }
        } else {
            out.effects.push(Effect::Remote(RemoteTarget {
                cpu: target.cpu,
                action: target.action,
                vm_exit: target.vm_exit,
                disruptive,
                cycles: target_cycles,
                cotag,
                line,
                remap_ordinal: remap_id.ordinal,
            }));
        }
    }
    // Directory-energy premium of the fancier design variants (Fig. 12).
    let extra_factor = shared.variant.directory_energy_factor() - 1.0;
    if extra_factor > 0.0 {
        let extra = ((plan.targets.len() as f64) * extra_factor).ceil() as u64;
        out.energy.record(EnergyEvent::DirectoryAccess, extra);
    }
}

/// Applies one planned [`TargetAction`] to a target CPU's translation
/// structures, crediting the *initiating* VM's coherence counters and
/// energy (via `energy`, so both the simulate-side [`EnergyTally`] and the
/// commit-side [`hatric_energy::EnergyModel`] fit).  `holds_line` is
/// whether the target CPU's private caches currently hold the page-table
/// line; returns `(demote, invalidated)` — `demote` is `true` when a
/// spurious message means the caller must lazily demote the target from
/// the line's sharer list, `invalidated` is the number of translation
/// entries removed (for per-remap causal attribution).
fn apply_target_action(
    structures: &mut TranslationStructures,
    holds_line: bool,
    coherence: &mut crate::metrics::CoherenceActivity,
    energy: &mut dyn FnMut(EnergyEvent, u64),
    action: TargetAction,
    cotag: CoTag,
) -> (bool, u64) {
    match action {
        TargetAction::FlushAll => {
            let counts = structures.flush_all();
            coherence.full_flushes += 1;
            coherence.entries_flushed += counts.total();
            (false, counts.total())
        }
        TargetAction::InvalidateCotag => {
            energy(EnergyEvent::CotagMatch, 1);
            let counts = structures.invalidate_cotag(cotag);
            coherence.entries_selectively_invalidated += counts.total();
            energy(EnergyEvent::TranslationInvalidation, counts.total());
            if counts.total() == 0 && !holds_line {
                coherence.spurious_messages += 1;
                (true, 0)
            } else {
                (false, counts.total())
            }
        }
        TargetAction::InvalidateCotagTlbOnly => {
            energy(EnergyEvent::UnitdCamSearch, 1);
            let counts = structures.invalidate_cotag_tlb_only(cotag);
            coherence.entries_selectively_invalidated += counts.tlb;
            coherence.entries_flushed += counts.mmu_cache + counts.ntlb;
            energy(EnergyEvent::TranslationInvalidation, counts.total());
            if counts.total() == 0 && !holds_line {
                coherence.spurious_messages += 1;
                (true, 0)
            } else {
                (false, counts.total())
            }
        }
        TargetAction::None => (false, 0),
    }
}

// ---------------------------------------------------------------------------
// The commit phase
// ---------------------------------------------------------------------------

/// The non-bank effects of the seq-ordered serial pass.
#[derive(Debug)]
pub(crate) enum SerialEffect {
    Observe(GuestFrame),
    Remote(RemoteTarget),
}

/// Commits every unit's effect log at the slice barrier:
///
/// 1. private-cache stat deltas and energy tallies, in slot order;
/// 2. **parallel** replay of the LLC/directory ops, distributed to the
///    fixed geometry-derived banks (each bank drained by one worker in
///    canonical seq order) concurrently with the DRAM booking replay —
///    banks, devices and private state are mutually disjoint;
/// 3. a serial pass over everything that touches private pairs, VM
///    counters or translation structures (downgrades, invalidations,
///    back-invalidations, remote coherence targets, dirty-page
///    observations), merged across banks and sorted by global seq.
fn commit_effects(
    platform: &mut Platform,
    vms: &mut [VmInstance],
    effects: &mut [UnitEffects],
    threads: usize,
    pool: Option<&WorkerPool>,
    scratch: &mut CommitScratch,
    profiler: &mut PhaseProfiler,
) {
    for unit in effects.iter_mut() {
        apply_unit_tallies(platform, unit);
    }

    // Partition by destination, assigning each effect its global seq (slot
    // order is the canonical commit order).  All buffers are reused across
    // slices.
    scratch.reset(platform.caches.bank_count());
    let CommitScratch {
        bank_queues,
        mem_queue,
        serial_queue,
        seq_slots,
        privs,
    } = scratch;
    let mut seq: u64 = 0;
    for unit in effects.iter() {
        for effect in &unit.effects {
            route_effect(
                platform,
                bank_queues,
                mem_queue,
                serial_queue,
                seq,
                unit.slot,
                effect,
            );
            seq_slots.push(unit.slot as u32);
            seq += 1;
        }
    }

    replay_banks(
        platform,
        threads,
        pool,
        bank_queues,
        mem_queue,
        privs,
        profiler,
    );
    serial_pass(platform, vms, privs, serial_queue, seq_slots, profiler);
}

/// Applies one unit's private tallies: private-cache stat deltas, the
/// energy tally, and the slot-ordered trace merge (the same canonical
/// order as the energy tallies, so sink contents are thread-count — and
/// backend — invariant).
pub(crate) fn apply_unit_tallies(platform: &mut Platform, unit: &mut UnitEffects) {
    platform.caches.apply_stats_delta(&unit.cache_stats);
    unit.energy.apply_to(&mut platform.energy);
    if let Some(sink) = platform.trace.as_mut() {
        for event in unit.trace.drain(..) {
            sink.record(event);
        }
    } else {
        unit.trace.clear();
    }
}

/// Routes one effect, stamped with its global `seq`, to the component that
/// consumes it: LLC/directory ops to their geometry bank's queue, DRAM
/// bookings to the device queue, observations and remote coherence work to
/// the serial committer's queue.  Both backends route through this one
/// function, so the destination of an effect can never diverge.
pub(crate) fn route_effect(
    platform: &Platform,
    bank_queues: &mut [Vec<(u64, SharedCacheOp)>],
    mem_queue: &mut Vec<MemoryBooking>,
    serial_queue: &mut Vec<(u64, usize, SerialEffect)>,
    seq: u64,
    slot: usize,
    effect: &Effect,
) {
    match effect {
        Effect::Cache(op) => {
            bank_queues[platform.caches.bank_of(op.line())].push((seq, *op));
        }
        Effect::Mem(booking) => mem_queue.push(*booking),
        Effect::Observe { gpp } => {
            serial_queue.push((seq, slot, SerialEffect::Observe(*gpp)));
        }
        Effect::Remote(target) => {
            serial_queue.push((seq, slot, SerialEffect::Remote(*target)));
        }
    }
}

/// The parallel replay phase: bank replays + DRAM bookings.  Bank replays
/// read no private or device state, so any worker↔bank assignment yields
/// the same result; the bank count never depends on `threads`.  On return,
/// `privs` holds every deferred private-cache effect sorted into the one
/// canonical global-seq order.
pub(crate) fn replay_banks(
    platform: &mut Platform,
    threads: usize,
    pool: Option<&WorkerPool>,
    bank_queues: &[Vec<(u64, SharedCacheOp)>],
    mem_queue: &[MemoryBooking],
    privs: &mut Vec<(u64, hatric_cache::PrivEffect)>,
    profiler: &mut PhaseProfiler,
) {
    let bank_count = bank_queues.len();
    let eager = platform.caches.config().eager_pt_directory_update;
    {
        let banks = platform.caches.banks_mut();
        let memory = &mut platform.memory;
        match pool.filter(|p| threads > 1 && p.workers() > 0) {
            None => {
                let t = Instant::now();
                for (bank, queue) in banks.iter_mut().zip(bank_queues.iter()) {
                    for (op_seq, op) in queue {
                        bank.apply_op(op, *op_seq, eager, privs);
                    }
                }
                profiler.record(EnginePhase::BankReplay, t.elapsed());
                let t = Instant::now();
                for booking in mem_queue.iter() {
                    memory.apply_booking(booking);
                }
                profiler.record(EnginePhase::BookingReplay, t.elapsed());
            }
            Some(pool) => {
                // Workers replay the banks; the calling thread replays the
                // DRAM bookings meanwhile (devices and banks are disjoint).
                type BankWork<'a> = (&'a mut hatric_cache::CacheBank, &'a [(u64, SharedCacheOp)]);
                let workers = pool.workers().min(bank_count);
                let mut worker_banks: Vec<Vec<BankWork<'_>>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (i, (bank, queue)) in banks.iter_mut().zip(bank_queues.iter()).enumerate() {
                    worker_banks[i % workers].push((bank, queue.as_slice()));
                }
                let mut results: Vec<Vec<(u64, hatric_cache::PrivEffect)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
                    .iter_mut()
                    .zip(worker_banks)
                    .map(|(out, bucket)| {
                        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                            for (bank, queue) in bucket {
                                for (op_seq, op) in queue {
                                    bank.apply_op(op, *op_seq, eager, out);
                                }
                            }
                        });
                        job
                    })
                    .collect();
                // The booking replay runs on the calling thread while the
                // workers replay banks, so `BankReplay` here is the wall
                // time of the fork-join barrier minus the local booking
                // time (the two phases overlap; on the inline path they
                // are disjoint).
                let barrier = Instant::now();
                let mut booking_elapsed = std::time::Duration::ZERO;
                pool.run_with_local(jobs, || {
                    let t = Instant::now();
                    for booking in mem_queue.iter() {
                        memory.apply_booking(booking);
                    }
                    booking_elapsed = t.elapsed();
                });
                profiler.record(
                    EnginePhase::BankReplay,
                    barrier.elapsed().saturating_sub(booking_elapsed),
                );
                profiler.record(EnginePhase::BookingReplay, booking_elapsed);
                for list in results {
                    privs.extend(list);
                }
            }
        }
    }
    // Per-bank emission order is already seq-ascending; a stable sort
    // merges the banks into the one canonical order.
    privs.sort_by_key(|(s, _)| *s);
}

/// The serial committer: walks priv effects and remote/observe effects
/// merged by global seq, applying everything that touches private pairs,
/// VM counters or translation structures.
pub(crate) fn serial_pass(
    platform: &mut Platform,
    vms: &mut [VmInstance],
    privs: &[(u64, hatric_cache::PrivEffect)],
    serial_queue: &[(u64, usize, SerialEffect)],
    seq_slots: &[u32],
    profiler: &mut PhaseProfiler,
) {
    let serial_start = Instant::now();
    let mut p = 0usize;
    let mut r = 0usize;
    while p < privs.len() || r < serial_queue.len() {
        let take_priv = match (privs.get(p), serial_queue.get(r)) {
            (Some((ps, _)), Some((rs, _, _))) => ps < rs,
            (Some(_), None) => true,
            _ => false,
        };
        if take_priv {
            let (s, effect) = &privs[p];
            p += 1;
            let slot = seq_slots[*s as usize] as usize;
            platform.caches.resolve_priv(effect);
            if let hatric_cache::PrivEffect::BackInvalidate {
                line,
                sharers,
                pt: Some(_),
            } = effect
            {
                // Page-table lines feed translation structures: the
                // back-invalidation reaches them too.
                let cotag = CoTag::from_line(*line, platform.cotag_bytes);
                for cpu in sharers.iter() {
                    let counts = platform.structures[cpu.index()].invalidate_cotag(cotag);
                    vms[slot].coherence_mut().back_invalidated_entries += counts.total();
                    // Charged to the evicting VM's latest remap (the commit
                    // pass is serial and `remaps` holds the full-slice value
                    // here, so the ordinal is thread-count invariant).
                    let remaps = vms[slot].coherence_mut().remaps;
                    if remaps > 0 {
                        vms[slot].causal_mut().charge_invalidations(
                            RemapId::new(slot as u32, remaps),
                            counts.total(),
                        );
                    }
                    platform
                        .energy
                        .record(EnergyEvent::TranslationInvalidation, counts.total());
                }
            }
        } else {
            let (_, slot, effect) = &serial_queue[r];
            r += 1;
            match effect {
                SerialEffect::Observe(gpp) => {
                    if let Some(observer) = platform.write_observer.as_mut() {
                        observer.on_guest_write(*slot, *gpp);
                    }
                }
                SerialEffect::Remote(target) => commit_remote_target(platform, vms, *slot, target),
            }
        }
    }
    profiler.record(EnginePhase::SerialCommit, serial_start.elapsed());
}

/// Applies one deferred cross-CPU coherence target: charging, interference
/// attribution, the structure invalidation/flush, and the spurious-message
/// bookkeeping — exactly the target loop of `Platform::remap_coherence`.
fn commit_remote_target(
    platform: &mut Platform,
    vms: &mut [VmInstance],
    slot: usize,
    target: &RemoteTarget,
) {
    let does_work = target.disruptive || target.action != TargetAction::None;
    if platform.trace.is_some() && does_work {
        platform.trace_event(TraceEvent {
            name: "inval_target",
            cat: "coherence",
            track: track::cpu(target.cpu.index()),
            ts: platform.cycles[target.cpu.index()],
            dur: target.cycles,
            args: vec![("vm_exit", u64::from(target.vm_exit))],
        });
    }
    platform.cycles[target.cpu.index()] += target.cycles;
    let remap_id = RemapId::new(slot as u32, target.remap_ordinal);
    if target.disruptive {
        if let Some((occ_slot, vcpu)) = platform.occupancy[target.cpu.index()] {
            vms[occ_slot].charge(vcpu, target.cycles);
            if occ_slot != slot {
                let victim = vms[occ_slot].interference_mut();
                victim.disrupted_cycles += target.cycles;
                victim.disruptions_received += 1;
                vms[slot].interference_mut().inflicted_cycles += target.cycles;
                vms[slot]
                    .causal_mut()
                    .charge_victim_cycles(remap_id, target.cycles);
            }
        }
    }
    if target.vm_exit {
        vms[slot].coherence_mut().coherence_vm_exits += 1;
        platform.energy.record(EnergyEvent::VmExit, 1);
    }
    let holds_line = platform.caches.cpu_holds_line(target.cpu, target.line);
    let energy = &mut platform.energy;
    let (demote, invalidated) = apply_target_action(
        &mut platform.structures[target.cpu.index()],
        holds_line,
        vms[slot].coherence_mut(),
        &mut |event, count| energy.record(event, count),
        target.action,
        target.cotag,
    );
    vms[slot]
        .causal_mut()
        .charge_invalidations(remap_id, invalidated);
    if demote {
        platform.caches.demote_sharer(target.line, target.cpu);
    }
}

// ---------------------------------------------------------------------------
// Pool refill (serial, at the slice barrier)
// ---------------------------------------------------------------------------

/// Refills the scheduled VMs' frame pools from the shared allocators, in
/// slot order.  Die-stacked refill is capped by the VM's unclaimed quota
/// (every die-stacked allocation the pipeline makes consumes a quota page,
/// so a pool holding `min(2 × accesses, quota remaining)` frames can never
/// run dry for first-touch); off-chip refill is bounded by the per-slice
/// demand estimate.
pub(crate) fn refill_pools(
    platform: &mut Platform,
    vms: &[VmInstance],
    units: &[(usize, Vec<Placement>)],
    state: &mut EngineState,
    slice_accesses: u64,
) {
    for (slot, placements) in units {
        let per_slice = placements.len() as u64 * slice_accesses;
        let vm = &vms[*slot];
        if vm.paging_enabled() {
            let want = (2 * per_slice).min(vm.paging().free_pages());
            refill_kind(
                platform,
                state,
                *slot,
                MemoryKind::DieStacked,
                want,
                placements,
            );
        }
        refill_kind(
            platform,
            state,
            *slot,
            MemoryKind::OffChip,
            2 * per_slice,
            placements,
        );
    }
}

fn refill_kind(
    platform: &mut Platform,
    state: &mut EngineState,
    slot: usize,
    kind: MemoryKind,
    target: u64,
    placements: &[Placement],
) {
    let sockets = platform.numa.sockets;
    let mut have = state.pools[slot].total(kind) as u64;
    let mut i = 0usize;
    while have < target {
        let preferred = match platform.numa_policy {
            NumaPolicy::FirstTouch => platform.socket_of_cpu(placements[i % placements.len()].pcpu),
            NumaPolicy::Interleaved => {
                let socket = state.interleave[slot] % sockets;
                state.interleave[slot] += 1;
                SocketId::new(socket as u32)
            }
        };
        match platform.memory.allocate_on(kind, preferred) {
            Ok(frame) => {
                let socket = platform.memory.socket_of(frame);
                state.pools[slot].put(kind, socket, frame);
                have += 1;
            }
            Err(_) => break,
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

/// Picks `&mut` references to the items at the (ascending) `slots` out of
/// `items`, without unsafe code: walk the iterator once, keeping only the
/// wanted elements.
fn pick_by_slot<'a, T>(items: &'a mut [T], slots: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(slots.len());
    let mut iter = items.iter_mut().enumerate();
    for &want in slots {
        loop {
            let (i, item) = iter.next().expect("slot index within range");
            if i == want {
                out.push(item);
                break;
            }
        }
    }
    out
}

/// Executes one scheduler slice through the phased engine.
///
/// `placements` is the slice's schedule (each pCPU at most once).  The
/// simulate phase runs the per-VM units on up to `threads` OS threads from
/// the engine's persistent worker pool; `threads = 1` runs them inline.
/// Results are bit-identical for any `threads` value.
///
/// # Panics
///
/// Panics if a placement names a CPU or VM slot out of range, or if a
/// worker thread panics.
pub fn run_slice_parallel(
    platform: &mut Platform,
    vms: &mut [VmInstance],
    drivers: &mut [WorkloadDriver],
    placements: &[Placement],
    slice_accesses: u64,
    threads: usize,
    state: &mut EngineState,
) {
    let units = group_units(placements);
    if units.is_empty() {
        return;
    }

    let refill_start = Instant::now();
    refill_pools(platform, vms, &units, state, slice_accesses);
    state
        .profiler
        .record(EnginePhase::PoolRefill, refill_start.elapsed());
    if threads > 1 {
        state.ensure_pool(threads);
    }

    let simulate_start = Instant::now();
    let mut effects = simulate_phase(
        platform,
        vms,
        drivers,
        &units,
        slice_accesses,
        threads,
        state,
    );
    state
        .profiler
        .record(EnginePhase::Simulate, simulate_start.elapsed());

    let EngineState {
        pool,
        commit,
        profiler,
        ..
    } = state;
    commit_effects(
        platform,
        vms,
        &mut effects,
        threads,
        pool.as_ref(),
        commit,
        profiler,
    );
    state.profiler.record_slice();
    state.effects_pool.extend(effects);
}

/// Groups a slice's placements into per-VM units: one `(slot, placements)`
/// entry per scheduled VM slot (ascending), preserving the scheduler's
/// placement order within each unit — the canonical commit order is
/// `(vm slot, emission order)`.
pub(crate) fn group_units(placements: &[Placement]) -> Vec<(usize, Vec<Placement>)> {
    let mut units: Vec<(usize, Vec<Placement>)> = Vec::new();
    let mut slots: Vec<usize> = placements.iter().map(|p| p.vm_slot).collect();
    slots.sort_unstable();
    slots.dedup();
    for slot in slots {
        let unit: Vec<Placement> = placements
            .iter()
            .filter(|p| p.vm_slot == slot)
            .copied()
            .collect();
        units.push((slot, unit));
    }
    units
}

/// The simulate phase: runs each unit (exclusively owning its VM, driver,
/// CPUs and per-slot engine resources) against the frozen slice-start
/// snapshot of the shared state, on up to `threads` OS threads.  Returns
/// the per-unit effect logs **in ascending slot order** — the canonical
/// order both backends commit in.
pub(crate) fn simulate_phase(
    platform: &mut Platform,
    vms: &mut [VmInstance],
    drivers: &mut [WorkloadDriver],
    units: &[(usize, Vec<Placement>)],
    slice_accesses: u64,
    threads: usize,
    state: &mut EngineState,
) -> Vec<UnitEffects> {
    // Split the engine state into its disjoint parts so the per-slot
    // resources can be lent to the unit tasks while the worker pool stays
    // usable from this thread.
    let EngineState {
        pools,
        pendings,
        interleave,
        pool,
        effects_pool,
        ..
    } = state;
    let pool = pool.as_ref();

    let unit_slots: Vec<usize> = units.iter().map(|(slot, _)| *slot).collect();
    // Map each pCPU to the unit that owns it this slice.
    let mut cpu_owner: Vec<Option<usize>> = vec![None; platform.num_cpus];
    let mut cpu_vcpu: Vec<Option<VcpuId>> = vec![None; platform.num_cpus];
    for (u, (_, unit_placements)) in units.iter().enumerate() {
        for p in unit_placements {
            cpu_owner[p.pcpu.index()] = Some(u);
            cpu_vcpu[p.pcpu.index()] = Some(p.vcpu);
        }
    }

    {
        let (cache_shared, pairs) = platform.caches.split_simulate();
        let occupied: Vec<CpuId> = platform
            .occupancy
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| CpuId::new(i as u32))
            .collect();
        let shared = SliceShared {
            latencies: platform.latencies,
            costs: platform.costs,
            cotag_bytes: platform.cotag_bytes,
            variant: platform.variant,
            numa: &platform.numa,
            numa_policy: platform.numa_policy,
            memory: &platform.memory,
            cache: cache_shared,
            occupied,
            protocol: &*platform.protocol,
            observer_present: platform.write_observer.is_some(),
            tracing: platform.trace.is_some(),
            mechanism: platform.mechanism,
            num_cpus: platform.num_cpus,
        };

        // Partition the per-CPU state by owning unit, in CPU order first…
        let mut cpu_buckets: Vec<Vec<UnitCpu<'_>>> = (0..units.len()).map(|_| Vec::new()).collect();
        for (((i, structures), pair), cycles) in platform
            .structures
            .iter_mut()
            .enumerate()
            .zip(pairs.iter_mut())
            .zip(platform.cycles.iter_mut())
        {
            if let Some(u) = cpu_owner[i] {
                cpu_buckets[u].push(UnitCpu {
                    cpu: CpuId::new(i as u32),
                    vcpu: cpu_vcpu[i].expect("owned CPUs have a placed vCPU"),
                    structures,
                    pair,
                    cycles,
                });
            }
        }
        // …then reorder each unit's CPUs into its placement order.
        let mut unit_cpus: Vec<Vec<UnitCpu<'_>>> = Vec::with_capacity(units.len());
        for (u, (_, unit_placements)) in units.iter().enumerate() {
            let mut bucket: Vec<UnitCpu<'_>> = std::mem::take(&mut cpu_buckets[u]);
            let mut ordered = Vec::with_capacity(bucket.len());
            for placement in unit_placements {
                let pos = bucket
                    .iter()
                    .position(|c| c.cpu == placement.pcpu)
                    .expect("every placement's CPU was partitioned to its unit");
                ordered.push(bucket.swap_remove(pos));
            }
            unit_cpus.push(ordered);
        }

        let unit_vms = pick_by_slot(vms, &unit_slots);
        let unit_drivers = pick_by_slot(drivers, &unit_slots);
        let unit_pools = pick_by_slot(pools, &unit_slots);
        let unit_pendings = pick_by_slot(pendings, &unit_slots);
        let unit_cursors = pick_by_slot(interleave, &unit_slots);

        let mut tasks: Vec<UnitTask<'_>> = Vec::with_capacity(units.len());
        for ((((((slot, _), cpus), vm), driver), pool), (pending, cursor)) in units
            .iter()
            .zip(unit_cpus)
            .zip(unit_vms)
            .zip(unit_drivers)
            .zip(unit_pools)
            .zip(unit_pendings.into_iter().zip(unit_cursors))
        {
            pending.clear();
            tasks.push(UnitTask {
                slot: *slot,
                vm,
                driver,
                cpus,
                pool,
                pending,
                interleave: cursor,
            });
        }

        let shared_ref = &shared;
        // Draw one recycled effect log per task (capacities survive across
        // slices; the pool refills after commit).
        let mut logs: Vec<UnitEffects> = (0..tasks.len())
            .map(|_| effects_pool.pop().unwrap_or_else(UnitEffects::empty))
            .collect();
        match pool.filter(|_| threads > 1 && tasks.len() > 1) {
            None => tasks
                .into_iter()
                .zip(logs)
                .map(|(mut task, log)| simulate_unit(shared_ref, &mut task, slice_accesses, log))
                .collect(),
            Some(pool) => {
                let buckets_n = threads.min(tasks.len());
                let mut buckets: Vec<Vec<(UnitTask<'_>, UnitEffects)>> =
                    (0..buckets_n).map(|_| Vec::new()).collect();
                for (i, pair) in tasks.into_iter().zip(logs.drain(..)).enumerate() {
                    buckets[i % buckets_n].push(pair);
                }
                let mut results: Vec<Vec<UnitEffects>> =
                    (0..buckets_n).map(|_| Vec::new()).collect();
                let local_bucket = buckets.pop().expect("buckets_n >= 2");
                let (job_results, local_result) = results.split_at_mut(buckets_n - 1);
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = job_results
                    .iter_mut()
                    .zip(buckets)
                    .map(|(slot, bucket)| {
                        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                            *slot = bucket
                                .into_iter()
                                .map(|(mut task, log)| {
                                    simulate_unit(shared_ref, &mut task, slice_accesses, log)
                                })
                                .collect();
                        });
                        job
                    })
                    .collect();
                pool.run_with_local(jobs, || {
                    local_result[0] = local_bucket
                        .into_iter()
                        .map(|(mut task, log)| {
                            simulate_unit(shared_ref, &mut task, slice_accesses, log)
                        })
                        .collect();
                });
                let mut flat: Vec<UnitEffects> = results.into_iter().flatten().collect();
                flat.sort_by_key(|u| u.slot);
                flat
            }
        }
    }
}
