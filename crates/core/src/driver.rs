//! Drivers feed guest memory accesses into the simulated system.

use hatric_workloads::{Access, MixWorkload, Workload};

/// A source of per-thread guest memory accesses.
///
/// Two shapes exist: a single multithreaded application (every thread shares
/// one guest address space) and a multiprogrammed mix (each thread is an
/// independent single-threaded application with its own address space —
/// the Fig. 10 setup).
#[derive(Debug, Clone)]
pub enum WorkloadDriver {
    /// One multithreaded application.
    Threads(Workload),
    /// A multiprogrammed mix of single-threaded applications.
    Mix(MixWorkload),
}

impl WorkloadDriver {
    /// Number of guest threads (each runs on its own vCPU).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        match self {
            WorkloadDriver::Threads(w) => w.threads(),
            WorkloadDriver::Mix(m) => m.apps(),
        }
    }

    /// Index of the guest address space thread `thread` runs in.
    /// Multithreaded applications share address space 0; mixes give every
    /// application its own.
    #[must_use]
    pub fn address_space_index(&self, thread: usize) -> usize {
        match self {
            WorkloadDriver::Threads(_) => 0,
            WorkloadDriver::Mix(_) => thread,
        }
    }

    /// Generates the next access of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn next_access(&mut self, thread: usize) -> Access {
        match self {
            WorkloadDriver::Threads(w) => w.next_access(thread),
            WorkloadDriver::Mix(m) => m.next_access(thread),
        }
    }

    /// A short human-readable description.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            WorkloadDriver::Threads(w) => {
                format!("{} ({} threads)", w.spec().kind.label(), w.threads())
            }
            WorkloadDriver::Mix(m) => format!("spec mix #{} ({} apps)", m.mix().index, m.apps()),
        }
    }
}

impl From<Workload> for WorkloadDriver {
    fn from(w: Workload) -> Self {
        WorkloadDriver::Threads(w)
    }
}

impl From<MixWorkload> for WorkloadDriver {
    fn from(m: MixWorkload) -> Self {
        WorkloadDriver::Mix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_workloads::{SpecMix, WorkloadKind};

    #[test]
    fn threads_share_one_address_space() {
        let wl = Workload::build(WorkloadKind::Canneal, 4, 1_024, 1);
        let driver = WorkloadDriver::from(wl);
        assert_eq!(driver.thread_count(), 4);
        assert_eq!(driver.address_space_index(0), 0);
        assert_eq!(driver.address_space_index(3), 0);
        assert!(driver.describe().contains("canneal"));
    }

    #[test]
    fn mixes_have_one_address_space_per_app() {
        let mix = SpecMix::generate(1, 2).remove(0);
        let driver = WorkloadDriver::from(MixWorkload::build(mix, 1_024, 3));
        assert_eq!(driver.thread_count(), 16);
        assert_eq!(driver.address_space_index(5), 5);
    }

    #[test]
    fn next_access_advances_streams_independently() {
        let wl = Workload::build(WorkloadKind::Facesim, 2, 1_024, 1);
        let mut driver = WorkloadDriver::from(wl);
        let a = driver.next_access(0);
        let b = driver.next_access(1);
        // Different threads have different private regions with very high
        // probability; at minimum the call must not panic.
        let _ = (a, b);
    }
}
