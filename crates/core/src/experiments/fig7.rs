//! Figure 7: HATRIC's benefit as a function of vCPU count.

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};
use crate::config::MemoryMode;

/// One (workload, vCPU count) group of bars, normalised to the no-hbm
/// runtime at the same vCPU count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Workload label.
    pub workload: String,
    /// Number of vCPUs.
    pub vcpus: usize,
    /// Software translation coherence (best paging policy).
    pub sw: f64,
    /// HATRIC.
    pub hatric: f64,
    /// Zero-overhead translation coherence.
    pub ideal: f64,
}

/// vCPU counts swept by the figure.
pub const VCPU_SWEEP: [usize; 3] = [4, 8, 16];

/// Runs the Fig. 7 experiment over the paper's full vCPU sweep.
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig7Row> {
    run_with_sweep(params, &VCPU_SWEEP)
}

/// Runs the Fig. 7 experiment over an explicit vCPU sweep (callers that
/// size runs down — smoke tests, the scenario registry — pass a subset of
/// [`VCPU_SWEEP`]).
#[must_use]
pub fn run_with_sweep(params: &ExperimentParams, sweep: &[usize]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for &kind in &WorkloadKind::big_memory_suite() {
        for &vcpus in sweep {
            let p = params.with_vcpus(vcpus);
            let baseline = execute(
                &RunSpec::new(kind, CoherenceMechanism::Software)
                    .with_memory_mode(MemoryMode::NoHbm),
                &p,
            );
            let sw = execute(&RunSpec::new(kind, CoherenceMechanism::Software), &p);
            let hatric = execute(&RunSpec::new(kind, CoherenceMechanism::Hatric), &p);
            let ideal = execute(&RunSpec::new(kind, CoherenceMechanism::Ideal), &p);
            rows.push(Fig7Row {
                workload: kind.label().to_string(),
                vcpus,
                sw: sw.runtime_vs(&baseline),
                hatric: hatric.runtime_vs(&baseline),
                ideal: ideal.runtime_vs(&baseline),
            });
        }
    }
    rows
}

/// Formats the rows as a text table.
#[must_use]
pub fn format_table(rows: &[Fig7Row]) -> String {
    let mut out = String::from(
        "Figure 7: runtime vs vCPU count, normalised to no-hbm (lower is better)\n\
         workload        vcpus      sw   hatric   ideal\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>5} {:>7.3} {:>8.3} {:>7.3}\n",
            r.workload, r.vcpus, r.sw, r.hatric, r.ideal
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_vcpu_counts() {
        assert_eq!(VCPU_SWEEP, [4, 8, 16]);
    }

    #[test]
    fn formatting_includes_counts() {
        let rows = vec![Fig7Row {
            workload: "facesim".into(),
            vcpus: 8,
            sw: 0.9,
            hatric: 0.7,
            ideal: 0.69,
        }];
        let table = format_table(&rows);
        assert!(table.contains("facesim"));
        assert!(table.contains(" 8 "));
    }
}
