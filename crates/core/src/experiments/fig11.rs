//! Figure 11: performance-energy trade-offs.  Left: HATRIC vs the software
//! baseline for every workload (including small-footprint ones).  Right:
//! co-tag width sweep (1, 2, 3 bytes).

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};

/// One point of the left-hand scatter: HATRIC's runtime and energy relative
/// to the best software-coherence configuration of the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Point {
    /// Workload label.
    pub workload: String,
    /// Runtime of HATRIC divided by runtime of the software baseline.
    pub runtime_ratio: f64,
    /// Energy of HATRIC divided by energy of the software baseline.
    pub energy_ratio: f64,
}

/// One row of the right-hand co-tag sweep (averaged over the big-memory
/// suite).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CotagRow {
    /// Co-tag width in bytes.
    pub cotag_bytes: u8,
    /// Mean runtime relative to the software baseline.
    pub runtime_ratio: f64,
    /// Mean energy relative to the software baseline.
    pub energy_ratio: f64,
}

/// The workloads plotted in the left-hand scatter: the big-memory suite plus
/// the small-footprint class that rarely pages.
#[must_use]
pub fn scatter_workloads() -> Vec<WorkloadKind> {
    let mut v = WorkloadKind::big_memory_suite().to_vec();
    v.push(WorkloadKind::SmallFootprint);
    v
}

/// Runs the left-hand scatter.
#[must_use]
pub fn run_scatter(params: &ExperimentParams) -> Vec<Fig11Point> {
    scatter_workloads()
        .into_iter()
        .map(|kind| {
            let sw = execute(&RunSpec::new(kind, CoherenceMechanism::Software), params);
            let hatric = execute(&RunSpec::new(kind, CoherenceMechanism::Hatric), params);
            Fig11Point {
                workload: kind.label().to_string(),
                runtime_ratio: hatric.runtime_vs(&sw),
                energy_ratio: hatric.energy_vs(&sw),
            }
        })
        .collect()
}

/// The co-tag widths swept by the right-hand plot.
pub const COTAG_SWEEP: [u8; 3] = [1, 2, 3];

/// Runs the right-hand co-tag sweep.
#[must_use]
pub fn run_cotag_sweep(params: &ExperimentParams) -> Vec<CotagRow> {
    COTAG_SWEEP
        .iter()
        .map(|&bytes| {
            let mut runtime = 0.0;
            let mut energy = 0.0;
            let suite = WorkloadKind::big_memory_suite();
            for &kind in &suite {
                let sw = execute(&RunSpec::new(kind, CoherenceMechanism::Software), params);
                let hatric = execute(
                    &RunSpec::new(kind, CoherenceMechanism::Hatric).with_cotag_bytes(bytes),
                    params,
                );
                runtime += hatric.runtime_vs(&sw);
                energy += hatric.energy_vs(&sw);
            }
            CotagRow {
                cotag_bytes: bytes,
                runtime_ratio: runtime / suite.len() as f64,
                energy_ratio: energy / suite.len() as f64,
            }
        })
        .collect()
}

/// Formats the scatter points.
#[must_use]
pub fn format_scatter(points: &[Fig11Point]) -> String {
    let mut out = String::from(
        "Figure 11 (left): HATRIC vs best software paging (ratios < 1 favour HATRIC)\n\
         workload          runtime  energy\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<17} {:>8.3} {:>7.3}\n",
            p.workload, p.runtime_ratio, p.energy_ratio
        ));
    }
    out
}

/// Formats the co-tag sweep.
#[must_use]
pub fn format_cotag(rows: &[CotagRow]) -> String {
    let mut out = String::from(
        "Figure 11 (right): co-tag size sweep (mean over big-memory suite)\n\
         co-tag  runtime  energy\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}B {:>8.3} {:>7.3}\n",
            r.cotag_bytes, r.runtime_ratio, r.energy_ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_includes_small_footprint_class() {
        let wl = scatter_workloads();
        assert!(wl.contains(&WorkloadKind::SmallFootprint));
        assert_eq!(wl.len(), 6);
    }

    #[test]
    fn cotag_sweep_is_1_2_3_bytes() {
        assert_eq!(COTAG_SWEEP, [1, 2, 3]);
    }

    #[test]
    fn formatting_outputs_ratios() {
        let table = format_cotag(&[CotagRow {
            cotag_bytes: 2,
            runtime_ratio: 0.81,
            energy_ratio: 0.93,
        }]);
        assert!(table.contains("2B"));
        assert!(table.contains("0.81"));
    }
}
