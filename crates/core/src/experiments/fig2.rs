//! Figure 2: the potential of hypervisor-managed die-stacked DRAM and how
//! much of it software translation coherence throws away.

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};
use crate::config::MemoryMode;

/// One workload's bars in Fig. 2, all normalised to the `no-hbm` runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Workload label.
    pub workload: String,
    /// Runtime with no die-stacked DRAM (the 1.0 baseline).
    pub no_hbm: f64,
    /// Runtime with infinite die-stacked DRAM (unachievable lower bound).
    pub inf_hbm: f64,
    /// Best paging policy with today's software translation coherence.
    pub curr_best: f64,
    /// Best paging policy with zero-overhead translation coherence.
    pub achievable: f64,
}

/// Runs the Fig. 2 experiment for every big-memory workload.
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig2Row> {
    WorkloadKind::big_memory_suite()
        .iter()
        .map(|&kind| {
            let baseline = execute(
                &RunSpec::new(kind, CoherenceMechanism::Software)
                    .with_memory_mode(MemoryMode::NoHbm),
                params,
            );
            let inf = execute(
                &RunSpec::new(kind, CoherenceMechanism::Software)
                    .with_memory_mode(MemoryMode::InfiniteHbm),
                params,
            );
            let curr = execute(&RunSpec::new(kind, CoherenceMechanism::Software), params);
            let achievable = execute(&RunSpec::new(kind, CoherenceMechanism::Ideal), params);
            Fig2Row {
                workload: kind.label().to_string(),
                no_hbm: 1.0,
                inf_hbm: inf.runtime_vs(&baseline),
                curr_best: curr.runtime_vs(&baseline),
                achievable: achievable.runtime_vs(&baseline),
            }
        })
        .collect()
}

/// Formats the rows as a text table matching the figure's series.
#[must_use]
pub fn format_table(rows: &[Fig2Row]) -> String {
    let mut out = String::from(
        "Figure 2: runtime normalised to no-hbm (lower is better)\n\
         workload        no-hbm  inf-hbm  curr-best  achievable\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>6.3} {:>8.3} {:>10.3} {:>11.3}\n",
            r.workload, r.no_hbm, r.inf_hbm, r.curr_best, r.achievable
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_mentions_every_workload() {
        let rows = vec![Fig2Row {
            workload: "canneal".into(),
            no_hbm: 1.0,
            inf_hbm: 0.6,
            curr_best: 0.9,
            achievable: 0.65,
        }];
        let table = format_table(&rows);
        assert!(table.contains("canneal"));
        assert!(table.contains("achievable"));
    }
}
