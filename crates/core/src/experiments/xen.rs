//! Section 6 "Xen results": HATRIC's benefit is not KVM-specific.

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::HypervisorKind;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};

/// One workload's Xen result: the percentage runtime improvement HATRIC
/// delivers over the best paging policy with Xen's software translation
/// coherence (the paper reports 21% for canneal and 33% for data caching).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XenRow {
    /// Workload label.
    pub workload: String,
    /// Runtime with Xen software coherence (normalised to itself = 1.0).
    pub sw_runtime: f64,
    /// Runtime with HATRIC, relative to the software run.
    pub hatric_runtime: f64,
    /// Improvement percentage (`(1 - hatric/sw) * 100`).
    pub improvement_percent: f64,
}

/// The workloads the paper evaluated on Xen.
#[must_use]
pub fn xen_workloads() -> [WorkloadKind; 2] {
    [WorkloadKind::Canneal, WorkloadKind::DataCaching]
}

/// Runs the Xen experiment (16 vCPUs).
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<XenRow> {
    xen_workloads()
        .iter()
        .map(|&kind| {
            let sw = execute(
                &RunSpec::new(kind, CoherenceMechanism::SoftwareXen)
                    .with_hypervisor(HypervisorKind::Xen),
                params,
            );
            let hatric = execute(
                &RunSpec::new(kind, CoherenceMechanism::Hatric)
                    .with_hypervisor(HypervisorKind::Xen),
                params,
            );
            let ratio = hatric.runtime_vs(&sw);
            XenRow {
                workload: kind.label().to_string(),
                sw_runtime: 1.0,
                hatric_runtime: ratio,
                improvement_percent: (1.0 - ratio) * 100.0,
            }
        })
        .collect()
}

/// Formats the rows as a text table.
#[must_use]
pub fn format_table(rows: &[XenRow]) -> String {
    let mut out = String::from(
        "Xen results (Sec. 6): HATRIC improvement over Xen software coherence\n\
         workload         hatric/sw  improvement\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>9.3} {:>11.1}%\n",
            r.workload, r.hatric_runtime, r.improvement_percent
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xen_workloads_match_the_paper() {
        let labels: Vec<_> = xen_workloads().iter().map(|w| w.label()).collect();
        assert_eq!(labels, vec!["canneal", "data caching"]);
    }

    #[test]
    fn formatting_reports_percentages() {
        let rows = vec![XenRow {
            workload: "canneal".into(),
            sw_runtime: 1.0,
            hatric_runtime: 0.79,
            improvement_percent: 21.0,
        }];
        assert!(format_table(&rows).contains("21.0%"));
    }
}
