//! Figure 12: coherence-directory design ablation — eager directory
//! updates, fine-grained tracking, unbounded directories, and all combined,
//! compared to baseline HATRIC.

use serde::{Deserialize, Serialize};

use hatric_coherence::{CoherenceMechanism, DesignVariant};
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};

/// One directory-design variant's mean runtime and energy, normalised to the
/// best software-coherence paging configuration (as in the paper's Fig. 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Variant label (as used in the figure).
    pub variant: String,
    /// Mean runtime ratio over the big-memory suite.
    pub runtime_ratio: f64,
    /// Mean energy ratio over the big-memory suite.
    pub energy_ratio: f64,
}

/// Runs the Fig. 12 ablation.
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig12Row> {
    let suite = WorkloadKind::big_memory_suite();
    // Software baselines are shared across variants.
    let baselines: Vec<_> = suite
        .iter()
        .map(|&kind| execute(&RunSpec::new(kind, CoherenceMechanism::Software), params))
        .collect();
    DesignVariant::all()
        .iter()
        .map(|&variant| {
            let mut runtime = 0.0;
            let mut energy = 0.0;
            for (i, &kind) in suite.iter().enumerate() {
                let report = execute(
                    &RunSpec::new(kind, CoherenceMechanism::Hatric).with_variant(variant),
                    params,
                );
                runtime += report.runtime_vs(&baselines[i]);
                energy += report.energy_vs(&baselines[i]);
            }
            Fig12Row {
                variant: variant.label().to_string(),
                runtime_ratio: runtime / suite.len() as f64,
                energy_ratio: energy / suite.len() as f64,
            }
        })
        .collect()
}

/// Formats the rows as a text table.
#[must_use]
pub fn format_table(rows: &[Fig12Row]) -> String {
    let mut out = String::from(
        "Figure 12: directory design ablation (normalised to best sw paging policy)\n\
         variant           runtime  energy\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<17} {:>8.3} {:>7.3}\n",
            r.variant, r.runtime_ratio, r.energy_ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_lists_variants() {
        let rows = vec![Fig12Row {
            variant: "EGR-dir-update".into(),
            runtime_ratio: 0.8,
            energy_ratio: 0.95,
        }];
        assert!(format_table(&rows).contains("EGR-dir-update"));
    }

    #[test]
    fn all_variants_have_labels() {
        for v in DesignVariant::all() {
            assert!(!v.label().is_empty());
        }
    }
}
