//! Shared machinery for the per-figure experiment runners.

use serde::{Deserialize, Serialize};

use hatric_coherence::{CoherenceMechanism, DesignVariant};
use hatric_hypervisor::HypervisorKind;
use hatric_workloads::{MixWorkload, SpecMix, Workload, WorkloadKind};

use crate::config::{MemoryMode, PagingKnobs, SystemConfig};
use crate::driver::WorkloadDriver;
use crate::metrics::SimReport;
use crate::system::System;

/// Sizing of an experiment run: how far the system is scaled down and how
/// long the traces are.  All figures use the same scaling so their results
/// are comparable; tests use [`ExperimentParams::quick`] and the benchmark
/// harness uses [`ExperimentParams::default_scale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// vCPUs of the VM (and physical CPUs of the machine).
    pub vcpus: usize,
    /// Die-stacked capacity in 4 KiB pages (off-chip is 4× this).
    pub fast_pages: u64,
    /// Unmeasured warmup accesses per thread.
    pub warmup: u64,
    /// Measured accesses per thread.
    pub measured: u64,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentParams {
    /// The sizing used by the benchmark harness: 16 vCPUs, an 8 MiB
    /// die-stacked device (1/256 of the paper's 2 GiB, with the LLC and
    /// workload footprints scaled identically), and traces long enough for
    /// steady-state paging.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            vcpus: 16,
            fast_pages: 2_048,
            warmup: 3_000,
            measured: 6_000,
            seed: crate::config::DEFAULT_SEED,
        }
    }

    /// A much smaller sizing for unit/integration tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            vcpus: 4,
            fast_pages: 256,
            warmup: 1_000,
            measured: 1_500,
            seed: 0x7e57,
        }
    }

    /// Returns a copy with a different vCPU count.
    #[must_use]
    pub fn with_vcpus(mut self, vcpus: usize) -> Self {
        self.vcpus = vcpus;
        self
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// Everything that varies between two runs of the same figure.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Workload under test.
    pub workload: WorkloadKind,
    /// Translation-coherence mechanism.
    pub mechanism: CoherenceMechanism,
    /// Memory mode (no-hbm / inf-hbm / paged).
    pub memory_mode: MemoryMode,
    /// Paging-policy knobs.
    pub paging: PagingKnobs,
    /// Translation-structure scale factor.
    pub structure_scale: usize,
    /// Co-tag width in bytes.
    pub cotag_bytes: u8,
    /// Directory design variant.
    pub variant: DesignVariant,
    /// Hypervisor flavour.
    pub hypervisor: HypervisorKind,
}

impl RunSpec {
    /// A paged-memory run of `workload` under `mechanism` with the paper's
    /// default knobs.
    #[must_use]
    pub fn new(workload: WorkloadKind, mechanism: CoherenceMechanism) -> Self {
        Self {
            workload,
            mechanism,
            memory_mode: MemoryMode::Paged,
            paging: PagingKnobs::best(),
            structure_scale: 1,
            cotag_bytes: 2,
            variant: DesignVariant::Baseline,
            hypervisor: HypervisorKind::Kvm,
        }
    }

    /// Returns a copy with the given memory mode.
    #[must_use]
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Returns a copy with the given paging knobs.
    #[must_use]
    pub fn with_paging(mut self, paging: PagingKnobs) -> Self {
        self.paging = paging;
        self
    }

    /// Returns a copy with the given structure scale.
    #[must_use]
    pub fn with_structure_scale(mut self, scale: usize) -> Self {
        self.structure_scale = scale;
        self
    }

    /// Returns a copy with the given co-tag width.
    #[must_use]
    pub fn with_cotag_bytes(mut self, bytes: u8) -> Self {
        self.cotag_bytes = bytes;
        self
    }

    /// Returns a copy with the given directory variant.
    #[must_use]
    pub fn with_variant(mut self, variant: DesignVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns a copy with the given hypervisor flavour.
    #[must_use]
    pub fn with_hypervisor(mut self, hypervisor: HypervisorKind) -> Self {
        self.hypervisor = hypervisor;
        self
    }

    fn config(&self, params: &ExperimentParams) -> SystemConfig {
        let mut cfg = SystemConfig::scaled(params.vcpus, params.fast_pages)
            .with_mechanism(self.mechanism)
            .with_memory_mode(self.memory_mode)
            .with_paging(self.paging)
            .with_structure_scale(self.structure_scale)
            .with_cotag_bytes(self.cotag_bytes)
            .with_variant(self.variant)
            .with_hypervisor(self.hypervisor);
        cfg.seed = params.seed;
        cfg
    }
}

/// Runs one workload/mechanism combination and returns its report.
///
/// # Panics
///
/// Panics if the derived configuration is invalid (it never is for the
/// built-in parameter sets).
#[must_use]
pub fn execute(spec: &RunSpec, params: &ExperimentParams) -> SimReport {
    let config = spec.config(params);
    let mut system = System::new(config).expect("experiment configurations are valid");
    let workload = Workload::build(spec.workload, params.vcpus, params.fast_pages, params.seed);
    let mut driver = WorkloadDriver::from(workload);
    system.run(&mut driver, params.warmup, params.measured)
}

/// Runs one workload/mechanism combination with sim-time tracing enabled
/// and returns the report alongside the Chrome trace-event JSON document.
///
/// # Panics
///
/// Panics if the derived configuration is invalid (it never is for the
/// built-in parameter sets).
#[must_use]
pub fn execute_traced(
    spec: &RunSpec,
    params: &ExperimentParams,
    trace_capacity: usize,
) -> (SimReport, String) {
    let config = spec.config(params);
    let mut system = System::new(config).expect("experiment configurations are valid");
    system.enable_tracing(trace_capacity);
    let workload = Workload::build(spec.workload, params.vcpus, params.fast_pages, params.seed);
    let mut driver = WorkloadDriver::from(workload);
    let report = system.run(&mut driver, params.warmup, params.measured);
    let trace = system.export_trace().expect("tracing was enabled above");
    (report, trace)
}

/// Runs one multiprogrammed mix (Fig. 10) and returns its report.
///
/// # Panics
///
/// Panics if the derived configuration is invalid.
#[must_use]
pub fn execute_mix(
    mix: &SpecMix,
    mechanism: CoherenceMechanism,
    memory_mode: MemoryMode,
    params: &ExperimentParams,
) -> SimReport {
    let vcpus = mix.apps.len();
    let mut cfg = SystemConfig::scaled(vcpus, params.fast_pages)
        .with_mechanism(mechanism)
        .with_memory_mode(memory_mode)
        .with_paging(PagingKnobs::best());
    cfg.seed = params.seed;
    let mut system = System::new(cfg).expect("experiment configurations are valid");
    let workload = MixWorkload::build(mix.clone(), params.fast_pages, params.seed);
    let mut driver = WorkloadDriver::from(workload);
    system.run(&mut driver, params.warmup, params.measured)
}

/// Formats a ratio as the paper's figures do (runtime normalised to a
/// baseline of 1.0).
#[must_use]
pub fn fmt_norm(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_params_are_smaller_than_default() {
        let quick = ExperimentParams::quick();
        let full = ExperimentParams::default_scale();
        assert!(quick.vcpus < full.vcpus);
        assert!(quick.fast_pages < full.fast_pages);
        assert!(quick.measured < full.measured);
    }

    #[test]
    fn runspec_builders_compose() {
        let spec = RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Hatric)
            .with_cotag_bytes(3)
            .with_structure_scale(2)
            .with_memory_mode(MemoryMode::NoHbm);
        assert_eq!(spec.cotag_bytes, 3);
        assert_eq!(spec.structure_scale, 2);
        assert_eq!(spec.memory_mode, MemoryMode::NoHbm);
        let cfg = spec.config(&ExperimentParams::quick());
        cfg.validate().unwrap();
    }
}
