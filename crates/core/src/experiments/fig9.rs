//! Figure 9: the impact of translation-structure sizes — software flushing
//! wastes larger TLBs/MMU caches/nTLBs, HATRIC exploits them.

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};
use crate::config::MemoryMode;

/// One (workload, size multiplier) group of bars, normalised to no-hbm with
/// default (1×) structures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Workload label.
    pub workload: String,
    /// Translation-structure size multiplier (1, 2 or 4).
    pub scale: usize,
    /// Software translation coherence.
    pub sw: f64,
    /// HATRIC.
    pub hatric: f64,
    /// Zero-overhead translation coherence.
    pub ideal: f64,
}

/// The size multipliers swept by the figure.
pub const SCALE_SWEEP: [usize; 3] = [1, 2, 4];

/// Runs the Fig. 9 experiment.
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for &kind in &WorkloadKind::big_memory_suite() {
        let baseline = execute(
            &RunSpec::new(kind, CoherenceMechanism::Software).with_memory_mode(MemoryMode::NoHbm),
            params,
        );
        for &scale in &SCALE_SWEEP {
            let sw = execute(
                &RunSpec::new(kind, CoherenceMechanism::Software).with_structure_scale(scale),
                params,
            );
            let hatric = execute(
                &RunSpec::new(kind, CoherenceMechanism::Hatric).with_structure_scale(scale),
                params,
            );
            let ideal = execute(
                &RunSpec::new(kind, CoherenceMechanism::Ideal).with_structure_scale(scale),
                params,
            );
            rows.push(Fig9Row {
                workload: kind.label().to_string(),
                scale,
                sw: sw.runtime_vs(&baseline),
                hatric: hatric.runtime_vs(&baseline),
                ideal: ideal.runtime_vs(&baseline),
            });
        }
    }
    rows
}

/// Formats the rows as a text table.
#[must_use]
pub fn format_table(rows: &[Fig9Row]) -> String {
    let mut out = String::from(
        "Figure 9: runtime vs translation-structure size, normalised to no-hbm\n\
         workload        size      sw   hatric   ideal\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>3}x {:>8.3} {:>8.3} {:>7.3}\n",
            r.workload, r.scale, r.sw, r.hatric, r.ideal
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_1_2_4() {
        assert_eq!(SCALE_SWEEP, [1, 2, 4]);
    }

    #[test]
    fn format_contains_scale() {
        let rows = vec![Fig9Row {
            workload: "graph500".into(),
            scale: 4,
            sw: 1.0,
            hatric: 0.8,
            ideal: 0.79,
        }];
        assert!(format_table(&rows).contains("4x"));
    }
}
