//! Figure 8: HATRIC's benefit as a function of the KVM paging policy.

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};
use crate::config::{MemoryMode, PagingKnobs};

/// One (workload, paging policy) group of bars, normalised to no-hbm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Workload label.
    pub workload: String,
    /// Paging-policy label (`lru`, `&mig-dmn`, `&pref.`).
    pub policy: String,
    /// Software translation coherence.
    pub sw: f64,
    /// HATRIC.
    pub hatric: f64,
    /// Zero-overhead translation coherence.
    pub ideal: f64,
}

/// The policy labels in the paper's presentation order.
#[must_use]
pub fn policy_labels() -> [&'static str; 3] {
    ["lru", "&mig-dmn", "&pref."]
}

/// Runs the Fig. 8 experiment (16 vCPUs).
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    let labels = policy_labels();
    for &kind in &WorkloadKind::big_memory_suite() {
        let baseline = execute(
            &RunSpec::new(kind, CoherenceMechanism::Software).with_memory_mode(MemoryMode::NoHbm),
            params,
        );
        for (i, knobs) in PagingKnobs::fig8_sweep().into_iter().enumerate() {
            let sw = execute(
                &RunSpec::new(kind, CoherenceMechanism::Software).with_paging(knobs),
                params,
            );
            let hatric = execute(
                &RunSpec::new(kind, CoherenceMechanism::Hatric).with_paging(knobs),
                params,
            );
            let ideal = execute(
                &RunSpec::new(kind, CoherenceMechanism::Ideal).with_paging(knobs),
                params,
            );
            rows.push(Fig8Row {
                workload: kind.label().to_string(),
                policy: labels[i].to_string(),
                sw: sw.runtime_vs(&baseline),
                hatric: hatric.runtime_vs(&baseline),
                ideal: ideal.runtime_vs(&baseline),
            });
        }
    }
    rows
}

/// Formats the rows as a text table.
#[must_use]
pub fn format_table(rows: &[Fig8Row]) -> String {
    let mut out = String::from(
        "Figure 8: runtime vs paging policy, normalised to no-hbm (lower is better)\n\
         workload        policy        sw   hatric   ideal\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:<10} {:>7.3} {:>8.3} {:>7.3}\n",
            r.workload, r.policy, r.sw, r.hatric, r.ideal
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_policies_match_paper_labels() {
        assert_eq!(policy_labels().len(), PagingKnobs::fig8_sweep().len());
    }

    #[test]
    fn formatting_lists_policy() {
        let rows = vec![Fig8Row {
            workload: "tunkrank".into(),
            policy: "&pref.".into(),
            sw: 1.0,
            hatric: 0.8,
            ideal: 0.78,
        }];
        assert!(format_table(&rows).contains("&pref."));
    }
}
