//! Figure 10: multiprogrammed SPEC mixes — software coherence's imprecise
//! targeting punishes applications that never touched the remapped pages;
//! HATRIC's precise targeting fixes both throughput and fairness.

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::SpecMix;

use super::common::{execute_mix, ExperimentParams};
use crate::config::MemoryMode;
use crate::metrics::SimReport;

/// Per-mix metrics: weighted (average) normalised runtime and the runtime of
/// the slowest application, for software coherence and for HATRIC, all
/// normalised per-application to the no-hbm run of the same mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Mix index.
    pub mix: usize,
    /// Weighted runtime with software coherence.
    pub weighted_sw: f64,
    /// Weighted runtime with HATRIC.
    pub weighted_hatric: f64,
    /// Slowest application's normalised runtime with software coherence.
    pub slowest_sw: f64,
    /// Slowest application's normalised runtime with HATRIC.
    pub slowest_hatric: f64,
}

fn per_app_ratios(report: &SimReport, baseline: &SimReport) -> Vec<f64> {
    baseline
        .cycles_per_cpu
        .iter()
        .zip(&report.cycles_per_cpu)
        .filter(|(base, _)| **base > 0)
        .map(|(base, run)| *run as f64 / *base as f64)
        .collect()
}

fn weighted(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

fn slowest(ratios: &[f64]) -> f64 {
    ratios.iter().cloned().fold(0.0, f64::max)
}

/// Runs the Fig. 10 experiment for `mix_count` mixes (the paper uses 80).
#[must_use]
pub fn run(params: &ExperimentParams, mix_count: usize) -> Vec<Fig10Row> {
    let mixes = SpecMix::generate(mix_count, params.seed);
    mixes
        .iter()
        .map(|mix| {
            let baseline =
                execute_mix(mix, CoherenceMechanism::Software, MemoryMode::NoHbm, params);
            let sw = execute_mix(mix, CoherenceMechanism::Software, MemoryMode::Paged, params);
            let hatric = execute_mix(mix, CoherenceMechanism::Hatric, MemoryMode::Paged, params);
            let sw_ratios = per_app_ratios(&sw, &baseline);
            let hatric_ratios = per_app_ratios(&hatric, &baseline);
            Fig10Row {
                mix: mix.index,
                weighted_sw: weighted(&sw_ratios),
                weighted_hatric: weighted(&hatric_ratios),
                slowest_sw: slowest(&sw_ratios),
                slowest_hatric: slowest(&hatric_ratios),
            }
        })
        .collect()
}

/// Summary statistics over all mixes (used by tests and the bench report).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Summary {
    /// Fraction of mixes whose weighted runtime regressed (>1.0) under
    /// software coherence.
    pub sw_regressing_fraction: f64,
    /// Fraction of mixes whose weighted runtime regressed under HATRIC.
    pub hatric_regressing_fraction: f64,
    /// Mean weighted runtime under software coherence.
    pub mean_weighted_sw: f64,
    /// Mean weighted runtime under HATRIC.
    pub mean_weighted_hatric: f64,
    /// Worst slowest-application runtime under software coherence.
    pub worst_slowest_sw: f64,
    /// Worst slowest-application runtime under HATRIC.
    pub worst_slowest_hatric: f64,
}

/// Computes the summary of a set of rows.
#[must_use]
pub fn summarise(rows: &[Fig10Row]) -> Fig10Summary {
    let n = rows.len().max(1) as f64;
    Fig10Summary {
        sw_regressing_fraction: rows.iter().filter(|r| r.weighted_sw > 1.0).count() as f64 / n,
        hatric_regressing_fraction: rows.iter().filter(|r| r.weighted_hatric > 1.0).count() as f64
            / n,
        mean_weighted_sw: rows.iter().map(|r| r.weighted_sw).sum::<f64>() / n,
        mean_weighted_hatric: rows.iter().map(|r| r.weighted_hatric).sum::<f64>() / n,
        worst_slowest_sw: rows.iter().map(|r| r.slowest_sw).fold(0.0, f64::max),
        worst_slowest_hatric: rows.iter().map(|r| r.slowest_hatric).fold(0.0, f64::max),
    }
}

/// Formats the rows (sorted by software weighted runtime, as the paper plots
/// them) plus the summary.
#[must_use]
pub fn format_table(rows: &[Fig10Row]) -> String {
    let mut sorted = rows.to_vec();
    sorted.sort_by(|a, b| {
        a.weighted_sw
            .partial_cmp(&b.weighted_sw)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = String::from(
        "Figure 10: multiprogrammed mixes, runtime normalised to no-hbm (per app)\n\
         mix   weighted-sw  weighted-hatric  slowest-sw  slowest-hatric\n",
    );
    for r in &sorted {
        out.push_str(&format!(
            "{:>4} {:>12.3} {:>16.3} {:>11.3} {:>15.3}\n",
            r.mix, r.weighted_sw, r.weighted_hatric, r.slowest_sw, r.slowest_hatric
        ));
    }
    let s = summarise(rows);
    out.push_str(&format!(
        "mixes regressing with sw: {:.0}%   with hatric: {:.0}%   worst slowdown sw: {:.2}x   hatric: {:.2}x\n",
        s.sw_regressing_fraction * 100.0,
        s.hatric_regressing_fraction * 100.0,
        s.worst_slowest_sw,
        s.worst_slowest_hatric
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mix: usize, sw: f64, hatric: f64) -> Fig10Row {
        Fig10Row {
            mix,
            weighted_sw: sw,
            weighted_hatric: hatric,
            slowest_sw: sw * 1.5,
            slowest_hatric: hatric * 1.1,
        }
    }

    #[test]
    fn summary_counts_regressions() {
        let rows = vec![row(0, 1.2, 0.8), row(1, 0.9, 0.7), row(2, 2.5, 0.9)];
        let s = summarise(&rows);
        assert!((s.sw_regressing_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.hatric_regressing_fraction, 0.0);
        assert!((s.worst_slowest_sw - 3.75).abs() < 1e-9);
    }

    #[test]
    fn format_sorts_by_sw_runtime() {
        let rows = vec![row(0, 2.0, 1.0), row(1, 0.5, 0.4)];
        let table = format_table(&rows);
        let pos1 = table.find("   1 ").unwrap();
        let pos0 = table.find("   0 ").unwrap();
        assert!(pos1 < pos0, "rows should be sorted ascending by sw runtime");
    }
}
