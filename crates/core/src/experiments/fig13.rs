//! Figure 13: HATRIC compared with UNITD++ (UNITD upgraded with
//! virtualization support and directory integration).

use serde::{Deserialize, Serialize};

use hatric_coherence::CoherenceMechanism;
use hatric_workloads::WorkloadKind;

use super::common::{execute, ExperimentParams, RunSpec};
use crate::config::MemoryMode;

/// One workload's bars: runtime and energy of the software baseline,
/// UNITD++ and HATRIC, normalised to the no-hbm runtime/energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Workload label.
    pub workload: String,
    /// Software coherence runtime.
    pub sw_runtime: f64,
    /// UNITD++ runtime.
    pub unitd_runtime: f64,
    /// HATRIC runtime.
    pub hatric_runtime: f64,
    /// Software coherence energy.
    pub sw_energy: f64,
    /// UNITD++ energy.
    pub unitd_energy: f64,
    /// HATRIC energy.
    pub hatric_energy: f64,
}

/// Runs the Fig. 13 comparison.
#[must_use]
pub fn run(params: &ExperimentParams) -> Vec<Fig13Row> {
    WorkloadKind::big_memory_suite()
        .iter()
        .map(|&kind| {
            let baseline = execute(
                &RunSpec::new(kind, CoherenceMechanism::Software)
                    .with_memory_mode(MemoryMode::NoHbm),
                params,
            );
            let sw = execute(&RunSpec::new(kind, CoherenceMechanism::Software), params);
            let unitd = execute(
                &RunSpec::new(kind, CoherenceMechanism::UnitdPlusPlus),
                params,
            );
            let hatric = execute(&RunSpec::new(kind, CoherenceMechanism::Hatric), params);
            Fig13Row {
                workload: kind.label().to_string(),
                sw_runtime: sw.runtime_vs(&baseline),
                unitd_runtime: unitd.runtime_vs(&baseline),
                hatric_runtime: hatric.runtime_vs(&baseline),
                sw_energy: sw.energy_vs(&baseline),
                unitd_energy: unitd.energy_vs(&baseline),
                hatric_energy: hatric.energy_vs(&baseline),
            }
        })
        .collect()
}

/// Formats the rows as a text table.
#[must_use]
pub fn format_table(rows: &[Fig13Row]) -> String {
    let mut out = String::from(
        "Figure 13: HATRIC vs UNITD++ (normalised to no-hbm)\n\
         workload        sw-rt  unitd-rt  hatric-rt   sw-en  unitd-en  hatric-en\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>6.3} {:>9.3} {:>10.3} {:>7.3} {:>9.3} {:>10.3}\n",
            r.workload,
            r.sw_runtime,
            r.unitd_runtime,
            r.hatric_runtime,
            r.sw_energy,
            r.unitd_energy,
            r.hatric_energy
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_contains_both_mechanisms() {
        let rows = vec![Fig13Row {
            workload: "canneal".into(),
            sw_runtime: 1.0,
            unitd_runtime: 0.85,
            hatric_runtime: 0.78,
            sw_energy: 1.0,
            unitd_energy: 0.97,
            hatric_energy: 0.92,
        }];
        let table = format_table(&rows);
        assert!(table.contains("unitd-rt"));
        assert!(table.contains("hatric-en"));
    }
}
