//! Experiment runners: one module per table/figure of the paper's
//! evaluation (Sec. 6), plus the Xen generality study.
//!
//! Every runner takes an [`ExperimentParams`] describing the (scaled-down)
//! machine and trace length, executes the required set of simulations, and
//! returns plain data rows that the benchmark harness (`hatric-bench`) and
//! the examples print as tables mirroring the paper's figures.
//!
//! | Paper figure | Runner |
//! |---|---|
//! | Fig. 2 (paging potential vs software coherence) | [`fig2::run`] |
//! | Fig. 7 (vCPU scaling) | [`fig7::run`] |
//! | Fig. 8 (paging-policy sweep) | [`fig8::run`] |
//! | Fig. 9 (translation-structure sizes) | [`fig9::run`] |
//! | Fig. 10 (multiprogrammed mixes) | [`fig10::run`] |
//! | Fig. 11 left (performance-energy scatter) | [`fig11::run_scatter`] |
//! | Fig. 11 right (co-tag size sweep) | [`fig11::run_cotag_sweep`] |
//! | Fig. 12 (directory-design ablation) | [`fig12::run`] |
//! | Fig. 13 (UNITD++ comparison) | [`fig13::run`] |
//! | Sec. 6 Xen results | [`xen::run`] |

pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod xen;

pub use common::{execute, execute_mix, execute_traced, ExperimentParams, RunSpec};
