//! # hatric
//!
//! A trace-driven simulator reproducing **"Hardware Translation Coherence
//! for Virtualized Systems"** (Yan, Cox, Veselý, Bhattacharjee — ISCA 2017,
//! arXiv:1701.07517).
//!
//! HATRIC eliminates the software TLB-shootdown path that virtualized
//! systems use when the hypervisor remaps pages (e.g. to manage die-stacked
//! DRAM): instead of IPIs, VM exits and full flushes of the TLBs, MMU
//! caches and nested TLBs, every translation-structure entry carries a
//! *co-tag* — a truncated system-physical address of the nested page-table
//! entry it came from — and the existing cache-coherence protocol forwards
//! invalidations for page-table cache lines to the translation structures,
//! which drop exactly the stale entries.
//!
//! This crate is the public API of the reproduction.  It wires the
//! substrate crates (page tables, translation structures, cache/directory
//! coherence, DRAM devices, hypervisor paging, coherence protocols, energy
//! model, workload generators) into a [`System`] that can be driven by
//! synthetic workloads, and provides an [`experiments`] module with one
//! runner per figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use hatric::{CoherenceMechanism, SystemConfig, System, WorkloadDriver};
//! use hatric_workloads::{Workload, WorkloadKind};
//!
//! # fn main() -> Result<(), hatric_types::SimError> {
//! // A small virtualized machine with die-stacked + off-chip DRAM.
//! let config = SystemConfig::scaled(4, 256).with_mechanism(CoherenceMechanism::Hatric);
//! let mut system = System::new(config.clone())?;
//!
//! // Run a canneal-like workload: 4 guest threads, footprint ~2x the
//! // die-stacked capacity, so the hypervisor pages continuously.
//! let workload = Workload::build(WorkloadKind::Canneal, 4, config.fast_capacity_pages(), 42);
//! let mut driver = WorkloadDriver::from(workload);
//! let report = system.run(&mut driver, 500, 500);
//!
//! assert!(report.runtime_cycles() > 0);
//! // HATRIC never sends IPIs or takes VM exits for translation coherence.
//! assert_eq!(report.coherence.ipis, 0);
//! assert_eq!(report.coherence.coherence_vm_exits, 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod driver;
pub mod engine;
pub mod engine_mp;
pub mod experiments;
pub mod metrics;
pub mod platform;
pub mod system;
pub mod vm_instance;

pub use config::{
    CoherenceMechanismExt, LatencyConfig, MemoryMode, PagingKnobs, SystemConfig, DEFAULT_SEED,
};
pub use driver::WorkloadDriver;
pub use engine::{run_slice_parallel, EngineBackend, EngineKind, EngineState, WorkerPool};
pub use engine_mp::MessageEngine;
pub use experiments::{ExperimentParams, RunSpec};
pub use metrics::{
    CoherenceActivity, FaultActivity, HostReport, InterferenceActivity, MigrationStats,
    NumaActivity, SimReport,
};
pub use platform::{Platform, WriteObserver};
pub use system::System;
pub use vm_instance::{VmInstance, VmPagingParams};

// Re-export the vocabulary users need to drive the simulator without
// importing every substrate crate explicitly.
pub use hatric_coherence::{CoherenceCosts, CoherenceMechanism, DesignVariant};
pub use hatric_hypervisor::{HypervisorKind, NumaPolicy, PagingPolicyKind};
pub use hatric_memory::{LinkConfig, MemoryKind, NumaConfig};
pub use hatric_telemetry as telemetry;
pub use hatric_tlb::StructureSizes;
pub use hatric_types::{CpuId, GuestFrame, GuestVirtPage, SocketId, SystemFrame, VcpuId, VmId};
pub use hatric_workloads::{SpecMix, Workload, WorkloadKind};
