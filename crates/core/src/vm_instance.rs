//! Per-VM translation state, extracted from the single-VM [`crate::System`]
//! so a consolidated host can run many VMs over one shared platform.
//!
//! A [`VmInstance`] owns everything that belongs to *one* virtual machine:
//! its guest page table, its nested page table, the hypervisor's paging
//! manager for its share of die-stacked DRAM, the vCPU placement bookkeeping
//! and the per-VM measurement counters (cycles per vCPU, coherence, paging
//! and interference activity).  Everything physically shared — caches, the
//! coherence directory, translation structures, DRAM devices, the energy
//! model — lives in [`crate::Platform`].

use hatric_hypervisor::{PagingConfig, PagingManager, VirtualMachine, VmConfig};
use hatric_memory::MemorySystem;
use hatric_pagetable::{GuestPageTable, NestedPageTable};
use hatric_telemetry::{CausalLedger, LatencyStats};
use hatric_types::{GuestFrame, SystemFrame, VcpuId, VmId};

use crate::metrics::{
    CoherenceActivity, FaultActivity, InterferenceActivity, NumaActivity, SimReport,
};

/// Guest-physical frame number where a guest page table's own nodes live
/// (far above any data frame the workloads touch).  Guest-physical space is
/// per-VM, so every VM uses the same constant.
pub const GUEST_PT_GPP_BASE: u64 = 1 << 30;

/// Offset (in frames) of the page-table *backing* region within a slot's
/// reserve, above the nested-page-table *node* region.  Slot 0 reproduces
/// the layout the single-VM simulator has always used.
const PT_BACKING_OFFSET: u64 = 1 << 24;

/// Spacing (in frames) between the hypervisor reserve regions of successive
/// VM slots: each VM's nested-page-table nodes and guest-page-table backing
/// frames live in a disjoint slice of system-physical space.  The stride
/// must leave room for both the node region (`0..PT_BACKING_OFFSET`) and
/// the backing region above it, or slot *s*'s backing frames would alias
/// slot *s+k*'s page-table nodes.
const RESERVE_STRIDE: u64 = 2 * PT_BACKING_OFFSET;

/// How a VM's die-stacked quota and paging policy are configured.
#[derive(Debug, Clone, Copy)]
pub struct VmPagingParams {
    /// Paging configuration handed to the [`PagingManager`].
    pub config: PagingConfig,
    /// Whether hypervisor paging is active for this VM at all.
    pub enabled: bool,
}

impl VmPagingParams {
    /// Builds the paging parameters for a VM given its policy knobs and its
    /// die-stacked quota (in 4 KiB pages).  Centralises the migration
    /// daemon's free-pool watermark so the single-VM system and the
    /// consolidated host cannot drift apart.
    #[must_use]
    pub fn for_quota(knobs: &crate::config::PagingKnobs, quota_pages: u64, enabled: bool) -> Self {
        Self {
            config: PagingConfig {
                policy: knobs.policy,
                fast_capacity_pages: quota_pages,
                migration_daemon: knobs.migration_daemon,
                daemon_free_target: (quota_pages / 256).max(2).min(quota_pages.max(1)),
                prefetch_pages: knobs.prefetch_pages,
            },
            enabled: enabled && quota_pages > 0,
        }
    }
}

/// One virtual machine's translation state and measurement counters.
#[derive(Debug)]
pub struct VmInstance {
    slot: usize,
    vm: VirtualMachine,
    guest_pt: GuestPageTable,
    nested_pt: NestedPageTable,
    paging: PagingManager,
    paging_enabled: bool,
    pt_backing_next: u64,
    // ----- measurement ------------------------------------------------------
    vcpu_cycles: Vec<u64>,
    accesses: u64,
    coherence: CoherenceActivity,
    faults: FaultActivity,
    interference: InterferenceActivity,
    numa: NumaActivity,
    latency: LatencyStats,
    causal: CausalLedger,
}

impl VmInstance {
    /// Creates a VM instance occupying host slot `slot`.
    ///
    /// `memory` is the *shared* memory system; it determines where this VM's
    /// hypervisor reserve region (nested-page-table nodes, guest-page-table
    /// backing frames) is placed so that slots never collide.
    #[must_use]
    pub fn new(
        slot: usize,
        vm_config: VmConfig,
        paging: VmPagingParams,
        memory: &MemorySystem,
    ) -> Self {
        let vm = VirtualMachine::new(vm_config);
        Self::with_vm(slot, vm, paging, memory)
    }

    /// Like [`VmInstance::new`] but with no vCPU placed anywhere yet — the
    /// starting state on a scheduled host, where the scheduler assigns CPUs
    /// slice by slice.
    #[must_use]
    pub fn unplaced(
        slot: usize,
        vm_config: VmConfig,
        paging: VmPagingParams,
        memory: &MemorySystem,
    ) -> Self {
        let vm = VirtualMachine::unplaced(vm_config);
        Self::with_vm(slot, vm, paging, memory)
    }

    fn with_vm(
        slot: usize,
        vm: VirtualMachine,
        paging: VmPagingParams,
        memory: &MemorySystem,
    ) -> Self {
        let reserve = memory.reserve_base().number() + slot as u64 * RESERVE_STRIDE;
        let vcpus = vm.vcpu_count();
        Self {
            slot,
            vm,
            guest_pt: GuestPageTable::new(GuestFrame::new(GUEST_PT_GPP_BASE)),
            nested_pt: NestedPageTable::new(SystemFrame::new(reserve)),
            paging: PagingManager::new(paging.config),
            paging_enabled: paging.enabled,
            pt_backing_next: reserve + PT_BACKING_OFFSET,
            vcpu_cycles: vec![0; vcpus],
            accesses: 0,
            coherence: CoherenceActivity::default(),
            faults: FaultActivity::default(),
            interference: InterferenceActivity::default(),
            numa: NumaActivity::default(),
            latency: LatencyStats::default(),
            causal: CausalLedger::default(),
        }
    }

    /// The host slot this VM occupies.
    #[must_use]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The VM's identifier.
    #[must_use]
    pub fn id(&self) -> VmId {
        self.vm.id()
    }

    /// vCPU placement bookkeeping.
    #[must_use]
    pub fn vm(&self) -> &VirtualMachine {
        &self.vm
    }

    /// Mutable vCPU placement bookkeeping (the scheduler places/deschedules
    /// vCPUs through this).
    pub fn vm_mut(&mut self) -> &mut VirtualMachine {
        &mut self.vm
    }

    /// The VM's guest page table.
    #[must_use]
    pub fn guest_page_table(&self) -> &GuestPageTable {
        &self.guest_pt
    }

    /// The VM's nested page table.
    #[must_use]
    pub fn nested_page_table(&self) -> &NestedPageTable {
        &self.nested_pt
    }

    /// The hypervisor paging manager for this VM's die-stacked quota.
    #[must_use]
    pub fn paging(&self) -> &PagingManager {
        &self.paging
    }

    /// Mutable access to the paging manager — for hypervisor-side drivers
    /// (balloon inflation/deflation) that adjust a VM's capacity or
    /// resident set outside the per-access pipeline.
    pub fn paging_manager_mut(&mut self) -> &mut PagingManager {
        &mut self.paging
    }

    /// Whether hypervisor paging is active for this VM.
    #[must_use]
    pub fn paging_enabled(&self) -> bool {
        self.paging_enabled
    }

    /// Cycles charged so far to each of this VM's vCPUs.
    #[must_use]
    pub fn vcpu_cycles(&self) -> &[u64] {
        &self.vcpu_cycles
    }

    /// Adds `cycles` to vCPU `vcpu`'s counter.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range.
    pub fn charge(&mut self, vcpu: VcpuId, cycles: u64) {
        self.vcpu_cycles[vcpu.index()] += cycles;
    }

    /// Clears the measurement counters (including the paging statistics)
    /// while keeping all architectural state (page tables, placement,
    /// resident set) intact.
    pub fn reset_measurements(&mut self) {
        for c in &mut self.vcpu_cycles {
            *c = 0;
        }
        self.accesses = 0;
        self.coherence = CoherenceActivity::default();
        self.faults = FaultActivity::default();
        self.interference = InterferenceActivity::default();
        self.numa = NumaActivity::default();
        self.latency = LatencyStats::default();
        self.causal.clear();
        self.paging.reset_stats();
    }

    /// Per-remap causal attribution for the remaps this VM initiated.
    #[must_use]
    pub fn causal(&self) -> &CausalLedger {
        &self.causal
    }

    /// Socket-locality counters accumulated so far (for inspection; the
    /// host's counter timelines sample the coherence-target counters
    /// between slices).
    #[must_use]
    pub fn numa(&self) -> &NumaActivity {
        &self.numa
    }

    /// This VM's view of the run: cycles per vCPU and the VM's own activity.
    /// Shared-platform statistics (caches, translation structures, energy)
    /// are reported at host level, not per VM.
    #[must_use]
    pub fn report(&self) -> SimReport {
        SimReport {
            cycles_per_cpu: self.vcpu_cycles.clone(),
            accesses: self.accesses,
            coherence: self.coherence,
            faults: self.faults,
            interference: self.interference,
            numa: self.numa,
            paging: self.paging.stats(),
            latency: self.latency,
            causal: self.causal.clone(),
            ..SimReport::default()
        }
    }

    // ----- crate-internal accessors used by the execution pipeline ----------

    pub(crate) fn guest_pt_mut(&mut self) -> &mut GuestPageTable {
        &mut self.guest_pt
    }

    pub(crate) fn nested_pt_mut(&mut self) -> &mut NestedPageTable {
        &mut self.nested_pt
    }

    pub(crate) fn paging_mut(&mut self) -> &mut PagingManager {
        &mut self.paging
    }

    pub(crate) fn coherence_mut(&mut self) -> &mut CoherenceActivity {
        &mut self.coherence
    }

    pub(crate) fn faults_mut(&mut self) -> &mut FaultActivity {
        &mut self.faults
    }

    pub(crate) fn interference_mut(&mut self) -> &mut InterferenceActivity {
        &mut self.interference
    }

    pub(crate) fn numa_mut(&mut self) -> &mut NumaActivity {
        &mut self.numa
    }

    pub(crate) fn latency_mut(&mut self) -> &mut LatencyStats {
        &mut self.latency
    }

    pub(crate) fn causal_mut(&mut self) -> &mut CausalLedger {
        &mut self.causal
    }

    pub(crate) fn bump_accesses(&mut self) {
        self.accesses += 1;
    }

    pub(crate) fn next_pt_backing_frame(&mut self) -> u64 {
        let frame = self.pt_backing_next;
        self.pt_backing_next += 1;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_hypervisor::PagingPolicyKind;
    use hatric_memory::MemorySystemConfig;
    use hatric_types::CpuId;

    fn memory() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::paper_default())
    }

    fn instance(slot: usize, mem: &MemorySystem) -> VmInstance {
        VmInstance::new(
            slot,
            VmConfig {
                vm: VmId::new(slot as u32),
                vcpus: 2,
                first_cpu: CpuId::new(0),
            },
            VmPagingParams {
                config: PagingConfig {
                    policy: PagingPolicyKind::ClockLru,
                    fast_capacity_pages: 64,
                    migration_daemon: false,
                    daemon_free_target: 0,
                    prefetch_pages: 0,
                },
                enabled: true,
            },
            mem,
        )
    }

    #[test]
    fn slots_get_disjoint_reserve_regions() {
        let mem = memory();
        let mut a = instance(0, &mem);
        let mut b = instance(1, &mem);
        let fa = a.next_pt_backing_frame();
        let fb = b.next_pt_backing_frame();
        assert_ne!(fa, fb);
        assert!(fb >= fa + RESERVE_STRIDE, "regions must not overlap");
    }

    #[test]
    fn backing_regions_never_alias_later_slots_node_regions() {
        // Slot s's backing frames start at reserve(s) + PT_BACKING_OFFSET;
        // slot s+k's nested-page-table nodes start at reserve(s+k).  With a
        // stride smaller than 2x the backing offset these aliased (slot 0's
        // backing == slot 4's nodes with the old 1<<22 stride), silently
        // sharing page-table frames across VMs on 5+-VM hosts.
        let mem = memory();
        let base = mem.reserve_base().number();
        for s in 0..16u64 {
            let backing_start = base + s * RESERVE_STRIDE + PT_BACKING_OFFSET;
            let backing_end = base + (s + 1) * RESERVE_STRIDE;
            for t in (s + 1)..16u64 {
                let node_start = base + t * RESERVE_STRIDE;
                assert!(
                    backing_end <= node_start || backing_start >= node_start + RESERVE_STRIDE,
                    "slot {s} backing region [{backing_start}, {backing_end}) overlaps slot {t} reserve"
                );
            }
        }
        const { assert!(RESERVE_STRIDE >= 2 * PT_BACKING_OFFSET) };
    }

    #[test]
    fn slot_zero_matches_the_historical_single_vm_layout() {
        let mem = memory();
        let mut vm = instance(0, &mem);
        assert_eq!(
            vm.next_pt_backing_frame(),
            mem.reserve_base().number() + PT_BACKING_OFFSET
        );
    }

    #[test]
    fn measurement_reset_keeps_architectural_state() {
        let mem = memory();
        let mut vm = instance(0, &mem);
        vm.charge(VcpuId::new(0), 100);
        vm.bump_accesses();
        let gvp = hatric_types::GuestVirtPage::new(7);
        vm.guest_pt_mut().map(gvp, GuestFrame::new(7));
        vm.reset_measurements();
        assert_eq!(vm.vcpu_cycles(), &[0, 0]);
        assert_eq!(vm.report().accesses, 0);
        assert!(vm.guest_page_table().translate(gvp).is_some());
    }
}
