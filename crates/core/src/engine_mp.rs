//! The message-passing slice engine: components as actors, effects as
//! timestamped messages.
//!
//! [`MessageEngine`] is the second implementation of the
//! [`EngineBackend`] contract.  Where the
//! phased engine of [`crate::engine`] commits every unit's effect log in
//! one barrier sweep, this engine models the commit as an actor system:
//!
//! * **per-VM unit actors** simulate their slice (reusing the phased
//!   engine's `simulate_phase`, so unit semantics are shared by
//!   construction) and then *post* each produced effect as a message;
//! * **LLC bank actors**, the **DRAM device actor** and the **serial
//!   committer actor** each own an inbox (the same `CommitScratch` queues
//!   the phased engine partitions into) and drain it when a barrier
//!   marker arrives.
//!
//! Messages travel through a deterministic *delayed delivery queue*: a
//! priority queue ordered by the key `(deliver_cycle, vm_slot, seq)`.
//! Each slice spans `TICKS_PER_SLICE` delivery cycles — tallies at tick
//! 0, effects at tick 1, the bank-flush marker at tick 2 and the commit
//! marker at tick 3 — so the queue's pop order *is* the phased engine's
//! canonical `(vm slot, emission order)` commit order, and the dispatcher
//! can assign global sequence numbers at delivery time.  Because the
//! message payloads are the existing `Effect` values and every payload
//! is consumed by the same `route_effect`/`replay_banks`/`serial_pass`
//! helpers the phased engine uses, the two backends can only differ in
//! orchestration, never in semantics — the `engine_conformance`
//! integration test asserts byte-identical reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use hatric_hypervisor::Placement;
use hatric_telemetry::{EnginePhase, PhaseTotals};

use crate::driver::WorkloadDriver;
use crate::engine::{
    apply_unit_tallies, group_units, refill_pools, replay_banks, route_effect, serial_pass,
    simulate_phase, CommitScratch, Effect, EngineBackend, EngineState,
};
use crate::platform::Platform;
use crate::vm_instance::VmInstance;

/// Delivery cycles one scheduler slice spans on the message interconnect.
const TICKS_PER_SLICE: u64 = 4;

/// Tick (within a slice) at which unit actors post their slice tallies.
const TICK_TALLY: u64 = 0;
/// Tick at which unit actors post their effect messages.
const TICK_EFFECTS: u64 = 1;
/// Tick of the bank-flush barrier marker.
const TICK_BANK_FLUSH: u64 = 2;
/// Tick of the serial-commit barrier marker.
const TICK_COMMIT: u64 = 3;

/// Delivery key of a message: `(deliver_cycle, vm_slot, seq)`, where `seq`
/// is the *sender-local* emission index — the dispatcher assigns global
/// sequence numbers at delivery time, in pop order.
type MsgKey = (u64, u32, u64);

/// One message on the interconnect.
#[derive(Debug)]
enum Message {
    /// A unit actor's slice summary (stat deltas, energy, trace spans);
    /// `unit` indexes the slice's effect logs.
    Tally { unit: usize },
    /// One shared-state effect, addressed by [`route_effect`] to the bank,
    /// device or committer actor that consumes it.
    Effect(Effect),
    /// Barrier marker: the bank and device actors drain their inboxes.
    BankFlush,
    /// Barrier marker: the serial committer drains its inbox.
    Commit,
}

/// A keyed message in flight.
#[derive(Debug)]
struct Envelope {
    key: MsgKey,
    msg: Message,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Envelope {}

impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The deterministic delayed delivery queue: a min-heap over
/// [`MsgKey`]s.  Every key posted within a slice is unique (ticks separate
/// message classes, slots separate units, sender-local indices separate a
/// unit's effects), so pop order is a total order independent of post
/// order — the property that makes delivery deterministic.
#[derive(Debug, Default)]
struct DelayedQueue {
    heap: BinaryHeap<Reverse<Envelope>>,
}

impl DelayedQueue {
    fn post(&mut self, deliver_cycle: u64, vm_slot: u32, seq: u64, msg: Message) {
        self.heap.push(Reverse(Envelope {
            key: (deliver_cycle, vm_slot, seq),
            msg,
        }));
    }

    fn pop(&mut self) -> Option<(MsgKey, Message)> {
        self.heap.pop().map(|Reverse(env)| (env.key, env.msg))
    }
}

/// The message-passing slice executor.
///
/// Wraps the same persistent component state as the phased engine (frame
/// pools, DRAM pending overlays, interleave cursors, the worker pool, the
/// component inboxes, recycled effect logs, the phase profiler) plus the
/// delayed delivery queue and the slice counter that advances the
/// interconnect clock.
#[derive(Debug)]
pub struct MessageEngine {
    state: EngineState,
    queue: DelayedQueue,
    /// Slices executed so far — `slices * TICKS_PER_SLICE` is the current
    /// slice's base delivery cycle, keeping keys strictly increasing
    /// across slices.
    slices: u64,
}

impl MessageEngine {
    /// A message-passing engine for a host with `num_vms` VM slots on
    /// `sockets` sockets.
    #[must_use]
    pub fn new(num_vms: usize, sockets: usize) -> Self {
        Self {
            state: EngineState::new(num_vms, sockets),
            queue: DelayedQueue::default(),
            slices: 0,
        }
    }
}

impl EngineBackend for MessageEngine {
    fn run_slice(
        &mut self,
        platform: &mut Platform,
        vms: &mut [VmInstance],
        drivers: &mut [WorkloadDriver],
        placements: &[Placement],
        slice_accesses: u64,
        threads: usize,
    ) {
        let units = group_units(placements);
        if units.is_empty() {
            return;
        }

        let refill_start = Instant::now();
        refill_pools(platform, vms, &units, &mut self.state, slice_accesses);
        self.state
            .profiler
            .record(EnginePhase::PoolRefill, refill_start.elapsed());
        if threads > 1 {
            self.state.ensure_pool(threads);
        }

        let simulate_start = Instant::now();
        let mut effects = simulate_phase(
            platform,
            vms,
            drivers,
            &units,
            slice_accesses,
            threads,
            &mut self.state,
        );
        self.state
            .profiler
            .record(EnginePhase::Simulate, simulate_start.elapsed());

        // Unit actors post their timestamped messages.  `simulate_phase`
        // returns the logs in ascending slot order, but delivery does not
        // depend on that: the queue orders by key alone.
        let base = self.slices * TICKS_PER_SLICE;
        for (u, unit) in effects.iter().enumerate() {
            let slot = unit.slot as u32;
            self.queue
                .post(base + TICK_TALLY, slot, 0, Message::Tally { unit: u });
            for (i, effect) in unit.effects.iter().enumerate() {
                self.queue.post(
                    base + TICK_EFFECTS,
                    slot,
                    i as u64,
                    Message::Effect(*effect),
                );
            }
        }
        self.queue.post(
            base + TICK_BANK_FLUSH,
            u32::MAX,
            u64::MAX,
            Message::BankFlush,
        );
        self.queue
            .post(base + TICK_COMMIT, u32::MAX, u64::MAX, Message::Commit);

        // The interconnect delivers; each actor consumes its messages.
        // Pop order is (tick, slot, emission index): tallies land in slot
        // order, then every effect in the canonical commit order — the
        // dispatcher assigns global seqs as they arrive — then the
        // barriers fire the shared replay and serial-commit helpers.
        self.state.commit.reset(platform.caches.bank_count());
        let MessageEngine { state, queue, .. } = self;
        let EngineState {
            pool,
            commit,
            effects_pool,
            profiler,
            ..
        } = state;
        let pool = pool.as_ref();
        let CommitScratch {
            bank_queues,
            mem_queue,
            serial_queue,
            seq_slots,
            privs,
        } = commit;
        let mut seq: u64 = 0;
        while let Some(((_, slot, _), msg)) = queue.pop() {
            match msg {
                Message::Tally { unit } => apply_unit_tallies(platform, &mut effects[unit]),
                Message::Effect(effect) => {
                    route_effect(
                        platform,
                        bank_queues,
                        mem_queue,
                        serial_queue,
                        seq,
                        slot as usize,
                        &effect,
                    );
                    seq_slots.push(slot);
                    seq += 1;
                }
                Message::BankFlush => replay_banks(
                    platform,
                    threads,
                    pool,
                    bank_queues,
                    mem_queue,
                    privs,
                    profiler,
                ),
                Message::Commit => {
                    serial_pass(platform, vms, privs, serial_queue, seq_slots, profiler);
                }
            }
        }
        profiler.record_slice();
        effects_pool.extend(effects);
        self.slices += 1;
    }

    fn phase_totals(&self) -> &PhaseTotals {
        self.state.profiler.totals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_queue_pops_in_key_order_regardless_of_post_order() {
        let mut queue = DelayedQueue::default();
        queue.post(1, 2, 0, Message::BankFlush);
        queue.post(0, 7, 3, Message::Commit);
        queue.post(1, 0, 5, Message::Tally { unit: 0 });
        queue.post(0, 7, 1, Message::Tally { unit: 1 });
        queue.post(2, 0, 0, Message::BankFlush);
        let keys: Vec<MsgKey> = std::iter::from_fn(|| queue.pop().map(|(key, _)| key)).collect();
        assert_eq!(
            keys,
            vec![(0, 7, 1), (0, 7, 3), (1, 0, 5), (1, 2, 0), (2, 0, 0)]
        );
    }

    #[test]
    fn slice_ticks_are_disjoint_across_slices() {
        // Tick layout: the commit marker of slice k precedes every message
        // of slice k + 1.
        let last_of_slice = |k: u64| k * TICKS_PER_SLICE + TICK_COMMIT;
        let first_of_slice = |k: u64| k * TICKS_PER_SLICE + TICK_TALLY;
        for k in 0..4 {
            assert!(last_of_slice(k) < first_of_slice(k + 1));
        }
    }
}
