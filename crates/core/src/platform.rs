//! The shared physical platform and the per-access execution pipeline.
//!
//! A [`Platform`] models everything the VMs of one host share: the MESI
//! cache hierarchy with its HATRIC-extended directory, the per-physical-CPU
//! translation structures (TLBs are VMID-tagged, so entries of co-scheduled
//! VMs coexist), the two DRAM devices, the translation-coherence protocol
//! and the energy model.  Per-VM state (page tables, paging manager,
//! measurement counters) lives in [`VmInstance`]; the pipeline methods take
//! the host's VM table plus the slot of the VM driving the access, so one
//! VM's remap can charge disruption to whichever VM currently occupies a
//! targeted CPU — the consolidation interference the paper motivates with.
//!
//! [`crate::System`] wraps a `Platform` with exactly one `VmInstance`; the
//! `hatric-host` crate schedules many over the same pipeline.

use hatric_cache::DirectoryConfig;
use hatric_cache::{
    AccessOutcome, CacheHierarchy, CacheHierarchyConfig, CacheStatsSnapshot, HitLevel,
    PrivateCacheConfig, PtKind, SharerSet,
};
use hatric_coherence::{
    CoherenceCosts, CoherenceMechanism, RemapContext, TargetAction, TranslationCoherence,
};
use hatric_energy::{EnergyEvent, EnergyModel, EnergyReport};
use hatric_hypervisor::NumaPolicy;
use hatric_memory::{MemoryKind, MemorySystem, NumaConfig};
use hatric_pagetable::TwoDimWalker;
use hatric_telemetry::{track, RemapId, TraceEvent, TraceSink};
use hatric_tlb::{TlbLevel, TranslationStatsSnapshot, TranslationStructures};
use hatric_types::{
    CacheLineAddr, CoTag, CpuId, GuestFrame, GuestVirtPage, Result, SocketId, SystemFrame,
    SystemPhysAddr, VcpuId,
};
use hatric_workloads::Access;

use crate::config::{CoherenceMechanismExt, LatencyConfig, SystemConfig};
use crate::vm_instance::{VmInstance, GUEST_PT_GPP_BASE};

/// Observes guest stores as the pipeline executes them.
///
/// The hook fires once per guest write access, *after* the written
/// guest-physical frame is known, with the host slot of the VM that issued
/// the store.  It models the dirty-page tracking hardware/hypervisor hooks
/// (EPT dirty bits, KVM's dirty ring) that live VM migration builds on:
/// the `hatric-migration` crate installs a [`WriteObserver`] to feed its
/// pre-copy dirty bitmap.  Observation is architectural bookkeeping and
/// charges no cycles.  Observers must be `Send`: the cluster tier moves
/// whole hosts (platform and observer included) across worker threads
/// between epochs.
pub trait WriteObserver: std::fmt::Debug + Send {
    /// Called for every guest write by VM `slot` to guest-physical frame
    /// `gpp`.
    fn on_guest_write(&mut self, slot: usize, gpp: GuestFrame);
}

/// The hardware every VM on the host shares, plus the execution pipeline.
///
/// Fields are `pub(crate)` so the parallel slice engine
/// ([`crate::engine`]) can split them into a frozen shared view plus
/// per-CPU exclusively-owned state for one slice.
#[derive(Debug)]
pub struct Platform {
    pub(crate) num_cpus: usize,
    pub(crate) latencies: LatencyConfig,
    pub(crate) costs: CoherenceCosts,
    pub(crate) cotag_bytes: u8,
    pub(crate) variant: hatric_coherence::DesignVariant,
    pub(crate) mechanism: CoherenceMechanism,
    pub(crate) numa: NumaConfig,
    pub(crate) numa_policy: NumaPolicy,
    /// Round-robin cursor of the [`NumaPolicy::Interleaved`] allocator.
    pub(crate) interleave_next: usize,
    pub(crate) memory: MemorySystem,
    pub(crate) caches: CacheHierarchy,
    pub(crate) structures: Vec<TranslationStructures>,
    pub(crate) protocol: Box<dyn TranslationCoherence>,
    pub(crate) energy: EnergyModel,
    /// Cycles consumed on each physical CPU (by any VM, plus hardware
    /// coherence work not attributable to a running vCPU).
    pub(crate) cycles: Vec<u64>,
    /// Which (VM slot, vCPU) currently occupies each physical CPU.
    pub(crate) occupancy: Vec<Option<(usize, VcpuId)>>,
    /// Dirty-page tracking hook (installed while a live migration runs).
    pub(crate) write_observer: Option<Box<dyn WriteObserver>>,
    /// Sim-time trace sink (installed only while `--trace` is active, so
    /// the recording paths cost one `Option` check when tracing is off).
    pub(crate) trace: Option<TraceSink>,
}

/// The trace-span name of a remap under `mechanism` (Chrome trace viewers
/// group and colour by name, so the mechanism is encoded there rather than
/// in an arg).
pub(crate) fn remap_span_name(mechanism: CoherenceMechanism) -> &'static str {
    match mechanism {
        CoherenceMechanism::Software => "remap_software",
        CoherenceMechanism::SoftwareXen => "remap_software_xen",
        CoherenceMechanism::UnitdPlusPlus => "remap_unitd",
        CoherenceMechanism::Hatric => "remap_hatric",
        CoherenceMechanism::Ideal => "remap_ideal",
    }
}

impl Platform {
    /// Builds the shared platform from a system configuration.  Only the
    /// platform-wide fields are read (`num_cpus`, memory, LLC, mechanism,
    /// directory variant, co-tag width, structure sizes, costs, latencies);
    /// the per-VM fields (`vcpus`, paging knobs) are configured on each
    /// [`VmInstance`] instead.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        config.validate()?;
        let memory = MemorySystem::new(config.effective_memory());
        let directory = if config.variant.unbounded_directory() {
            DirectoryConfig::unbounded()
        } else {
            DirectoryConfig {
                max_entries: ((config.llc_bytes / 64) as usize * 2).max(1024),
            }
        };
        let caches = CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: config.num_cpus,
            l1: PrivateCacheConfig::l1_default(),
            l2: PrivateCacheConfig::l2_default(),
            llc_bytes: config.llc_bytes,
            llc_ways: 16,
            directory,
            eager_pt_directory_update: config.variant.eager_directory_update(),
        });
        let sizes = config.structure_sizes.scaled(config.structure_scale);
        let structures = (0..config.num_cpus)
            .map(|_| TranslationStructures::new(&sizes, config.cotag_bytes))
            .collect();
        let protocol = config.mechanism.build(config.costs);
        let energy = EnergyModel::new(config.mechanism.energy_params(config.cotag_bytes));
        Ok(Self {
            num_cpus: config.num_cpus,
            latencies: config.latencies,
            costs: config.costs,
            cotag_bytes: config.cotag_bytes,
            variant: config.variant,
            mechanism: config.mechanism,
            numa: config.memory.numa,
            numa_policy: config.numa_policy,
            interleave_next: 0,
            memory,
            caches,
            structures,
            protocol,
            energy,
            cycles: vec![0; config.num_cpus],
            occupancy: vec![None; config.num_cpus],
            write_observer: None,
            trace: None,
        })
    }

    // ----- sim-time tracing -------------------------------------------------

    /// Installs a trace sink; subsequent remaps, shootdown targets and
    /// migration activity record sim-time spans into it.  Replaces any
    /// previous sink.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Removes the trace sink, returning it (tracing stops).
    pub fn take_trace_sink(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// The installed trace sink, if any.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Whether a trace sink is currently installed.  Callers that would
    /// allocate span arguments check this first so tracing is free when off.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Records one span if a sink is installed (drops it otherwise).
    pub fn trace_event(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(event);
        }
    }

    // ----- dirty-page tracking ----------------------------------------------

    /// Installs a write observer; subsequent guest writes report the written
    /// guest-physical frame to it.  Replaces any previous observer (at most
    /// one live migration tracks dirty pages at a time).
    pub fn set_write_observer(&mut self, observer: Box<dyn WriteObserver>) {
        self.write_observer = Some(observer);
    }

    /// Removes the write observer (dirty-page tracking stops).
    pub fn clear_write_observer(&mut self) {
        self.write_observer = None;
    }

    /// Whether a write observer is currently installed.
    #[must_use]
    pub fn has_write_observer(&self) -> bool {
        self.write_observer.is_some()
    }

    fn observe_write(&mut self, slot: usize, gpp: GuestFrame, is_write: bool) {
        if is_write {
            if let Some(observer) = self.write_observer.as_mut() {
                observer.on_guest_write(slot, gpp);
            }
        }
    }

    // ----- occupancy and inspection ----------------------------------------

    /// Number of physical CPUs.
    #[must_use]
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// Number of sockets.
    #[must_use]
    pub fn sockets(&self) -> usize {
        self.numa.sockets
    }

    /// The socket a physical CPU belongs to: CPUs are split into
    /// `sockets` contiguous equal blocks (validated at configuration time).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn socket_of_cpu(&self, cpu: CpuId) -> SocketId {
        assert!(cpu.index() < self.num_cpus, "cpu out of range");
        let cpus_per_socket = self.num_cpus / self.numa.sockets;
        SocketId::new((cpu.index() / cpus_per_socket) as u32)
    }

    /// The socket the hypervisor's placement policy prefers for a page
    /// faulted in from `cpu` (advancing the interleave cursor when the
    /// policy is [`NumaPolicy::Interleaved`]).
    fn preferred_socket(&mut self, cpu: CpuId) -> SocketId {
        match self.numa_policy {
            NumaPolicy::FirstTouch => self.socket_of_cpu(cpu),
            NumaPolicy::Interleaved => {
                let socket = self.interleave_next % self.numa.sockets;
                self.interleave_next += 1;
                SocketId::new(socket as u32)
            }
        }
    }

    /// Allocates a frame of `kind` on the policy-preferred socket for an
    /// access from `cpu`, recording a remote allocation on VM `slot` when
    /// the frame could not be placed where the access runs.
    fn allocate_for(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        kind: MemoryKind,
    ) -> Result<SystemFrame> {
        let preferred = self.preferred_socket(cpu);
        let frame = self.memory.allocate_on(kind, preferred)?;
        // A deliberate interleaved placement on another socket is not a
        // spill; only failing to get the *preferred* socket is.
        if self.memory.socket_of(frame) != preferred {
            vms[slot].numa_mut().remote_allocations += 1;
        }
        Ok(frame)
    }

    /// Declares which (VM slot, vCPU) currently executes on `cpu` (`None`
    /// when the CPU idles).  Schedulers call this every slice; coherence
    /// disruption is charged to the occupant at remap time.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn set_occupant(&mut self, cpu: CpuId, occupant: Option<(usize, VcpuId)>) {
        self.occupancy[cpu.index()] = occupant;
    }

    /// The (VM slot, vCPU) currently executing on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn occupant(&self, cpu: CpuId) -> Option<(usize, VcpuId)> {
        self.occupancy[cpu.index()]
    }

    /// Physical CPUs currently executing any guest (ascending order).
    #[must_use]
    pub fn occupied_cpus(&self) -> Vec<CpuId> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| CpuId::new(i as u32))
            .collect()
    }

    /// Per-physical-CPU cycle counters for the current measurement phase.
    #[must_use]
    pub fn cycles_per_cpu(&self) -> &[u64] {
        &self.cycles
    }

    /// The shared memory system.
    #[must_use]
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// The shared cache hierarchy.
    #[must_use]
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// Translation structures of one physical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn translation_structures(&self, cpu: CpuId) -> &TranslationStructures {
        &self.structures[cpu.index()]
    }

    /// Aggregate translation-structure statistics over all physical CPUs.
    #[must_use]
    pub fn translation_snapshot(&self) -> TranslationStatsSnapshot {
        let mut translation = TranslationStatsSnapshot::default();
        for s in &self.structures {
            let snap = s.stats();
            translation.l1_tlb.merge(snap.l1_tlb);
            translation.l2_tlb.merge(snap.l2_tlb);
            translation.mmu_cache.merge(snap.mmu_cache);
            translation.ntlb.merge(snap.ntlb);
        }
        translation
    }

    /// Cache-hierarchy statistics.
    #[must_use]
    pub fn cache_snapshot(&self) -> CacheStatsSnapshot {
        self.caches.stats()
    }

    /// Energy report over the current measurement phase.
    #[must_use]
    pub fn energy_report(&self) -> EnergyReport {
        self.energy.report(
            self.cycles.iter().copied().max().unwrap_or(0),
            self.num_cpus,
        )
    }

    /// Clears all platform measurement state (cycles, statistics, energy)
    /// while keeping architectural state (cache and TLB contents) intact.
    pub fn reset_measurements(&mut self) {
        for c in &mut self.cycles {
            *c = 0;
        }
        self.memory.reset_timing();
        self.caches.reset_stats();
        for s in &mut self.structures {
            s.reset_stats();
        }
        self.energy = EnergyModel::new(self.mechanism.energy_params(self.cotag_bytes));
        // Cycle counters restart at zero, so a trace spanning the boundary
        // would go backwards; a trace covers exactly one measurement phase.
        if let Some(sink) = self.trace.as_mut() {
            sink.clear();
        }
    }

    // ----- cycle attribution -----------------------------------------------

    /// Charges `cycles` to `cpu` and to the vCPU currently occupying it.
    fn charge_occupant(&mut self, vms: &mut [VmInstance], cpu: CpuId, cycles: u64) {
        self.cycles[cpu.index()] += cycles;
        if let Some((slot, vcpu)) = self.occupancy[cpu.index()] {
            vms[slot].charge(vcpu, cycles);
        }
    }

    /// Charges `cycles` to `cpu` only: hardware work (e.g. a co-tag match in
    /// the translation-structure port) that does not stall the running guest.
    fn charge_hardware(&mut self, cpu: CpuId, cycles: u64) {
        self.cycles[cpu.index()] += cycles;
    }

    /// Charges `cycles` of hypervisor work executing on `cpu` to that CPU
    /// and to whichever vCPU currently occupies it (migration threads,
    /// balloon workers).  The caller declares the occupant first via
    /// [`Platform::set_occupant`] so the stolen time lands on the right VM.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn charge_hypervisor_cycles(&mut self, vms: &mut [VmInstance], cpu: CpuId, cycles: u64) {
        self.charge_occupant(vms, cpu, cycles);
    }

    // ----- single-access pipeline ------------------------------------------

    /// Simulates one guest memory access by VM `slot` on physical CPU `cpu`.
    ///
    /// The caller must have declared the occupant of `cpu` (the issuing
    /// vCPU) via [`Platform::set_occupant`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `cpu` is out of range.
    pub fn step(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        asid: hatric_types::AddressSpaceId,
        access: Access,
    ) {
        vms[slot].bump_accesses();
        self.charge_occupant(vms, cpu, u64::from(access.compute_cycles));
        let vm_id = vms[slot].id();
        let gvp = access.gvp;

        self.energy.record(EnergyEvent::TlbLookup, 1);
        if let Some(hit) = self.structures[cpu.index()].lookup_data(vm_id, asid, gvp) {
            let extra = match hit.level {
                TlbLevel::L1 => 0,
                TlbLevel::L2 => self.latencies.l2_tlb_hit_extra,
            };
            let spp = hit.spp;
            self.charge_occupant(vms, cpu, extra);
            let needs_gpp =
                vms[slot].paging_enabled() || (access.is_write && self.write_observer.is_some());
            if needs_gpp {
                if let Some(gpp) = vms[slot].guest_page_table().translate(gvp) {
                    if vms[slot].paging_enabled() {
                        vms[slot].paging_mut().on_fast_access(gpp);
                    }
                    self.observe_write(slot, gpp, access.is_write);
                }
            }
            self.data_access(vms, slot, cpu, spp, access.line_in_page, access.is_write);
            return;
        }

        // TLB miss: make sure the page is mapped, resident where the
        // hypervisor wants it, then walk.
        self.energy.record(EnergyEvent::MmuCacheLookup, 1);
        self.energy.record(EnergyEvent::NtlbLookup, 1);
        let gpp = self.ensure_guest_mapping(vms, slot, cpu, gvp);
        self.ensure_nested_mapping(vms, slot, cpu, gpp);
        self.observe_write(slot, gpp, access.is_write);

        if vms[slot].paging_enabled() {
            if vms[slot].paging().is_resident(gpp) {
                vms[slot].paging_mut().on_fast_access(gpp);
            } else if self.current_kind(&vms[slot], gpp) == Some(MemoryKind::OffChip) {
                self.handle_demand_fault(vms, slot, cpu, gpp);
            }
        }

        let walk = match TwoDimWalker::walk(
            gvp,
            vms[slot].guest_page_table(),
            vms[slot].nested_page_table(),
        ) {
            Ok(walk) => walk,
            Err(_) => return,
        };
        let accessed_clear = vms[slot]
            .nested_pt_mut()
            .mark_used(gpp, access.is_write)
            .unwrap_or(false);
        if accessed_clear {
            // The walker informs the directory that this line now feeds
            // translation structures (Sec. 4.2).
            self.caches
                .mark_pt_line(walk.nested_leaf_pte_addr().cache_line(), PtKind::Nested);
            self.caches
                .mark_pt_line(walk.guest_leaf_pte_addr().cache_line(), PtKind::Guest);
            self.energy.record(EnergyEvent::DirectoryAccess, 1);
        }
        let assist = self.structures[cpu.index()].service_miss(vm_id, asid, &walk, accessed_clear);
        self.energy
            .record(EnergyEvent::PageWalkStep, assist.refs.len() as u64);
        let walk_start = self.cycles[cpu.index()];
        let refs = assist.refs;
        for addr in refs {
            let outcome = self.caches.read(cpu, addr.cache_line());
            self.charge_read(vms, slot, cpu, addr, &outcome);
        }
        vms[slot]
            .latency_mut()
            .walk
            .record(self.cycles[cpu.index()] - walk_start);

        self.data_access(
            vms,
            slot,
            cpu,
            walk.spp,
            access.line_in_page,
            access.is_write,
        );
    }

    fn data_access(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        spp: SystemFrame,
        line_in_page: u8,
        is_write: bool,
    ) {
        let addr = spp.addr_at(u64::from(line_in_page) * 64);
        let line = addr.cache_line();
        if is_write {
            let outcome = self.caches.write(cpu, line);
            self.charge_read(vms, slot, cpu, addr, &outcome.access);
            self.energy.record(
                EnergyEvent::CoherenceMessage,
                u64::from(outcome.invalidated_sharers.count()),
            );
            // Ordinary data writes never hit page-table lines (workload data
            // regions and page-table frames are disjoint), so no translation
            // coherence is needed here.
        } else {
            let outcome = self.caches.read(cpu, line);
            self.charge_read(vms, slot, cpu, addr, &outcome);
        }
    }

    fn charge_read(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        addr: SystemPhysAddr,
        outcome: &AccessOutcome,
    ) {
        let lat = &self.latencies;
        let cycles = match outcome.level {
            HitLevel::L1 => {
                self.energy.record(EnergyEvent::L1Access, 1);
                lat.l1_hit
            }
            HitLevel::L2 => {
                self.energy.record(EnergyEvent::L2Access, 1);
                lat.l2_hit
            }
            HitLevel::Llc => {
                self.energy.record(EnergyEvent::LlcAccess, 1);
                self.energy.record(EnergyEvent::DirectoryAccess, 1);
                lat.llc_hit
            }
            HitLevel::Memory => {
                self.energy.record(EnergyEvent::LlcAccess, 1);
                self.energy.record(EnergyEvent::DirectoryAccess, 1);
                let frame = addr.frame(hatric_types::PageSize::Base);
                let kind = self.memory.kind_of(frame);
                self.energy.record(
                    match kind {
                        MemoryKind::DieStacked => EnergyEvent::DramAccessFast,
                        MemoryKind::OffChip => EnergyEvent::DramAccessSlow,
                    },
                    1,
                );
                let cpu_socket = self.socket_of_cpu(cpu);
                let numa = vms[slot].numa_mut();
                if self.memory.is_remote(frame, cpu_socket) {
                    numa.remote_dram_accesses += 1;
                } else {
                    numa.local_dram_accesses += 1;
                }
                let now = self.cycles[cpu.index()];
                let cost = self.memory.access_detail(frame, slot, cpu_socket, now);
                vms[slot].latency_mut().dram_queue.record(cost.queueing);
                lat.llc_hit + cost.total
            }
        };
        self.charge_occupant(vms, cpu, cycles);
        self.handle_back_invalidations(vms, slot, &outcome.back_invalidated);
    }

    // ----- mapping management ----------------------------------------------

    /// Data pages use an identity GVP→GPP layout (each guest address space
    /// occupies a disjoint slice of guest-virtual space, so identity is
    /// collision-free).
    fn ensure_guest_mapping(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        gvp: GuestVirtPage,
    ) -> GuestFrame {
        if let Some(gpp) = vms[slot].guest_page_table().translate(gvp) {
            return gpp;
        }
        let gpp = GuestFrame::new(gvp.number());
        let outcome = vms[slot].guest_pt_mut().map(gvp, gpp);
        // Give every new guest page-table node a nested mapping in the
        // hypervisor's page-table reserve region.
        let mut nodes = outcome.allocated_nodes;
        if vms[slot]
            .nested_page_table()
            .translate(GuestFrame::new(GUEST_PT_GPP_BASE))
            .is_none()
        {
            nodes.push(GuestFrame::new(GUEST_PT_GPP_BASE));
        }
        for node in nodes {
            if vms[slot].nested_page_table().translate(node).is_none() {
                let backing = SystemFrame::new(vms[slot].next_pt_backing_frame());
                vms[slot].nested_pt_mut().map(node, backing);
            }
        }
        vms[slot].faults_mut().first_touch_faults += 1;
        self.charge_occupant(vms, cpu, self.latencies.first_touch_cycles);
        gpp
    }

    fn ensure_nested_mapping(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        gpp: GuestFrame,
    ) {
        if vms[slot].nested_page_table().translate(gpp).is_some() {
            return;
        }
        // First touch of a brand-new page: no stale translations exist, so no
        // translation coherence is needed.  The hypervisor backs the page
        // with die-stacked memory while there is room (first-touch placement)
        // and with off-chip memory once the fast device is full — from then
        // on pages only enter die-stacked memory through the demand-migration
        // path, which is what triggers translation coherence.  The socket is
        // picked by the NUMA placement policy (local to the faulting CPU, or
        // interleaved).
        let spp = if vms[slot].paging_enabled() && vms[slot].paging().free_pages() > 0 {
            match self.allocate_for(vms, slot, cpu, MemoryKind::DieStacked) {
                Ok(f) => {
                    vms[slot].paging_mut().commit_promotion(gpp);
                    f
                }
                Err(_) => self
                    .allocate_for(vms, slot, cpu, MemoryKind::OffChip)
                    .unwrap_or_else(|_| SystemFrame::new(vms[slot].next_pt_backing_frame())),
            }
        } else {
            self.allocate_for(vms, slot, cpu, MemoryKind::OffChip)
                .unwrap_or_else(|_| SystemFrame::new(vms[slot].next_pt_backing_frame()))
        };
        vms[slot].nested_pt_mut().map(gpp, spp);
        self.charge_occupant(vms, cpu, self.latencies.first_touch_cycles);
    }

    fn current_kind(&self, vm: &VmInstance, gpp: GuestFrame) -> Option<MemoryKind> {
        vm.nested_page_table()
            .translate(gpp)
            .map(|spp| self.memory.kind_of(spp))
    }

    // ----- demand paging ----------------------------------------------------

    fn handle_demand_fault(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        cpu: CpuId,
        gpp: GuestFrame,
    ) {
        // The faulting access takes an EPT-violation VM exit regardless of
        // the translation-coherence mechanism.
        vms[slot].faults_mut().demand_faults += 1;
        self.charge_occupant(vms, cpu, self.costs.vm_exit_cycles);
        self.energy.record(EnergyEvent::VmExit, 1);

        let decision = vms[slot].paging_mut().on_slow_access(gpp);
        for &victim in &decision.evictions {
            self.migrate(vms, slot, cpu, victim, MemoryKind::OffChip, false);
        }
        if vms[slot].paging().daemon_should_run() {
            for victim in vms[slot].paging_mut().run_daemon() {
                self.migrate(vms, slot, cpu, victim, MemoryKind::OffChip, false);
            }
        }
        for (i, promo) in decision.promotions.iter().enumerate() {
            if vms[slot].nested_page_table().translate(*promo).is_none() {
                // Prefetch candidate that the guest has never touched: skip.
                continue;
            }
            if self.current_kind(&vms[slot], *promo) == Some(MemoryKind::OffChip) {
                let on_critical_path = i == 0;
                if self.migrate(
                    vms,
                    slot,
                    cpu,
                    *promo,
                    MemoryKind::DieStacked,
                    on_critical_path,
                ) {
                    vms[slot].paging_mut().commit_promotion(*promo);
                }
            } else {
                vms[slot].paging_mut().commit_promotion(*promo);
            }
        }
    }

    /// Moves `gpp` of VM `slot` to the `to` device.  Returns `true` if a
    /// migration actually happened.
    fn migrate(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        initiator: CpuId,
        gpp: GuestFrame,
        to: MemoryKind,
        critical: bool,
    ) -> bool {
        let Some(old_spp) = vms[slot].nested_page_table().translate(gpp) else {
            return false;
        };
        if self.memory.kind_of(old_spp) == to {
            return false;
        }
        let Ok(new_spp) = self.allocate_for(vms, slot, initiator, to) else {
            return false;
        };
        let now = self.cycles[initiator.index()];
        let copy = self.memory.page_copy_cycles(old_spp, new_spp, slot, now);
        if critical {
            self.charge_occupant(vms, initiator, copy);
        }
        self.energy.record(EnergyEvent::PageCopy, 1);
        self.memory.free(old_spp);
        let pte_addr = vms[slot]
            .nested_pt_mut()
            .remap(gpp, new_spp)
            .expect("translate() above guarantees the mapping exists");
        match to {
            MemoryKind::DieStacked => vms[slot].faults_mut().pages_promoted += 1,
            MemoryKind::OffChip => vms[slot].faults_mut().pages_demoted += 1,
        }
        self.remap_coherence(vms, slot, initiator, pte_addr);
        true
    }

    /// Evicts VM `slot`'s guest-physical page `gpp` from die-stacked to
    /// off-chip memory off the critical path (balloon reclaim, forced
    /// demotions), with the page copy, the nested-page-table remap and the
    /// resulting translation coherence.  Returns `true` if the page moved.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `initiator` is out of range.
    pub fn demote_to_slow(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        initiator: CpuId,
        gpp: GuestFrame,
    ) -> bool {
        self.migrate(vms, slot, initiator, gpp, MemoryKind::OffChip, false)
    }

    /// Performs a hypervisor store to VM `slot`'s nested leaf entry for
    /// `gpp` *without* changing the translation — a permission change such
    /// as the write-protect live migration uses for dirty tracking, or the
    /// final ownership hand-off of stop-and-copy.  Stale translations must
    /// still be invalidated, so the store triggers the full
    /// translation-coherence machinery.  Returns `false` if `gpp` has no
    /// nested mapping.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `initiator` is out of range.
    pub fn hypervisor_pte_write(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        initiator: CpuId,
        gpp: GuestFrame,
    ) -> bool {
        let Some(pte_addr) = vms[slot].nested_page_table().leaf_entry_addr(gpp) else {
            return false;
        };
        self.remap_coherence(vms, slot, initiator, pte_addr);
        true
    }

    /// Materializes an inter-host migration page arriving for VM `slot`:
    /// allocates backing for `gpp` if the destination has none yet (the
    /// first-touch placement path, charging the fault cost to the occupant
    /// of `initiator`), then performs the hypervisor's store to the nested
    /// leaf entry with its full translation-coherence bill.  Unlike the
    /// guest-driven first touch, the store always pays coherence: the
    /// destination's CPUs may already cache translations for the page (the
    /// post-copy guest runs ahead of the copy stream), and the hypervisor
    /// cannot know which — this is the destination-side remap storm.
    /// Returns `false` only if the leaf entry could not be resolved.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `initiator` is out of range.
    pub fn hypervisor_map_page(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        initiator: CpuId,
        gpp: GuestFrame,
    ) -> bool {
        if vms[slot].nested_page_table().translate(gpp).is_none() {
            self.ensure_nested_mapping(vms, slot, initiator, gpp);
        }
        self.hypervisor_pte_write(vms, slot, initiator, gpp)
    }

    /// Tears down VM `slot`'s nested mapping for `gpp` — the rollback of an
    /// aborted migration's first-touch remap.  The hypervisor's store to the
    /// leaf entry pays the full translation-coherence bill *first* (stale
    /// translations for the dying mapping must be invalidated before the
    /// frame can be reused), then the entry is cleared, the backing frame is
    /// returned to its allocator, and the paging policy forgets the page if
    /// it was counted resident in fast memory.  Frames in the page-table
    /// reserve region are never freed: they back page-table nodes, not data.
    /// Returns `false` (charging nothing) if `gpp` has no nested mapping.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `initiator` is out of range.
    pub fn hypervisor_unmap_page(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        initiator: CpuId,
        gpp: GuestFrame,
    ) -> bool {
        let Some(pte_addr) = vms[slot].nested_page_table().leaf_entry_addr(gpp) else {
            return false;
        };
        self.remap_coherence(vms, slot, initiator, pte_addr);
        let Some(spp) = vms[slot].nested_pt_mut().unmap(gpp) else {
            return false;
        };
        if spp.number() < self.memory.reserve_base().number() {
            self.memory.free(spp);
        }
        if vms[slot].paging_enabled() {
            vms[slot].paging_mut().forget(gpp);
        }
        true
    }

    /// Applies (or, with `100`, lifts) a DRAM brownout: every memory device
    /// on this host serves lines `multiplier_x100/100` times slower.  The
    /// multiplier lives in device state, so both the serial access path and
    /// the parallel engine's plan/commit path observe identical degraded
    /// timing.
    pub fn set_dram_brownout(&mut self, multiplier_x100: u64) {
        self.memory
            .set_dram_service_multiplier_x100(multiplier_x100);
    }

    // ----- translation coherence -------------------------------------------

    /// Socket distance makes coherence asymmetric: a software shootdown
    /// whose IPI and acknowledgement cross the inter-socket link costs the
    /// target far more than a local one, while a hardware co-tag message
    /// pays only a small interconnect-hop premium.  Returns
    /// `(cross_socket, extra_cycles)` for one remap target.
    fn remap_distance_extra(
        &self,
        initiator_socket: SocketId,
        target_cpu: CpuId,
        disruptive: bool,
        does_work: bool,
    ) -> (bool, u64) {
        let cross_socket = does_work && self.socket_of_cpu(target_cpu) != initiator_socket;
        let extra = match (cross_socket, disruptive) {
            (false, _) => 0,
            (true, true) => self.numa.remote_shootdown_extra_cycles,
            (true, false) => self.numa.remote_hw_message_extra_cycles,
        };
        (cross_socket, extra)
    }

    /// Performs the hypervisor's store to a nested page-table entry of VM
    /// `slot` and the resulting translation-coherence activity.
    ///
    /// Software shootdowns target every physical CPU the remapping VM has
    /// ever run on; whoever occupies those CPUs *now* eats the VM exit and
    /// the flush, and if that occupant belongs to a different VM the stolen
    /// cycles are recorded as cross-VM interference.  Hardware mechanisms
    /// touch only the directory's sharer list, without disrupting occupants.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `initiator` is out of range.
    pub fn remap_coherence(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        initiator: CpuId,
        pte_addr: SystemPhysAddr,
    ) {
        let remap_id = {
            let coherence = vms[slot].coherence_mut();
            coherence.remaps += 1;
            RemapId::new(slot as u32, coherence.remaps)
        };
        let span_start = self.cycles[initiator.index()];
        let line = pte_addr.cache_line();
        let write = self.caches.write(initiator, line);
        self.charge_read(vms, slot, initiator, pte_addr, &write.access);
        self.energy.record(
            EnergyEvent::CoherenceMessage,
            u64::from(write.invalidated_sharers.count()),
        );

        // The initiator's own translation structures snoop the store locally
        // (the directory's sharer list excludes the writer), so it is always
        // part of the hardware-coherence target set.
        let mut sharers = write.invalidated_sharers;
        sharers.add(initiator);
        let running_guest = self.occupied_cpus();
        let ctx = RemapContext {
            initiator,
            vm: vms[slot].id(),
            vm_cpus: vms[slot].vm().cpus_ever_used().to_vec(),
            running_guest,
            sharers,
        };
        let plan = self.protocol.plan_remap(&ctx);
        // Invariant, not a runtime branch: today every planner copies
        // ctx.vm verbatim, but plans may some day be queued/batched and
        // replayed, and this is the seam where a wrong-tenant replay would
        // be caught.  Debug-only to keep it off the remap hot path.
        debug_assert_eq!(
            plan.vm,
            vms[slot].id(),
            "coherence plan must be executed on behalf of the VM that remapped"
        );
        self.charge_occupant(vms, initiator, plan.initiator_cycles);
        vms[slot].coherence_mut().ipis += plan.ipis_sent;
        vms[slot].coherence_mut().hw_messages += plan.hw_messages;
        self.energy.record(EnergyEvent::Ipi, plan.ipis_sent);
        self.energy
            .record(EnergyEvent::CoherenceMessage, plan.hw_messages);

        let cotag = CoTag::from_pte_addr(pte_addr, self.cotag_bytes);
        let initiator_socket = self.socket_of_cpu(initiator);
        // Completion latency = initiator cycles plus the slowest target's
        // invalidation (the window the remap is in flight).  Computed over
        // the plan before the charging loop so the remap span can precede
        // its per-target acks in the sink (trace order stays monotone per
        // track).
        let slowest_target = plan
            .targets
            .iter()
            .map(|t| {
                let disruptive = t.vm_exit || t.action == TargetAction::FlushAll;
                let does_work = disruptive || t.action != TargetAction::None;
                t.target_cycles
                    + self
                        .remap_distance_extra(initiator_socket, t.cpu, disruptive, does_work)
                        .1
            })
            .max()
            .unwrap_or(0);
        vms[slot]
            .latency_mut()
            .shootdown
            .record(plan.initiator_cycles + slowest_target);
        if self.trace.is_some() {
            let dur = (self.cycles[initiator.index()] - span_start) + slowest_target;
            self.trace_event(TraceEvent {
                name: remap_span_name(self.mechanism),
                cat: "coherence",
                track: track::cpu(initiator.index()),
                ts: span_start,
                dur,
                args: vec![
                    ("targets", plan.targets.len() as u64),
                    ("ipis", plan.ipis_sent),
                    ("hw_messages", plan.hw_messages),
                ],
            });
        }
        for target in &plan.targets {
            let disruptive = target.vm_exit || target.action == TargetAction::FlushAll;
            let does_work = disruptive || target.action != TargetAction::None;
            let (cross_socket, distance_extra) =
                self.remap_distance_extra(initiator_socket, target.cpu, disruptive, does_work);
            let target_cycles = target.target_cycles + distance_extra;
            if self.trace.is_some() && does_work {
                self.trace_event(TraceEvent {
                    name: "inval_target",
                    cat: "coherence",
                    track: track::cpu(target.cpu.index()),
                    ts: self.cycles[target.cpu.index()],
                    dur: target_cycles,
                    args: vec![("vm_exit", u64::from(target.vm_exit))],
                });
            }
            if does_work {
                let numa = vms[slot].numa_mut();
                if cross_socket {
                    numa.remote_coherence_targets += 1;
                } else {
                    numa.local_coherence_targets += 1;
                }
                vms[slot].causal_mut().charge_target(remap_id);
            }
            if disruptive {
                self.charge_occupant(vms, target.cpu, target_cycles);
                if let Some((occ_slot, _)) = self.occupancy[target.cpu.index()] {
                    if occ_slot != slot {
                        let victim = vms[occ_slot].interference_mut();
                        victim.disrupted_cycles += target_cycles;
                        victim.disruptions_received += 1;
                        vms[slot].interference_mut().inflicted_cycles += target_cycles;
                        vms[slot]
                            .causal_mut()
                            .charge_victim_cycles(remap_id, target_cycles);
                    }
                }
            } else {
                // Co-tag matches run in the translation-structure port and
                // never stall the occupant.
                self.charge_hardware(target.cpu, target_cycles);
            }
            if target.vm_exit {
                vms[slot].coherence_mut().coherence_vm_exits += 1;
                self.energy.record(EnergyEvent::VmExit, 1);
            }
            match target.action {
                TargetAction::FlushAll => {
                    let counts = self.structures[target.cpu.index()].flush_all();
                    vms[slot].coherence_mut().full_flushes += 1;
                    vms[slot].coherence_mut().entries_flushed += counts.total();
                    vms[slot]
                        .causal_mut()
                        .charge_invalidations(remap_id, counts.total());
                }
                TargetAction::InvalidateCotag => {
                    self.energy.record(EnergyEvent::CotagMatch, 1);
                    let counts = self.structures[target.cpu.index()].invalidate_cotag(cotag);
                    vms[slot].coherence_mut().entries_selectively_invalidated += counts.total();
                    vms[slot]
                        .causal_mut()
                        .charge_invalidations(remap_id, counts.total());
                    self.energy
                        .record(EnergyEvent::TranslationInvalidation, counts.total());
                    if counts.total() == 0 && !self.caches.cpu_holds_line(target.cpu, line) {
                        vms[slot].coherence_mut().spurious_messages += 1;
                        self.caches.demote_sharer(line, target.cpu);
                    }
                }
                TargetAction::InvalidateCotagTlbOnly => {
                    self.energy.record(EnergyEvent::UnitdCamSearch, 1);
                    let counts =
                        self.structures[target.cpu.index()].invalidate_cotag_tlb_only(cotag);
                    vms[slot].coherence_mut().entries_selectively_invalidated += counts.tlb;
                    vms[slot].coherence_mut().entries_flushed += counts.mmu_cache + counts.ntlb;
                    vms[slot]
                        .causal_mut()
                        .charge_invalidations(remap_id, counts.total());
                    self.energy
                        .record(EnergyEvent::TranslationInvalidation, counts.total());
                    if counts.total() == 0 && !self.caches.cpu_holds_line(target.cpu, line) {
                        vms[slot].coherence_mut().spurious_messages += 1;
                        self.caches.demote_sharer(line, target.cpu);
                    }
                }
                TargetAction::None => {}
            }
        }
        // Directory-energy premium of the fancier design variants (Fig. 12).
        let extra_factor = self.variant.directory_energy_factor() - 1.0;
        if extra_factor > 0.0 {
            let extra = ((plan.targets.len() as f64) * extra_factor).ceil() as u64;
            self.energy.record(EnergyEvent::DirectoryAccess, extra);
        }
    }

    fn handle_back_invalidations(
        &mut self,
        vms: &mut [VmInstance],
        slot: usize,
        back: &[(CacheLineAddr, SharerSet, Option<PtKind>)],
    ) {
        for (line, sharers, pt) in back {
            if pt.is_none() {
                continue;
            }
            let cotag = CoTag::from_line(*line, self.cotag_bytes);
            for cpu in sharers.iter() {
                let counts = self.structures[cpu.index()].invalidate_cotag(cotag);
                vms[slot].coherence_mut().back_invalidated_entries += counts.total();
                // Directory evictions have no single remap as their cause;
                // they are charged to the evicting VM's latest remap (the
                // activity that filled the directory), or nowhere if the VM
                // never remapped.
                let remaps = vms[slot].coherence_mut().remaps;
                if remaps > 0 {
                    vms[slot]
                        .causal_mut()
                        .charge_invalidations(RemapId::new(slot as u32, remaps), counts.total());
                }
                self.energy
                    .record(EnergyEvent::TranslationInvalidation, counts.total());
            }
        }
    }
}
