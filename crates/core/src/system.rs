//! The system simulator: ties the translation structures, cache hierarchy,
//! page tables, memory devices, hypervisor paging and translation-coherence
//! protocol together and drives them with workload access streams.

use hatric_cache::{
    AccessOutcome, CacheHierarchy, CacheHierarchyConfig, HitLevel, PrivateCacheConfig, PtKind,
    SharerSet,
};
use hatric_cache::DirectoryConfig;
use hatric_coherence::{RemapContext, TargetAction, TranslationCoherence};
use hatric_energy::{EnergyEvent, EnergyModel};
use hatric_hypervisor::{PagingConfig, PagingManager, VirtualMachine, VmConfig};
use hatric_memory::{MemoryKind, MemorySystem};
use hatric_pagetable::{GuestPageTable, NestedPageTable, TwoDimWalker};
use hatric_tlb::{TlbLevel, TranslationStatsSnapshot, TranslationStructures};
use hatric_types::{
    AddressSpaceId, CacheLineAddr, CoTag, CpuId, GuestFrame, GuestVirtPage, Result, SystemFrame,
    SystemPhysAddr, VcpuId, VmId,
};
use hatric_workloads::Access;

use crate::config::{CoherenceMechanismExt, MemoryMode, SystemConfig};
use crate::driver::WorkloadDriver;
use crate::metrics::{CoherenceActivity, FaultActivity, SimReport};

/// Guest-physical frame number where the guest page table's own nodes live
/// (far above any data frame the workloads touch).
const GUEST_PT_GPP_BASE: u64 = 1 << 30;

/// The simulated system.
///
/// One [`System`] models one virtualized machine: `vcpus` guest threads
/// pinned to physical CPUs, a guest and a nested page table, per-CPU
/// translation structures, a MESI cache hierarchy with a HATRIC-extended
/// directory, two DRAM devices and a hypervisor that pages between them.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    memory: MemorySystem,
    caches: CacheHierarchy,
    structures: Vec<TranslationStructures>,
    guest_pt: GuestPageTable,
    nested_pt: NestedPageTable,
    vm: VirtualMachine,
    paging: PagingManager,
    protocol: Box<dyn TranslationCoherence>,
    energy: EnergyModel,
    cycles: Vec<u64>,
    coherence: CoherenceActivity,
    faults: FaultActivity,
    accesses: u64,
    pt_backing_next: u64,
}

impl System {
    /// Builds a system from its configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: SystemConfig) -> Result<Self> {
        config.validate()?;
        let memory = MemorySystem::new(config.effective_memory());
        let directory = if config.variant.unbounded_directory() {
            DirectoryConfig::unbounded()
        } else {
            DirectoryConfig {
                max_entries: ((config.llc_bytes / 64) as usize * 2).max(1024),
            }
        };
        let caches = CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: config.num_cpus,
            l1: PrivateCacheConfig::l1_default(),
            l2: PrivateCacheConfig::l2_default(),
            llc_bytes: config.llc_bytes,
            llc_ways: 16,
            directory,
            eager_pt_directory_update: config.variant.eager_directory_update(),
        });
        let sizes = config.structure_sizes.scaled(config.structure_scale);
        let structures = (0..config.num_cpus)
            .map(|_| TranslationStructures::new(&sizes, config.cotag_bytes))
            .collect();
        let guest_pt = GuestPageTable::new(GuestFrame::new(GUEST_PT_GPP_BASE));
        let nested_pt = NestedPageTable::new(memory.reserve_base());
        let vm = VirtualMachine::new(VmConfig {
            vm: VmId::new(0),
            vcpus: config.vcpus,
            first_cpu: CpuId::new(0),
        });
        let fast_capacity = memory.total_frames(MemoryKind::DieStacked);
        let paging = PagingManager::new(PagingConfig {
            policy: config.paging.policy,
            fast_capacity_pages: fast_capacity,
            migration_daemon: config.paging.migration_daemon,
            daemon_free_target: (fast_capacity / 256).max(2).min(fast_capacity.max(1)),
            prefetch_pages: config.paging.prefetch_pages,
        });
        let protocol = config.mechanism.build(config.costs);
        let energy = EnergyModel::new(config.mechanism.energy_params(config.cotag_bytes));
        let pt_backing_next = memory.reserve_base().number() + (1 << 24);
        Ok(Self {
            cycles: vec![0; config.num_cpus],
            structures,
            memory,
            caches,
            guest_pt,
            nested_pt,
            vm,
            paging,
            protocol,
            energy,
            coherence: CoherenceActivity::default(),
            faults: FaultActivity::default(),
            accesses: 0,
            pt_backing_next,
            config,
        })
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Whether hypervisor paging between the DRAM levels is active.
    #[must_use]
    pub fn paging_enabled(&self) -> bool {
        self.config.memory_mode != MemoryMode::NoHbm
            && self.memory.total_frames(MemoryKind::DieStacked) > 0
    }

    /// Drives `driver` for `warmup` accesses per thread (unmeasured, to
    /// populate page tables, caches and the die-stacked resident set) and
    /// then `measured` accesses per thread, returning the report for the
    /// measured phase.
    pub fn run(&mut self, driver: &mut WorkloadDriver, warmup: u64, measured: u64) -> SimReport {
        let threads = driver.thread_count().min(self.config.vcpus);
        for _ in 0..warmup {
            for thread in 0..threads {
                self.issue(driver, thread);
            }
        }
        self.reset_measurements();
        for _ in 0..measured {
            for thread in 0..threads {
                self.issue(driver, thread);
            }
        }
        self.report()
    }

    fn issue(&mut self, driver: &mut WorkloadDriver, thread: usize) {
        let access = driver.next_access(thread);
        let cpu = self.vm.cpu_of(VcpuId::new(thread as u32));
        let asid = self.vm.address_space(driver.address_space_index(thread));
        self.step(cpu, asid, access);
    }

    /// Clears all measurement state (cycles, statistics, energy) while
    /// keeping the architectural state (page tables, caches, TLB contents,
    /// resident set) intact.  Called between the warmup and measured phases.
    pub fn reset_measurements(&mut self) {
        for c in &mut self.cycles {
            *c = 0;
        }
        self.memory.reset_timing();
        self.coherence = CoherenceActivity::default();
        self.faults = FaultActivity::default();
        self.accesses = 0;
        self.caches.reset_stats();
        for s in &mut self.structures {
            s.reset_stats();
        }
        self.energy = EnergyModel::new(self.config.mechanism.energy_params(self.config.cotag_bytes));
    }

    /// Produces a report of everything measured since the last reset.
    #[must_use]
    pub fn report(&self) -> SimReport {
        let mut translation = TranslationStatsSnapshot::default();
        for s in &self.structures {
            let snap = s.stats();
            translation.l1_tlb.merge(snap.l1_tlb);
            translation.l2_tlb.merge(snap.l2_tlb);
            translation.mmu_cache.merge(snap.mmu_cache);
            translation.ntlb.merge(snap.ntlb);
        }
        SimReport {
            cycles_per_cpu: self.cycles.clone(),
            accesses: self.accesses,
            coherence: self.coherence,
            faults: self.faults,
            paging: self.paging.stats(),
            translation,
            cache: self.caches.stats(),
            energy: self.energy.report(
                self.cycles.iter().copied().max().unwrap_or(0),
                self.config.num_cpus,
            ),
        }
    }

    // ----- single-access pipeline ------------------------------------------------

    /// Simulates one guest memory access on `cpu`.
    pub fn step(&mut self, cpu: CpuId, asid: AddressSpaceId, access: Access) {
        self.accesses += 1;
        self.cycles[cpu.index()] += u64::from(access.compute_cycles);
        let vm_id = self.vm.id();
        let gvp = access.gvp;

        self.energy.record(EnergyEvent::TlbLookup, 1);
        if let Some(hit) = self.structures[cpu.index()].lookup_data(vm_id, asid, gvp) {
            let extra = match hit.level {
                TlbLevel::L1 => 0,
                TlbLevel::L2 => self.config.latencies.l2_tlb_hit_extra,
            };
            self.cycles[cpu.index()] += extra;
            if self.paging_enabled() {
                if let Some(gpp) = self.guest_pt.translate(gvp) {
                    self.paging.on_fast_access(gpp);
                }
            }
            self.data_access(cpu, hit.spp, access.line_in_page, access.is_write);
            return;
        }

        // TLB miss: make sure the page is mapped, resident where the
        // hypervisor wants it, then walk.
        self.energy.record(EnergyEvent::MmuCacheLookup, 1);
        self.energy.record(EnergyEvent::NtlbLookup, 1);
        let gpp = self.ensure_guest_mapping(cpu, gvp);
        self.ensure_nested_mapping(cpu, gpp);

        if self.paging_enabled() {
            if self.paging.is_resident(gpp) {
                self.paging.on_fast_access(gpp);
            } else if self.current_kind(gpp) == Some(MemoryKind::OffChip) {
                self.handle_demand_fault(cpu, gpp);
            }
        }

        let walk = match TwoDimWalker::walk(gvp, &self.guest_pt, &self.nested_pt) {
            Ok(walk) => walk,
            Err(_) => return,
        };
        let accessed_clear = self.nested_pt.mark_used(gpp, access.is_write).unwrap_or(false);
        if accessed_clear {
            // The walker informs the directory that this line now feeds
            // translation structures (Sec. 4.2).
            self.caches
                .mark_pt_line(walk.nested_leaf_pte_addr().cache_line(), PtKind::Nested);
            self.caches
                .mark_pt_line(walk.guest_leaf_pte_addr().cache_line(), PtKind::Guest);
            self.energy.record(EnergyEvent::DirectoryAccess, 1);
        }
        let assist = self.structures[cpu.index()].service_miss(vm_id, asid, &walk, accessed_clear);
        self.energy
            .record(EnergyEvent::PageWalkStep, assist.refs.len() as u64);
        let refs = assist.refs;
        for addr in refs {
            let outcome = self.caches.read(cpu, addr.cache_line());
            self.charge_read(cpu, addr, &outcome);
        }

        self.data_access(cpu, walk.spp, access.line_in_page, access.is_write);
    }

    fn data_access(&mut self, cpu: CpuId, spp: SystemFrame, line_in_page: u8, is_write: bool) {
        let addr = spp.addr_at(u64::from(line_in_page) * 64);
        let line = addr.cache_line();
        if is_write {
            let outcome = self.caches.write(cpu, line);
            self.charge_read(cpu, addr, &outcome.access);
            self.energy.record(
                EnergyEvent::CoherenceMessage,
                u64::from(outcome.invalidated_sharers.count()),
            );
            // Ordinary data writes never hit page-table lines (workload data
            // regions and page-table frames are disjoint), so no translation
            // coherence is needed here.
        } else {
            let outcome = self.caches.read(cpu, line);
            self.charge_read(cpu, addr, &outcome);
        }
    }

    fn charge_read(&mut self, cpu: CpuId, addr: SystemPhysAddr, outcome: &AccessOutcome) {
        let lat = &self.config.latencies;
        let cycles = match outcome.level {
            HitLevel::L1 => {
                self.energy.record(EnergyEvent::L1Access, 1);
                lat.l1_hit
            }
            HitLevel::L2 => {
                self.energy.record(EnergyEvent::L2Access, 1);
                lat.l2_hit
            }
            HitLevel::Llc => {
                self.energy.record(EnergyEvent::LlcAccess, 1);
                self.energy.record(EnergyEvent::DirectoryAccess, 1);
                lat.llc_hit
            }
            HitLevel::Memory => {
                self.energy.record(EnergyEvent::LlcAccess, 1);
                self.energy.record(EnergyEvent::DirectoryAccess, 1);
                let frame = addr.frame(hatric_types::PageSize::Base);
                let kind = self.memory.kind_of(frame);
                self.energy.record(
                    match kind {
                        MemoryKind::DieStacked => EnergyEvent::DramAccessFast,
                        MemoryKind::OffChip => EnergyEvent::DramAccessSlow,
                    },
                    1,
                );
                let now = self.cycles[cpu.index()];
                lat.llc_hit + self.memory.access(frame, now)
            }
        };
        self.cycles[cpu.index()] += cycles;
        self.handle_back_invalidations(&outcome.back_invalidated);
    }

    // ----- mapping management ----------------------------------------------------

    /// Data pages use an identity GVP→GPP layout (each guest address space
    /// occupies a disjoint slice of guest-virtual space, so identity is
    /// collision-free).
    fn ensure_guest_mapping(&mut self, cpu: CpuId, gvp: GuestVirtPage) -> GuestFrame {
        if let Some(gpp) = self.guest_pt.translate(gvp) {
            return gpp;
        }
        let gpp = GuestFrame::new(gvp.number());
        let outcome = self.guest_pt.map(gvp, gpp);
        // Give every new guest page-table node a nested mapping in the
        // hypervisor's page-table reserve region.
        let mut nodes = outcome.allocated_nodes;
        if self.nested_pt.translate(GuestFrame::new(GUEST_PT_GPP_BASE)).is_none() {
            nodes.push(GuestFrame::new(GUEST_PT_GPP_BASE));
        }
        for node in nodes {
            if self.nested_pt.translate(node).is_none() {
                let backing = SystemFrame::new(self.pt_backing_next);
                self.pt_backing_next += 1;
                self.nested_pt.map(node, backing);
            }
        }
        self.faults.first_touch_faults += 1;
        self.cycles[cpu.index()] += self.config.latencies.first_touch_cycles;
        gpp
    }

    fn ensure_nested_mapping(&mut self, cpu: CpuId, gpp: GuestFrame) {
        if self.nested_pt.translate(gpp).is_some() {
            return;
        }
        // First touch of a brand-new page: no stale translations exist, so no
        // translation coherence is needed.  The hypervisor backs the page
        // with die-stacked memory while there is room (first-touch placement)
        // and with off-chip memory once the fast device is full — from then
        // on pages only enter die-stacked memory through the demand-migration
        // path, which is what triggers translation coherence.
        let spp = if self.paging_enabled() && self.paging.free_pages() > 0 {
            match self.memory.allocate(MemoryKind::DieStacked) {
                Ok(f) => {
                    self.paging.commit_promotion(gpp);
                    f
                }
                Err(_) => self
                    .memory
                    .allocate(MemoryKind::OffChip)
                    .unwrap_or_else(|_| SystemFrame::new(self.bump_reserve())),
            }
        } else {
            self.memory
                .allocate(MemoryKind::OffChip)
                .unwrap_or_else(|_| SystemFrame::new(self.bump_reserve()))
        };
        self.nested_pt.map(gpp, spp);
        self.cycles[cpu.index()] += self.config.latencies.first_touch_cycles;
    }

    fn bump_reserve(&mut self) -> u64 {
        let frame = self.pt_backing_next;
        self.pt_backing_next += 1;
        frame
    }

    fn current_kind(&self, gpp: GuestFrame) -> Option<MemoryKind> {
        self.nested_pt.translate(gpp).map(|spp| self.memory.kind_of(spp))
    }

    // ----- demand paging ----------------------------------------------------------

    fn handle_demand_fault(&mut self, cpu: CpuId, gpp: GuestFrame) {
        // The faulting access takes an EPT-violation VM exit regardless of
        // the translation-coherence mechanism.
        self.faults.demand_faults += 1;
        self.cycles[cpu.index()] += self.config.costs.vm_exit_cycles;
        self.energy.record(EnergyEvent::VmExit, 1);

        let decision = self.paging.on_slow_access(gpp);
        for victim in decision.evictions.clone() {
            self.migrate(cpu, victim, MemoryKind::OffChip, false);
        }
        if self.paging.daemon_should_run() {
            for victim in self.paging.run_daemon() {
                self.migrate(cpu, victim, MemoryKind::OffChip, false);
            }
        }
        for (i, promo) in decision.promotions.iter().enumerate() {
            if self.nested_pt.translate(*promo).is_none() {
                // Prefetch candidate that the guest has never touched: skip.
                continue;
            }
            if self.current_kind(*promo) == Some(MemoryKind::OffChip) {
                let on_critical_path = i == 0;
                if self.migrate(cpu, *promo, MemoryKind::DieStacked, on_critical_path) {
                    self.paging.commit_promotion(*promo);
                }
            } else {
                self.paging.commit_promotion(*promo);
            }
        }
    }

    /// Moves `gpp` to the `to` device.  Returns `true` if a migration
    /// actually happened.
    fn migrate(&mut self, initiator: CpuId, gpp: GuestFrame, to: MemoryKind, critical: bool) -> bool {
        let Some(old_spp) = self.nested_pt.translate(gpp) else {
            return false;
        };
        if self.memory.kind_of(old_spp) == to {
            return false;
        }
        let Ok(new_spp) = self.memory.allocate(to) else {
            return false;
        };
        let now = self.cycles[initiator.index()];
        let copy = self.memory.page_copy_cycles(old_spp, new_spp, now);
        if critical {
            self.cycles[initiator.index()] += copy;
        }
        self.energy.record(EnergyEvent::PageCopy, 1);
        self.memory.free(old_spp);
        let pte_addr = self
            .nested_pt
            .remap(gpp, new_spp)
            .expect("translate() above guarantees the mapping exists");
        match to {
            MemoryKind::DieStacked => self.faults.pages_promoted += 1,
            MemoryKind::OffChip => self.faults.pages_demoted += 1,
        }
        self.remap_coherence(initiator, pte_addr);
        true
    }

    // ----- translation coherence ---------------------------------------------------

    /// Performs the hypervisor's store to a nested page-table entry and the
    /// resulting translation-coherence activity.
    pub fn remap_coherence(&mut self, initiator: CpuId, pte_addr: SystemPhysAddr) {
        self.coherence.remaps += 1;
        let line = pte_addr.cache_line();
        let write = self.caches.write(initiator, line);
        self.charge_read(initiator, pte_addr, &write.access);
        self.energy.record(
            EnergyEvent::CoherenceMessage,
            u64::from(write.invalidated_sharers.count()),
        );

        // The initiator's own translation structures snoop the store locally
        // (the directory's sharer list excludes the writer), so it is always
        // part of the hardware-coherence target set.
        let mut sharers = write.invalidated_sharers;
        sharers.add(initiator);
        let ctx = RemapContext {
            initiator,
            vm_cpus: self.vm.cpus_ever_used().to_vec(),
            running_guest: self.vm.running_guest().to_vec(),
            sharers,
        };
        let plan = self.protocol.plan_remap(&ctx);
        self.cycles[initiator.index()] += plan.initiator_cycles;
        self.coherence.ipis += plan.ipis_sent;
        self.coherence.hw_messages += plan.hw_messages;
        self.energy.record(EnergyEvent::Ipi, plan.ipis_sent);
        self.energy
            .record(EnergyEvent::CoherenceMessage, plan.hw_messages);

        let cotag = CoTag::from_pte_addr(pte_addr, self.config.cotag_bytes);
        for target in &plan.targets {
            self.cycles[target.cpu.index()] += target.target_cycles;
            if target.vm_exit {
                self.coherence.coherence_vm_exits += 1;
                self.energy.record(EnergyEvent::VmExit, 1);
            }
            match target.action {
                TargetAction::FlushAll => {
                    let counts = self.structures[target.cpu.index()].flush_all();
                    self.coherence.full_flushes += 1;
                    self.coherence.entries_flushed += counts.total();
                }
                TargetAction::InvalidateCotag => {
                    self.energy.record(EnergyEvent::CotagMatch, 1);
                    let counts = self.structures[target.cpu.index()].invalidate_cotag(cotag);
                    self.coherence.entries_selectively_invalidated += counts.total();
                    self.energy
                        .record(EnergyEvent::TranslationInvalidation, counts.total());
                    if counts.total() == 0 && !self.caches.cpu_holds_line(target.cpu, line) {
                        self.coherence.spurious_messages += 1;
                        self.caches.demote_sharer(line, target.cpu);
                    }
                }
                TargetAction::InvalidateCotagTlbOnly => {
                    self.energy.record(EnergyEvent::UnitdCamSearch, 1);
                    let counts =
                        self.structures[target.cpu.index()].invalidate_cotag_tlb_only(cotag);
                    self.coherence.entries_selectively_invalidated += counts.tlb;
                    self.coherence.entries_flushed += counts.mmu_cache + counts.ntlb;
                    self.energy
                        .record(EnergyEvent::TranslationInvalidation, counts.total());
                    if counts.total() == 0 && !self.caches.cpu_holds_line(target.cpu, line) {
                        self.coherence.spurious_messages += 1;
                        self.caches.demote_sharer(line, target.cpu);
                    }
                }
                TargetAction::None => {}
            }
        }
        // Directory-energy premium of the fancier design variants (Fig. 12).
        let extra_factor = self.config.variant.directory_energy_factor() - 1.0;
        if extra_factor > 0.0 {
            let extra = ((plan.targets.len() as f64) * extra_factor).ceil() as u64;
            self.energy.record(EnergyEvent::DirectoryAccess, extra);
        }
    }

    fn handle_back_invalidations(
        &mut self,
        back: &[(CacheLineAddr, SharerSet, Option<PtKind>)],
    ) {
        for (line, sharers, pt) in back {
            if pt.is_none() {
                continue;
            }
            let cotag = CoTag::from_line(*line, self.config.cotag_bytes);
            for cpu in sharers.iter() {
                let counts = self.structures[cpu.index()].invalidate_cotag(cotag);
                self.coherence.back_invalidated_entries += counts.total();
                self.energy
                    .record(EnergyEvent::TranslationInvalidation, counts.total());
            }
        }
    }

    // ----- inspection helpers (used by tests and examples) -------------------------

    /// Per-CPU cycle counters for the current measurement phase.
    #[must_use]
    pub fn cycles_per_cpu(&self) -> &[u64] {
        &self.cycles
    }

    /// The hypervisor paging manager (for inspection).
    #[must_use]
    pub fn paging(&self) -> &PagingManager {
        &self.paging
    }

    /// The nested page table (for inspection).
    #[must_use]
    pub fn nested_page_table(&self) -> &NestedPageTable {
        &self.nested_pt
    }

    /// The guest page table (for inspection).
    #[must_use]
    pub fn guest_page_table(&self) -> &GuestPageTable {
        &self.guest_pt
    }

    /// Translation structures of one CPU (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn translation_structures(&self, cpu: CpuId) -> &TranslationStructures {
        &self.structures[cpu.index()]
    }

    /// The cache hierarchy (for inspection).
    #[must_use]
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagingKnobs;
    use hatric_coherence::CoherenceMechanism;
    use hatric_workloads::{Workload, WorkloadKind};

    fn tiny_config(mechanism: CoherenceMechanism) -> SystemConfig {
        SystemConfig::scaled(4, 256).with_mechanism(mechanism)
    }

    fn run(mechanism: CoherenceMechanism) -> SimReport {
        let config = tiny_config(mechanism);
        let mut system = System::new(config.clone()).unwrap();
        let wl = Workload::build(WorkloadKind::DataCaching, 4, config.fast_capacity_pages(), 3);
        let mut driver = WorkloadDriver::from(wl);
        system.run(&mut driver, 2_000, 2_000)
    }

    #[test]
    fn software_run_produces_shootdown_activity() {
        let report = run(CoherenceMechanism::Software);
        assert!(report.coherence.remaps > 0, "paging should remap pages");
        assert!(report.coherence.ipis > 0);
        assert!(report.coherence.full_flushes > 0);
        assert_eq!(report.coherence.hw_messages, 0);
        assert!(report.runtime_cycles() > 0);
    }

    #[test]
    fn hatric_run_avoids_ipis_and_flushes() {
        let report = run(CoherenceMechanism::Hatric);
        assert!(report.coherence.remaps > 0);
        assert_eq!(report.coherence.ipis, 0);
        assert_eq!(report.coherence.full_flushes, 0);
        assert_eq!(report.coherence.coherence_vm_exits, 0);
    }

    #[test]
    fn hatric_is_faster_than_software_under_paging() {
        let sw = run(CoherenceMechanism::Software);
        let hw = run(CoherenceMechanism::Hatric);
        assert!(
            hw.runtime_cycles() < sw.runtime_cycles(),
            "hatric {} vs software {}",
            hw.runtime_cycles(),
            sw.runtime_cycles()
        );
    }

    #[test]
    fn ideal_is_at_least_as_fast_as_hatric() {
        let hw = run(CoherenceMechanism::Hatric);
        let ideal = run(CoherenceMechanism::Ideal);
        assert!(ideal.runtime_cycles() <= hw.runtime_cycles() * 101 / 100);
    }

    #[test]
    fn no_hbm_mode_never_migrates() {
        let config = tiny_config(CoherenceMechanism::Software).with_memory_mode(MemoryMode::NoHbm);
        let mut system = System::new(config.clone()).unwrap();
        let wl = Workload::build(WorkloadKind::Canneal, 4, 256, 3);
        let mut driver = WorkloadDriver::from(wl);
        let report = system.run(&mut driver, 500, 500);
        assert_eq!(report.coherence.remaps, 0);
        assert_eq!(report.faults.demand_faults, 0);
        assert_eq!(report.faults.pages_promoted, 0);
    }

    #[test]
    fn infinite_hbm_mode_migrates_nothing_but_uses_fast_memory() {
        let config =
            tiny_config(CoherenceMechanism::Software).with_memory_mode(MemoryMode::InfiniteHbm);
        let mut system = System::new(config).unwrap();
        let wl = Workload::build(WorkloadKind::Canneal, 4, 256, 3);
        let mut driver = WorkloadDriver::from(wl);
        let report = system.run(&mut driver, 500, 500);
        assert_eq!(report.faults.pages_demoted, 0);
        assert_eq!(report.coherence.remaps, 0);
    }

    #[test]
    fn infinite_hbm_is_fastest_memory_mode() {
        let base = tiny_config(CoherenceMechanism::Software).with_paging(PagingKnobs::best());
        let mut runtimes = Vec::new();
        for mode in [MemoryMode::NoHbm, MemoryMode::Paged, MemoryMode::InfiniteHbm] {
            let config = base.clone().with_memory_mode(mode);
            let mut system = System::new(config.clone()).unwrap();
            let wl = Workload::build(WorkloadKind::Graph500, 4, 256, 3);
            let mut driver = WorkloadDriver::from(wl);
            runtimes.push(system.run(&mut driver, 2_000, 2_000).runtime_cycles());
        }
        assert!(
            runtimes[2] < runtimes[0],
            "inf-hbm {} should beat no-hbm {}",
            runtimes[2],
            runtimes[0]
        );
    }

    #[test]
    fn report_accounts_every_thread() {
        let report = run(CoherenceMechanism::Hatric);
        assert_eq!(report.cycles_per_cpu.len(), 4);
        assert!(report.cycles_per_cpu.iter().all(|&c| c > 0));
        assert_eq!(report.accesses, 4 * 2_000);
    }

    #[test]
    fn tlb_stats_show_reuse() {
        let report = run(CoherenceMechanism::Hatric);
        assert!(report.translation.l1_tlb.total() > 0);
        assert!(report.translation.l1_tlb.hit_rate() > 0.3);
    }
}
