//! The single-VM system simulator: one [`VmInstance`] driven over a
//! dedicated [`Platform`].
//!
//! Historically this type owned the whole pipeline; the per-VM translation
//! state now lives in [`VmInstance`] and the shared hardware plus the
//! per-access pipeline in [`Platform`], so a consolidated host
//! (`hatric-host`) can run many VMs over one platform.  [`System`] is the
//! single-VM special case: it pins vCPU *i* to physical CPU *i* and keeps
//! the exact per-access behaviour (and cycle accounting) of the original
//! simulator.  One deliberate reporting change rode along with the
//! refactor: [`System::reset_measurements`] now clears the hypervisor
//! paging statistics too, so `SimReport::paging` covers the measured phase
//! only — previously it leaked warmup-phase counts and disagreed with
//! `SimReport::faults` in the same report.

use hatric_cache::CacheHierarchy;
use hatric_hypervisor::{PagingManager, VirtualMachine, VmConfig};
use hatric_memory::MemoryKind;
use hatric_pagetable::{GuestPageTable, NestedPageTable};
use hatric_tlb::TranslationStructures;
use hatric_types::{AddressSpaceId, CpuId, Result, SystemPhysAddr, VcpuId, VmId};
use hatric_workloads::Access;

use crate::config::{MemoryMode, SystemConfig};
use crate::driver::WorkloadDriver;
use crate::metrics::SimReport;
use crate::platform::Platform;
use crate::vm_instance::{VmInstance, VmPagingParams};

/// The simulated system.
///
/// One [`System`] models one virtualized machine: `vcpus` guest threads
/// pinned to physical CPUs, a guest and a nested page table, per-CPU
/// translation structures, a MESI cache hierarchy with a HATRIC-extended
/// directory, two DRAM devices and a hypervisor that pages between them.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    platform: Platform,
    vm: VmInstance,
}

impl System {
    /// Builds a system from its configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: SystemConfig) -> Result<Self> {
        let mut platform = Platform::new(&config)?;
        let fast_capacity = platform.memory().total_frames(MemoryKind::DieStacked);
        let paging = VmPagingParams::for_quota(
            &config.paging,
            fast_capacity,
            config.memory_mode != MemoryMode::NoHbm,
        );
        let vm = VmInstance::new(
            0,
            VmConfig {
                vm: VmId::new(0),
                vcpus: config.vcpus,
                first_cpu: CpuId::new(0),
            },
            paging,
            platform.memory(),
        );
        for i in 0..config.vcpus {
            platform.set_occupant(CpuId::new(i as u32), Some((0, VcpuId::new(i as u32))));
        }
        Ok(Self {
            config,
            platform,
            vm,
        })
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Whether hypervisor paging between the DRAM levels is active.
    #[must_use]
    pub fn paging_enabled(&self) -> bool {
        self.vm.paging_enabled()
    }

    /// Drives `driver` for `warmup` accesses per thread (unmeasured, to
    /// populate page tables, caches and the die-stacked resident set) and
    /// then `measured` accesses per thread, returning the report for the
    /// measured phase.
    pub fn run(&mut self, driver: &mut WorkloadDriver, warmup: u64, measured: u64) -> SimReport {
        let threads = driver.thread_count().min(self.config.vcpus);
        for _ in 0..warmup {
            for thread in 0..threads {
                self.issue(driver, thread);
            }
        }
        self.reset_measurements();
        for _ in 0..measured {
            for thread in 0..threads {
                self.issue(driver, thread);
            }
        }
        self.report()
    }

    fn issue(&mut self, driver: &mut WorkloadDriver, thread: usize) {
        let access = driver.next_access(thread);
        let cpu = self.vm.vm().cpu_of(VcpuId::new(thread as u32));
        let asid = self
            .vm
            .vm()
            .address_space(driver.address_space_index(thread));
        self.step(cpu, asid, access);
    }

    /// Clears all measurement state (cycles, statistics, energy) while
    /// keeping the architectural state (page tables, caches, TLB contents,
    /// resident set) intact.  Called between the warmup and measured phases.
    pub fn reset_measurements(&mut self) {
        self.platform.reset_measurements();
        self.vm.reset_measurements();
    }

    /// Produces a report of everything measured since the last reset.
    #[must_use]
    pub fn report(&self) -> SimReport {
        let vm = self.vm.report();
        SimReport {
            cycles_per_cpu: self.platform.cycles_per_cpu().to_vec(),
            accesses: vm.accesses,
            coherence: vm.coherence,
            faults: vm.faults,
            interference: vm.interference,
            numa: vm.numa,
            paging: vm.paging,
            translation: self.platform.translation_snapshot(),
            cache: self.platform.cache_snapshot(),
            energy: self.platform.energy_report(),
            latency: vm.latency,
            causal: vm.causal,
        }
    }

    // ----- observability ----------------------------------------------------

    /// Installs a sim-time trace sink holding up to `capacity` spans
    /// (oldest evicted first), exactly like the consolidated host's
    /// tracing: keyed to simulated cycles, deterministic, and invisible
    /// to the model.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.platform
            .set_trace_sink(hatric_telemetry::TraceSink::new(capacity));
    }

    /// Exports the recorded spans as a Chrome trace-event JSON document,
    /// or `None` when tracing was never enabled.
    #[must_use]
    pub fn export_trace(&self) -> Option<String> {
        self.platform
            .trace_sink()
            .map(hatric_telemetry::TraceSink::export_chrome_trace)
    }

    // ----- single-access pipeline ------------------------------------------

    /// Simulates one guest memory access on `cpu`.
    pub fn step(&mut self, cpu: CpuId, asid: AddressSpaceId, access: Access) {
        self.platform
            .step(std::slice::from_mut(&mut self.vm), 0, cpu, asid, access);
    }

    /// Performs the hypervisor's store to a nested page-table entry and the
    /// resulting translation-coherence activity.
    pub fn remap_coherence(&mut self, initiator: CpuId, pte_addr: SystemPhysAddr) {
        self.platform
            .remap_coherence(std::slice::from_mut(&mut self.vm), 0, initiator, pte_addr);
    }

    // ----- inspection helpers (used by tests and examples) ------------------

    /// Per-CPU cycle counters for the current measurement phase.
    #[must_use]
    pub fn cycles_per_cpu(&self) -> &[u64] {
        self.platform.cycles_per_cpu()
    }

    /// The hypervisor paging manager (for inspection).
    #[must_use]
    pub fn paging(&self) -> &PagingManager {
        self.vm.paging()
    }

    /// The nested page table (for inspection).
    #[must_use]
    pub fn nested_page_table(&self) -> &NestedPageTable {
        self.vm.nested_page_table()
    }

    /// The guest page table (for inspection).
    #[must_use]
    pub fn guest_page_table(&self) -> &GuestPageTable {
        self.vm.guest_page_table()
    }

    /// Translation structures of one CPU (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn translation_structures(&self, cpu: CpuId) -> &TranslationStructures {
        self.platform.translation_structures(cpu)
    }

    /// The cache hierarchy (for inspection).
    #[must_use]
    pub fn caches(&self) -> &CacheHierarchy {
        self.platform.caches()
    }

    /// The VM's placement bookkeeping (for inspection).
    #[must_use]
    pub fn virtual_machine(&self) -> &VirtualMachine {
        self.vm.vm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagingKnobs;
    use hatric_coherence::CoherenceMechanism;
    use hatric_workloads::{Workload, WorkloadKind};

    fn tiny_config(mechanism: CoherenceMechanism) -> SystemConfig {
        SystemConfig::scaled(4, 256).with_mechanism(mechanism)
    }

    fn run(mechanism: CoherenceMechanism) -> SimReport {
        let config = tiny_config(mechanism);
        let mut system = System::new(config.clone()).unwrap();
        let wl = Workload::build(
            WorkloadKind::DataCaching,
            4,
            config.fast_capacity_pages(),
            3,
        );
        let mut driver = WorkloadDriver::from(wl);
        system.run(&mut driver, 2_000, 2_000)
    }

    #[test]
    fn software_run_produces_shootdown_activity() {
        let report = run(CoherenceMechanism::Software);
        assert!(report.coherence.remaps > 0, "paging should remap pages");
        assert!(report.coherence.ipis > 0);
        assert!(report.coherence.full_flushes > 0);
        assert_eq!(report.coherence.hw_messages, 0);
        assert!(report.runtime_cycles() > 0);
    }

    #[test]
    fn hatric_run_avoids_ipis_and_flushes() {
        let report = run(CoherenceMechanism::Hatric);
        assert!(report.coherence.remaps > 0);
        assert_eq!(report.coherence.ipis, 0);
        assert_eq!(report.coherence.full_flushes, 0);
        assert_eq!(report.coherence.coherence_vm_exits, 0);
    }

    #[test]
    fn hatric_is_faster_than_software_under_paging() {
        let sw = run(CoherenceMechanism::Software);
        let hw = run(CoherenceMechanism::Hatric);
        assert!(
            hw.runtime_cycles() < sw.runtime_cycles(),
            "hatric {} vs software {}",
            hw.runtime_cycles(),
            sw.runtime_cycles()
        );
    }

    #[test]
    fn ideal_is_at_least_as_fast_as_hatric() {
        let hw = run(CoherenceMechanism::Hatric);
        let ideal = run(CoherenceMechanism::Ideal);
        assert!(ideal.runtime_cycles() <= hw.runtime_cycles() * 101 / 100);
    }

    #[test]
    fn no_hbm_mode_never_migrates() {
        let config = tiny_config(CoherenceMechanism::Software).with_memory_mode(MemoryMode::NoHbm);
        let mut system = System::new(config.clone()).unwrap();
        let wl = Workload::build(WorkloadKind::Canneal, 4, 256, 3);
        let mut driver = WorkloadDriver::from(wl);
        let report = system.run(&mut driver, 500, 500);
        assert_eq!(report.coherence.remaps, 0);
        assert_eq!(report.faults.demand_faults, 0);
        assert_eq!(report.faults.pages_promoted, 0);
    }

    #[test]
    fn infinite_hbm_mode_migrates_nothing_but_uses_fast_memory() {
        let config =
            tiny_config(CoherenceMechanism::Software).with_memory_mode(MemoryMode::InfiniteHbm);
        let mut system = System::new(config).unwrap();
        let wl = Workload::build(WorkloadKind::Canneal, 4, 256, 3);
        let mut driver = WorkloadDriver::from(wl);
        let report = system.run(&mut driver, 500, 500);
        assert_eq!(report.faults.pages_demoted, 0);
        assert_eq!(report.coherence.remaps, 0);
    }

    #[test]
    fn infinite_hbm_is_fastest_memory_mode() {
        let base = tiny_config(CoherenceMechanism::Software).with_paging(PagingKnobs::best());
        let mut runtimes = Vec::new();
        for mode in [
            MemoryMode::NoHbm,
            MemoryMode::Paged,
            MemoryMode::InfiniteHbm,
        ] {
            let config = base.clone().with_memory_mode(mode);
            let mut system = System::new(config.clone()).unwrap();
            let wl = Workload::build(WorkloadKind::Graph500, 4, 256, 3);
            let mut driver = WorkloadDriver::from(wl);
            runtimes.push(system.run(&mut driver, 2_000, 2_000).runtime_cycles());
        }
        assert!(
            runtimes[2] < runtimes[0],
            "inf-hbm {} should beat no-hbm {}",
            runtimes[2],
            runtimes[0]
        );
    }

    #[test]
    fn report_accounts_every_thread() {
        let report = run(CoherenceMechanism::Hatric);
        assert_eq!(report.cycles_per_cpu.len(), 4);
        assert!(report.cycles_per_cpu.iter().all(|&c| c > 0));
        assert_eq!(report.accesses, 4 * 2_000);
    }

    #[test]
    fn tlb_stats_show_reuse() {
        let report = run(CoherenceMechanism::Hatric);
        assert!(report.translation.l1_tlb.total() > 0);
        assert!(report.translation.l1_tlb.hit_rate() > 0.3);
    }

    #[test]
    fn single_vm_runs_record_no_interference() {
        let report = run(CoherenceMechanism::Software);
        assert_eq!(report.interference.disrupted_cycles, 0);
        assert_eq!(report.interference.inflicted_cycles, 0);
    }

    #[test]
    fn vcpu_attribution_matches_per_cpu_cycles_for_pinned_vm() {
        // In the single-VM system vCPU i occupies CPU i, so the per-vCPU
        // attribution and the platform's per-CPU counters must agree for
        // every disruptive charge (they may differ by hardware-only co-tag
        // work, which is charged to the CPU but stalls no vCPU).
        let config = tiny_config(CoherenceMechanism::Software);
        let mut system = System::new(config.clone()).unwrap();
        let wl = Workload::build(
            WorkloadKind::DataCaching,
            4,
            config.fast_capacity_pages(),
            3,
        );
        let mut driver = WorkloadDriver::from(wl);
        system.run(&mut driver, 500, 500);
        let platform_cycles: Vec<u64> = system.cycles_per_cpu().to_vec();
        let vcpu_cycles = system.vm.vcpu_cycles();
        assert_eq!(platform_cycles, vcpu_cycles);
    }
}
