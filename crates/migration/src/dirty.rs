//! Dirty-page tracking for pre-copy live migration.
//!
//! While a migration runs, the hypervisor must know which guest-physical
//! pages were written since it last copied them (EPT dirty bits / KVM's
//! dirty ring).  The simulator models this with a [`DirtyTracker`]
//! installed as the [`Platform`](hatric::Platform)'s write observer: the
//! per-access pipeline reports every guest store, the tracker filters for
//! the migrating VM and records the written frame in a [`DirtyBitmap`].
//! The [`MigrationEngine`](crate::MigrationEngine) drains the bitmap at
//! the end of each copy round to form the next round's copy set.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use hatric::WriteObserver;
use hatric_types::GuestFrame;

/// The set of guest-physical frames written since the last drain.
///
/// Backed by a `BTreeSet`, so draining yields frames in ascending order —
/// copy rounds visit pages deterministically, which keeps whole-host runs
/// bit-reproducible for a fixed seed.
#[derive(Debug, Default, Clone)]
pub struct DirtyBitmap {
    pages: BTreeSet<GuestFrame>,
    writes_observed: u64,
}

impl DirtyBitmap {
    /// Marks `gpp` dirty.
    pub fn mark(&mut self, gpp: GuestFrame) {
        self.writes_observed += 1;
        self.pages.insert(gpp);
    }

    /// Number of distinct dirty pages.
    #[must_use]
    pub fn dirty_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total guest writes observed (including re-dirties of the same page).
    #[must_use]
    pub fn writes_observed(&self) -> u64 {
        self.writes_observed
    }

    /// Takes the dirty set, leaving the bitmap clean (ascending order).
    pub fn drain(&mut self) -> Vec<GuestFrame> {
        std::mem::take(&mut self.pages).into_iter().collect()
    }

    /// Unmarks `gpp` without touching the rest of the set.
    pub fn unmark(&mut self, gpp: GuestFrame) {
        self.pages.remove(&gpp);
    }
}

/// A shared handle to one VM's dirty bitmap.
///
/// Clones share state: the engine keeps one handle, and a boxed clone is
/// installed as the platform's write observer.  Accesses stay
/// single-threaded per host, but a whole host (engine and platform
/// together) may be moved across the cluster tier's worker threads between
/// epochs, so the shared state must be `Send` — an uncontended
/// `Arc<Mutex<_>>` costs nothing measurable on the per-write path.
#[derive(Debug, Clone)]
pub struct DirtyTracker {
    vm_slot: usize,
    bitmap: Arc<Mutex<DirtyBitmap>>,
}

impl DirtyTracker {
    /// Creates a tracker that records writes of the VM in host slot
    /// `vm_slot` and ignores everything else.
    #[must_use]
    pub fn new(vm_slot: usize) -> Self {
        Self {
            vm_slot,
            bitmap: Arc::new(Mutex::new(DirtyBitmap::default())),
        }
    }

    /// The host slot this tracker watches.
    #[must_use]
    pub fn vm_slot(&self) -> usize {
        self.vm_slot
    }

    /// The bitmap, locked.  Access is single-threaded (one host at a time
    /// touches the tracker), so the lock can only be poisoned if that
    /// single thread panicked mid-call — propagating via unwrap is fine.
    fn lock(&self) -> std::sync::MutexGuard<'_, DirtyBitmap> {
        self.bitmap.lock().expect("no concurrent tracker access")
    }

    /// A boxed clone suitable for
    /// [`Platform::set_write_observer`](hatric::Platform::set_write_observer).
    #[must_use]
    pub fn observer(&self) -> Box<dyn WriteObserver> {
        Box::new(self.clone())
    }

    /// Number of distinct pages currently dirty.
    #[must_use]
    pub fn dirty_pages(&self) -> u64 {
        self.lock().dirty_pages()
    }

    /// Total writes observed so far.
    #[must_use]
    pub fn writes_observed(&self) -> u64 {
        self.lock().writes_observed()
    }

    /// Takes the dirty set (ascending), leaving the bitmap clean.
    pub fn drain(&self) -> Vec<GuestFrame> {
        self.lock().drain()
    }

    /// Unmarks `gpp`.  Called when a page is transferred: the copy captures
    /// its current content, so only stores *after* the copy re-dirty it
    /// (stores before it were already folded into the transferred bytes).
    pub fn unmark(&self, gpp: GuestFrame) {
        self.lock().unmark(gpp);
    }
}

impl WriteObserver for DirtyTracker {
    fn on_guest_write(&mut self, slot: usize, gpp: GuestFrame) {
        if slot == self.vm_slot {
            self.lock().mark(gpp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_yields_ascending_distinct_pages() {
        let mut bitmap = DirtyBitmap::default();
        for n in [9u64, 3, 9, 1, 3] {
            bitmap.mark(GuestFrame::new(n));
        }
        assert_eq!(bitmap.dirty_pages(), 3);
        assert_eq!(bitmap.writes_observed(), 5);
        assert_eq!(
            bitmap.drain(),
            vec![GuestFrame::new(1), GuestFrame::new(3), GuestFrame::new(9)]
        );
        assert_eq!(bitmap.dirty_pages(), 0);
        // Writes-observed is cumulative, not reset by draining.
        assert_eq!(bitmap.writes_observed(), 5);
    }

    #[test]
    fn tracker_filters_by_slot_and_shares_state_with_its_observer() {
        let tracker = DirtyTracker::new(2);
        let mut observer = tracker.observer();
        observer.on_guest_write(0, GuestFrame::new(7));
        observer.on_guest_write(2, GuestFrame::new(8));
        observer.on_guest_write(2, GuestFrame::new(9));
        assert_eq!(tracker.dirty_pages(), 2, "other VMs' writes are ignored");
        assert_eq!(
            tracker.drain(),
            vec![GuestFrame::new(8), GuestFrame::new(9)]
        );
        assert_eq!(tracker.dirty_pages(), 0);
    }
}
