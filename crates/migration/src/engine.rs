//! Pre-copy live migration over the consolidated host.
//!
//! The engine models the classic pre-copy protocol (Clark et al., and the
//! scenario the paper's Sec. 7 names as the next translation-coherence
//! stressor):
//!
//! 1. **Round 1** snapshots the VM's entire guest-physical image and
//!    copies it at a configurable per-slice bandwidth.  Every copied page
//!    is *write-protected* in the nested page table so later guest stores
//!    are caught — and each write-protect is a PTE store that must
//!    invalidate stale translations on every CPU that may cache them.
//!    This is the remap storm: under software shootdowns each store IPIs
//!    every CPU the VM ever ran on; under HATRIC it touches only the
//!    directory-listed sharers.
//! 2. **Rounds 2..n** re-copy the pages the [`DirtyTracker`] caught being
//!    written during the previous round, until the dirty set shrinks below
//!    `dirty_page_threshold` (convergence) or `max_rounds` is reached.
//! 3. **Stop-and-copy** pauses the VM completely (the scheduler stops
//!    placing its vCPUs), transfers the residual dirty pages and performs
//!    the final PTE hand-off stores.  The cycles spent here are the
//!    migration's *downtime* — the figure of merit that hardware
//!    translation coherence improves directly, because the per-page IPI
//!    broadcast and ack wait sit on the downtime path.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use hatric::metrics::MigrationStats;
use hatric::telemetry::{track, TraceEvent};
use hatric::{Platform, VmInstance};
use hatric_types::{CpuId, GuestFrame};

use crate::dirty::DirtyTracker;

/// Configuration of one live migration.
///
/// ```
/// use hatric_migration::MigrationParams;
///
/// // Migrate the VM in host slot 0, starting at slice 500, over a slow
/// // link (24 pages per slice).
/// let params = MigrationParams {
///     copy_pages_per_slice: 24,
///     ..MigrationParams::at(0, 500)
/// };
/// assert_eq!(params.vm_slot, 0);
/// assert!(params.max_rounds > 0, "stop-and-copy is always reached");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationParams {
    /// Host slot of the VM being migrated.
    pub vm_slot: usize,
    /// Scheduler slice (absolute, warmup included) at which pre-copy
    /// begins.
    pub start_slice: u64,
    /// Pages transferred per scheduler slice during pre-copy (the
    /// migration link bandwidth in pages per slice).
    pub copy_pages_per_slice: u64,
    /// Stop-and-copy begins once a round ends with at most this many dirty
    /// pages (the convergence criterion).
    pub dirty_page_threshold: u64,
    /// Forced stop-and-copy after this many pre-copy rounds, converged or
    /// not (guards against workloads that dirty faster than the link
    /// copies).
    pub max_rounds: u32,
    /// Cycles the migration thread spends transferring one page.
    pub page_copy_cycles: u64,
    /// Fixed stop-and-copy overhead: pausing the vCPUs and transferring
    /// their state to the destination (mechanism-independent).
    pub pause_resume_cycles: u64,
    /// Auto-convergence: once pre-copy has run this many rounds without
    /// converging, the host starts withholding scheduler slices from the
    /// migrating VM (one extra withheld slice per 8 for every round past
    /// the threshold, capped) so the dirty rate falls below the link rate.
    /// `0` disables throttling (the default).
    pub throttle_after_rounds: u32,
}

impl MigrationParams {
    /// Sensible defaults for a migration of VM `vm_slot` starting at
    /// `start_slice`: 64 pages per slice, convergence below 32 dirty
    /// pages, at most 8 rounds, 1500 cycles per page, 10k cycles of
    /// pause/resume overhead.
    #[must_use]
    pub fn at(vm_slot: usize, start_slice: u64) -> Self {
        Self {
            vm_slot,
            start_slice,
            copy_pages_per_slice: 64,
            dirty_page_threshold: 32,
            max_rounds: 8,
            page_copy_cycles: 1_500,
            pause_resume_cycles: 10_000,
            throttle_after_rounds: 0,
        }
    }
}

/// Where in the protocol a migration currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Iterative copy rounds; the VM keeps running.
    PreCopy,
    /// The VM is paused; the next advance performs the final transfer.
    StopAndCopy,
    /// Migration finished; the VM runs again.
    Completed,
    /// Migration torn down before hand-off ([`MigrationEngine::abort`]):
    /// the VM keeps running on the source as if the migration never
    /// happened.
    Aborted,
    /// Pre-copy was force-escalated to post-copy
    /// ([`MigrationEngine::escalate`]): the source's part is over; the
    /// destination pulls the residue.
    Escalated,
}

impl MigrationPhase {
    /// Whether the phase is terminal (the engine will do no more work).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            MigrationPhase::Completed | MigrationPhase::Aborted | MigrationPhase::Escalated
        )
    }
}

/// Drives one pre-copy live migration, one scheduler slice at a time.
#[derive(Debug)]
pub struct MigrationEngine {
    params: MigrationParams,
    phase: MigrationPhase,
    round: u32,
    copy_queue: VecDeque<GuestFrame>,
    /// Residual dirty set carried into stop-and-copy.
    final_set: Vec<GuestFrame>,
    tracker: DirtyTracker,
    stats: MigrationStats,
    /// `(start_cycle, pages_copied_at_start)` of the in-flight pre-copy
    /// round, captured lazily on its first advance so the round span's
    /// `ts` sits on the migration thread's cycle counter.  Also the
    /// round counter's anchor: `stats.precopy_rounds` ticks exactly when
    /// a round span is (re-)anchored, so rounds are counted in one place.
    round_span: Option<(u64, u64)>,
    /// Pages transferred since the last [`MigrationEngine::drain_outbox`]
    /// call, in copy order — the wire the cluster tier forwards to the
    /// destination host's `MigrationReceiver`.  Unobserved (and bounded by
    /// the VM image) in single-host runs.
    outbox: Vec<GuestFrame>,
    /// A `StuckPreCopy` fault is holding the engine: advances are total
    /// no-ops (no pages copied, no rounds anchored or retired) until the
    /// fault expires.
    stalled: bool,
}

impl MigrationEngine {
    /// Starts a migration of `params.vm_slot`: snapshots the VM's complete
    /// guest-physical image as the round-1 copy set.  The caller installs
    /// [`MigrationEngine::observer`] on the platform so dirty tracking is
    /// live from the first copied page.
    ///
    /// # Panics
    ///
    /// Panics if `params.vm_slot` is out of range.
    #[must_use]
    pub fn new(params: MigrationParams, vms: &[VmInstance]) -> Self {
        let image = vms[params.vm_slot].nested_page_table().mapped_gpps();
        let stats = MigrationStats {
            migrations_started: 1,
            ..MigrationStats::default()
        };
        Self {
            params,
            phase: MigrationPhase::PreCopy,
            round: 1,
            copy_queue: image.into(),
            final_set: Vec::new(),
            tracker: DirtyTracker::new(params.vm_slot),
            stats,
            round_span: None,
            outbox: Vec::new(),
            stalled: false,
        }
    }

    /// The configuration this migration runs with.
    #[must_use]
    pub fn params(&self) -> &MigrationParams {
        &self.params
    }

    /// Host slot of the migrating VM.
    #[must_use]
    pub fn vm_slot(&self) -> usize {
        self.params.vm_slot
    }

    /// Current protocol phase.
    #[must_use]
    pub fn phase(&self) -> MigrationPhase {
        self.phase
    }

    /// Current pre-copy round (1-based).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether the VM must be fully paused (stop-and-copy).
    #[must_use]
    pub fn wants_vm_paused(&self) -> bool {
        self.phase == MigrationPhase::StopAndCopy
    }

    /// Pages still awaiting transfer: the in-flight round's copy queue,
    /// the residual set carried into stop-and-copy, and pages dirtied
    /// since the round began.  Zero once the migration completed.  This
    /// is the dirty-page gauge the counter timelines sample; it only
    /// reads engine state.
    #[must_use]
    pub fn pending_pages(&self) -> u64 {
        if self.phase.is_terminal() {
            return 0;
        }
        self.copy_queue.len() as u64 + self.final_set.len() as u64 + self.tracker.dirty_pages()
    }

    /// Whether the engine has no more work to do: the migration
    /// completed, aborted, or escalated to post-copy.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.phase.is_terminal()
    }

    /// The dirty-tracking observer to install on the platform while this
    /// migration runs.
    #[must_use]
    pub fn observer(&self) -> Box<dyn hatric::WriteObserver> {
        self.tracker.observer()
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Clears the statistics while keeping protocol state (phase, round,
    /// copy queue) intact — called at the warmup/measured boundary.  A
    /// migration still in flight re-seeds `migrations_started` (and its
    /// in-progress round), so a report covering the measured phase keeps
    /// the `started >= completed` invariant even when the migration began
    /// during warmup.
    pub fn reset_stats(&mut self) {
        self.stats = if self.is_complete() {
            MigrationStats::default()
        } else {
            MigrationStats {
                migrations_started: 1,
                ..MigrationStats::default()
            }
        };
        // The platform's cycle counters (and trace sink) restart at the
        // measured boundary, so a span anchored to a warmup cycle would
        // dangle — re-anchor the in-flight round on its next advance.
        // Re-anchoring also re-counts the in-flight round (the counter
        // ticks at anchor time), so the measured report still shows the
        // round the window opened inside.
        self.round_span = None;
    }

    /// Advances the migration by one scheduler slice.  The caller runs this
    /// *after* the slice's guest accesses, with `initiator` declared (via
    /// [`Platform::set_occupant`]) as occupied by the migrating VM so the
    /// migration thread's cycles are charged against it.
    ///
    /// # Panics
    ///
    /// Panics if the engine's VM slot or `initiator` is out of range.
    pub fn advance(&mut self, platform: &mut Platform, vms: &mut [VmInstance], initiator: CpuId) {
        if self.stalled && !self.phase.is_terminal() {
            // A stuck round makes no progress at all: nothing is copied,
            // no span is anchored, no round retires.  Only the stall
            // counter moves, so an expired fault resumes byte-identically
            // to a run that started the round later.
            self.stats.stalled_slices += 1;
            return;
        }
        match self.phase {
            MigrationPhase::PreCopy => self.advance_precopy(platform, vms, initiator),
            MigrationPhase::StopAndCopy => self.stop_and_copy(platform, vms, initiator),
            MigrationPhase::Completed | MigrationPhase::Aborted | MigrationPhase::Escalated => {}
        }
    }

    fn advance_precopy(&mut self, platform: &mut Platform, vms: &mut [VmInstance], cpu: CpuId) {
        if self.round_span.is_none() {
            self.round_span = Some((
                platform.cycles_per_cpu()[cpu.index()],
                self.stats.pages_copied,
            ));
            // The single place rounds are counted: when their span is
            // anchored.  Seeding the counter anywhere else (construction,
            // stats reset, the round += 1 transition) double-counts once a
            // destination-side receiver also carries a MigrationStats.
            self.stats.precopy_rounds += 1;
        }
        for _ in 0..self.params.copy_pages_per_slice {
            let Some(gpp) = self.copy_queue.pop_front() else {
                break;
            };
            self.copy_page(platform, vms, cpu, gpp);
        }
        if !self.copy_queue.is_empty() {
            return;
        }
        // Round over: what did the guest dirty while we copied?
        let dirty = self.tracker.drain();
        self.stats.pages_redirtied += dirty.len() as u64;
        if platform.trace_enabled() {
            let (start, pages_at_start) = self.round_span.unwrap_or((0, 0));
            let now = platform.cycles_per_cpu()[cpu.index()];
            platform.trace_event(TraceEvent {
                name: "precopy_round",
                cat: "migration",
                track: track::HYPERVISOR,
                ts: start,
                dur: now.saturating_sub(start),
                args: vec![
                    ("round", u64::from(self.round)),
                    ("copied", self.stats.pages_copied - pages_at_start),
                    ("dirtied", dirty.len() as u64),
                ],
            });
        }
        self.round_span = None;
        if dirty.len() as u64 <= self.params.dirty_page_threshold
            || self.round >= self.params.max_rounds
        {
            // Converged (or out of patience): freeze the VM and hand the
            // residue over in one downtime burst.
            self.final_set = dirty;
            self.phase = MigrationPhase::StopAndCopy;
        } else {
            self.copy_queue = dirty.into();
            self.round += 1;
        }
    }

    fn stop_and_copy(&mut self, platform: &mut Platform, vms: &mut [VmInstance], cpu: CpuId) {
        let before = platform.cycles_per_cpu()[cpu.index()];
        // Pausing the vCPUs and shipping their state is mechanism-
        // independent fixed cost.
        platform.charge_hypervisor_cycles(vms, cpu, self.params.pause_resume_cycles);
        // The residual dirty set.  The extra drain is defensive: under
        // `ConsolidatedHost` the pause takes effect before the VM runs
        // again, so it yields nothing — but an external driver whose pause
        // lags the convergence decision would leak late writes without it.
        let mut residue = std::mem::take(&mut self.final_set);
        let late = self.tracker.drain();
        self.stats.pages_redirtied += late.len() as u64;
        residue.extend(late);
        let residual_pages = residue.len() as u64;
        for gpp in residue {
            self.copy_page(platform, vms, cpu, gpp);
        }
        // Final hand-off: the source revokes the VM's nested page table
        // (KVM's INVEPT on the source side).  One store to the root node's
        // line — and its translation-coherence bill, which is where the
        // mechanisms part ways even on a zero-residue migration: a software
        // host broadcasts IPIs and waits for acks inside the downtime
        // window; HATRIC sends directory messages.
        let slot = self.params.vm_slot;
        let root = vms[slot].nested_page_table().node_frames()[0];
        platform.remap_coherence(vms, slot, cpu, root.addr_at(0));
        self.stats.migration_remaps += 1;
        let after = platform.cycles_per_cpu()[cpu.index()];
        if platform.trace_enabled() {
            platform.trace_event(TraceEvent {
                name: "stop_and_copy",
                cat: "migration",
                track: track::HYPERVISOR,
                ts: before,
                dur: after.saturating_sub(before),
                args: vec![
                    ("residual_pages", residual_pages),
                    ("downtime_cycles", after.saturating_sub(before)),
                ],
            });
        }
        self.stats.downtime_cycles += after - before;
        self.stats.migrations_completed += 1;
        self.phase = MigrationPhase::Completed;
    }

    /// Transfers one page: the copy itself plus the nested-PTE store
    /// (write-protect during pre-copy, final hand-off during
    /// stop-and-copy) with its translation-coherence consequences.
    fn copy_page(
        &mut self,
        platform: &mut Platform,
        vms: &mut [VmInstance],
        cpu: CpuId,
        gpp: GuestFrame,
    ) {
        let slot = self.params.vm_slot;
        if vms[slot].nested_page_table().translate(gpp).is_none() {
            return;
        }
        platform.charge_hypervisor_cycles(vms, cpu, self.params.page_copy_cycles);
        if platform.hypervisor_pte_write(vms, slot, cpu, gpp) {
            self.stats.migration_remaps += 1;
        }
        // The transfer just captured the page's current content; a mark
        // left by a store *earlier this round* is satisfied by this copy.
        // Only stores after this point must force a re-send.
        self.tracker.unmark(gpp);
        self.stats.pages_copied += 1;
        self.outbox.push(gpp);
    }

    /// Takes the pages transferred since the last drain, in copy order.
    /// The cluster tier forwards them to the destination host's
    /// [`MigrationReceiver`](crate::MigrationReceiver) at the epoch
    /// boundary; single-host runs never call this and the outbox stays
    /// bounded by the VM's image (pages are deduplicated per round by the
    /// dirty tracker, not here — re-sends are genuine wire traffic).
    pub fn drain_outbox(&mut self) -> Vec<GuestFrame> {
        std::mem::take(&mut self.outbox)
    }

    /// Puts pages back at the *front* of the outbox, in order — a degraded
    /// link delivered only part of an epoch's drain and the rest stays
    /// queued on the wire (nothing is lost, nothing is re-copied).
    pub fn requeue_outbox(&mut self, pages: Vec<GuestFrame>) {
        let tail = std::mem::replace(&mut self.outbox, pages);
        self.outbox.extend(tail);
    }

    /// Returns pages the wire *dropped* (a link blackout) to the front of
    /// the copy queue: each one is a genuine re-send the source must pay
    /// for again.  Counted in `pages_dropped`.
    pub fn requeue_copy(&mut self, pages: Vec<GuestFrame>) {
        self.stats.pages_dropped += pages.len() as u64;
        for gpp in pages.into_iter().rev() {
            self.copy_queue.push_front(gpp);
        }
    }

    /// Freezes (or thaws) the engine: while stalled, advances are total
    /// no-ops apart from the `stalled_slices` counter.  The cluster's
    /// non-convergence timeout keeps counting against a stalled
    /// migration, which is how a `StuckPreCopy` fault escalates.
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Whether a `StuckPreCopy` fault currently holds the engine.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Tears the migration down before hand-off: clears every queue (the
    /// unsent outbox is discarded — the destination rolls back its own
    /// copy separately), drains the dirty tracker, and parks the engine
    /// in [`MigrationPhase::Aborted`].  The VM keeps running on the
    /// source as if the migration never happened.  Returns the number of
    /// outbox pages discarded.
    pub fn abort(&mut self) -> u64 {
        if self.phase.is_terminal() {
            return 0;
        }
        let discarded = self.outbox.len() as u64;
        self.stats.pages_discarded += discarded;
        self.stats.migrations_aborted += 1;
        self.outbox.clear();
        self.copy_queue.clear();
        self.final_set.clear();
        let _ = self.tracker.drain();
        self.round_span = None;
        self.phase = MigrationPhase::Aborted;
        discarded
    }

    /// Force-escalates a non-converging pre-copy to post-copy: returns
    /// the still-unsent page set (copy queue ∪ residual set ∪ dirty
    /// tracker, ascending and deduplicated) for the destination to pull,
    /// and parks the engine in [`MigrationPhase::Escalated`].  The caller
    /// flips the VM to the destination and hands this set to
    /// [`MigrationReceiver::begin_post_copy`](crate::MigrationReceiver::begin_post_copy).
    pub fn escalate(&mut self) -> Vec<GuestFrame> {
        if self.phase.is_terminal() {
            return Vec::new();
        }
        let mut pending: Vec<GuestFrame> = self.copy_queue.drain(..).collect();
        pending.append(&mut self.final_set);
        pending.extend(self.tracker.drain());
        pending.sort_unstable();
        pending.dedup();
        self.stats.migrations_escalated += 1;
        self.round_span = None;
        self.phase = MigrationPhase::Escalated;
        pending
    }

    /// Auto-convergence throttle level for the current round: `0` while
    /// throttling is disabled, pre-copy is inside its grace rounds, or the
    /// migration left pre-copy; otherwise how many of every 8 scheduler
    /// slices the host should withhold from the migrating VM (capped at 6
    /// so the guest always keeps making some progress).
    #[must_use]
    pub fn throttle_level(&self) -> u32 {
        if self.params.throttle_after_rounds == 0
            || self.phase != MigrationPhase::PreCopy
            || self.round <= self.params.throttle_after_rounds
        {
            return 0;
        }
        (self.round - self.params.throttle_after_rounds).min(6)
    }

    /// Records that the scheduler withheld one slice from the migrating VM
    /// because of [`Self::throttle_level`] (auto-convergence accounting).
    pub fn note_throttled(&mut self) {
        self.stats.throttled_slices += 1;
    }
}
