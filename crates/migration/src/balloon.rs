//! Memory ballooning between co-located VMs.
//!
//! A balloon driver inflates inside one VM (reclaiming die-stacked
//! capacity from it) and the hypervisor grants the reclaimed room to
//! another VM.  Both halves generate translation-coherence traffic on the
//! shared platform: every reclaimed page that was resident in fast memory
//! is demoted — an unmap+remap through the nested page table — and the
//! grantee refills the new room through ordinary demand promotions, each
//! of which is another remap.  On a software-shootdown host the combined
//! storm taxes every co-located VM; under HATRIC it stays confined to the
//! directory's sharer lists.

use serde::{Deserialize, Serialize};

use hatric::metrics::MigrationStats;
use hatric::{Platform, VmInstance};
use hatric_types::CpuId;

/// Configuration of one balloon operation.
///
/// ```
/// use hatric_migration::BalloonParams;
///
/// // Move 300 pages of die-stacked capacity from VM 1 to VM 0, starting
/// // at slice 750.
/// let params = BalloonParams::at(1, 0, 300, 750);
/// assert_eq!((params.from_slot, params.to_slot), (1, 0));
/// assert!(params.pages_per_slice > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalloonParams {
    /// VM whose balloon inflates (loses die-stacked capacity).
    pub from_slot: usize,
    /// VM granted the reclaimed capacity.
    pub to_slot: usize,
    /// Total pages of capacity to move.
    pub pages: u64,
    /// Scheduler slice (absolute, warmup included) at which inflation
    /// begins.
    pub start_slice: u64,
    /// Capacity pages moved per scheduler slice (inflation rate).
    pub pages_per_slice: u64,
}

impl BalloonParams {
    /// A balloon moving `pages` of capacity from `from_slot` to `to_slot`
    /// starting at `start_slice`, 16 pages per slice.
    #[must_use]
    pub fn at(from_slot: usize, to_slot: usize, pages: u64, start_slice: u64) -> Self {
        Self {
            from_slot,
            to_slot,
            pages,
            start_slice,
            pages_per_slice: 16,
        }
    }
}

/// Drives one balloon operation, one scheduler slice at a time.
#[derive(Debug)]
pub struct BalloonDriver {
    params: BalloonParams,
    moved: u64,
    stats: MigrationStats,
}

impl BalloonDriver {
    /// Creates the driver (nothing moves until [`BalloonDriver::advance`]).
    #[must_use]
    pub fn new(params: BalloonParams) -> Self {
        Self {
            params,
            moved: 0,
            stats: MigrationStats::default(),
        }
    }

    /// The configuration this balloon runs with.
    #[must_use]
    pub fn params(&self) -> &BalloonParams {
        &self.params
    }

    /// Capacity pages moved so far.
    #[must_use]
    pub fn moved_pages(&self) -> u64 {
        self.moved
    }

    /// Whether the full transfer has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.moved >= self.params.pages
    }

    /// Statistics accumulated so far (only the balloon fields are used).
    #[must_use]
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Clears the statistics while keeping transfer progress intact.
    pub fn reset_stats(&mut self) {
        self.stats = MigrationStats::default();
    }

    /// Moves up to `pages_per_slice` pages of capacity: reclaims them from
    /// the inflating VM (demoting evicted residents, each an unmap+remap
    /// with translation coherence) and grants them to the grantee.  The
    /// caller runs this after the slice's guest accesses, with `initiator`
    /// declared as occupied by the inflating VM.
    ///
    /// # Panics
    ///
    /// Panics if a configured slot or `initiator` is out of range.
    pub fn advance(&mut self, platform: &mut Platform, vms: &mut [VmInstance], initiator: CpuId) {
        if self.is_complete() {
            return;
        }
        // Never grant more than actually came out of the inflating VM: the
        // batch is clamped to its remaining capacity, and a dry VM ends the
        // transfer early.
        let available = vms[self.params.from_slot]
            .paging()
            .config()
            .fast_capacity_pages;
        let batch = self
            .params
            .pages_per_slice
            .min(self.params.pages - self.moved)
            .min(available);
        if batch == 0 {
            self.moved = self.params.pages;
            return;
        }
        let victims = vms[self.params.from_slot]
            .paging_manager_mut()
            .balloon_reclaim(batch);
        for victim in victims {
            platform.demote_to_slow(vms, self.params.from_slot, initiator, victim);
        }
        vms[self.params.to_slot]
            .paging_manager_mut()
            .balloon_grant(batch);
        self.moved += batch;
        self.stats.balloon_reclaimed_pages += batch;
        self.stats.balloon_granted_pages += batch;
    }
}
