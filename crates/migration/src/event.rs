//! Host events: hypervisor-driven operations that `hatric-host`'s
//! `HostConfig` schedules at absolute scheduler slices.

use serde::{Deserialize, Serialize};

use crate::balloon::BalloonParams;
use crate::engine::MigrationParams;

/// One scheduled hypervisor operation on the consolidated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostEvent {
    /// Live-migrate a VM (pre-copy, then stop-and-copy).
    Migrate(MigrationParams),
    /// Move die-stacked capacity from one VM to another.
    Balloon(BalloonParams),
}

impl HostEvent {
    /// The scheduler slice (absolute, warmup included) at which the event
    /// fires.
    #[must_use]
    pub fn start_slice(&self) -> u64 {
        match self {
            HostEvent::Migrate(p) => p.start_slice,
            HostEvent::Balloon(p) => p.start_slice,
        }
    }
}
