//! The destination side of an inter-host live migration.
//!
//! The source's [`MigrationEngine`](crate::MigrationEngine) streams pages
//! out of its [`drain_outbox`](crate::MigrationEngine::drain_outbox); the
//! cluster tier delivers them here at epoch boundaries.  The receiver
//! materializes each arrival through
//! [`Platform::hypervisor_map_page`](hatric::Platform::hypervisor_map_page):
//! a first-touch allocation (if the page is new to the destination)
//! followed by the hypervisor's nested-PTE store and its full
//! translation-coherence bill.  This is the **destination remap storm** —
//! the paper's Sec. 7 observation that translation coherence dominates
//! exactly when the hypervisor moves memory wholesale, and the half of
//! live migration the single-host model cannot see.
//!
//! Two intake modes:
//!
//! * **Pre-copy intake** — pages arrive ahead of the VM (the guest is
//!   still running on the source), so every store lands off the guest's
//!   critical path at background copy cost.
//! * **Post-copy** — the guest is already running *here* while its memory
//!   is still over there.  [`MigrationReceiver::begin_post_copy`] hands
//!   the receiver the outstanding page set; pages the destination guest
//!   has already faulted on (present in the destination nested page
//!   table) are *demanded*: the fetch crosses the wire on the access's
//!   critical path at [`ReceiverParams::fetch_page_cycles`].  The rest
//!   trickle in as background pull at [`ReceiverParams::page_copy_cycles`].

use serde::{Deserialize, Serialize};

use hatric::metrics::MigrationStats;
use hatric::telemetry::{track, TraceEvent};
use hatric::{Platform, VmInstance};
use hatric_types::{CpuId, GuestFrame};

use std::collections::{BTreeSet, VecDeque};

/// Configuration of one migration's destination side.
///
/// ```
/// use hatric_migration::ReceiverParams;
///
/// let params = ReceiverParams::for_slot(3);
/// assert_eq!(params.vm_slot, 3);
/// assert!(params.fetch_page_cycles > params.page_copy_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiverParams {
    /// Host slot (on the destination host) of the VM being received.
    pub vm_slot: usize,
    /// Arriving pages materialized per scheduler slice (the destination's
    /// intake bandwidth; backlog carries over).
    pub pages_per_slice: u64,
    /// Cycles the destination's migration thread spends landing one
    /// background page.
    pub page_copy_cycles: u64,
    /// Post-copy pages pulled per slice once the receiver drives the
    /// residual transfer itself.
    pub fetch_pages_per_slice: u64,
    /// Cycles one demand-fetch costs — a synchronous round trip to the
    /// source, paid on the faulting access's critical path.  Dwarfs
    /// `page_copy_cycles`: this is why post-copy trades downtime for
    /// degraded time.
    pub fetch_page_cycles: u64,
}

impl ReceiverParams {
    /// Destination-side defaults mirroring
    /// [`MigrationParams::at`](crate::MigrationParams::at): 64 pages per
    /// slice of intake, 1500 cycles per background page, 16 post-copy
    /// pulls per slice at 6000 cycles per demand fetch.
    #[must_use]
    pub fn for_slot(vm_slot: usize) -> Self {
        Self {
            vm_slot,
            pages_per_slice: 64,
            page_copy_cycles: 1_500,
            fetch_pages_per_slice: 16,
            fetch_page_cycles: 6_000,
        }
    }
}

/// Materializes one migrating VM's pages on the destination host.
#[derive(Debug)]
pub struct MigrationReceiver {
    params: ReceiverParams,
    /// Pages delivered by the cluster wire, awaiting materialization.
    inbox: VecDeque<GuestFrame>,
    /// Post-copy: pages still owned by the source, in ascending order so
    /// background pulls are deterministic.
    outstanding: BTreeSet<GuestFrame>,
    post_copy: bool,
    source_done: bool,
    stats: MigrationStats,
    /// Pages this receiver *newly mapped* on the destination (first-touch
    /// remaps it registered), in landing order.  These are the mappings a
    /// rollback must un-register if the migration dies before hand-off;
    /// pages that already had a destination mapping belong to the slot's
    /// previous occupant and are never touched.
    landed: Vec<GuestFrame>,
}

impl MigrationReceiver {
    /// A receiver for the VM in destination slot `params.vm_slot`, in
    /// pre-copy intake mode with an empty inbox.
    #[must_use]
    pub fn new(params: ReceiverParams) -> Self {
        Self {
            params,
            inbox: VecDeque::new(),
            outstanding: BTreeSet::new(),
            post_copy: false,
            source_done: false,
            stats: MigrationStats::default(),
            landed: Vec::new(),
        }
    }

    /// The configuration this receiver runs with.
    #[must_use]
    pub fn params(&self) -> &ReceiverParams {
        &self.params
    }

    /// Destination host slot of the VM being received.
    #[must_use]
    pub fn vm_slot(&self) -> usize {
        self.params.vm_slot
    }

    /// Queues pages the source transferred this epoch (in copy order —
    /// the wire preserves it).
    pub fn enqueue_pages(&mut self, pages: impl IntoIterator<Item = GuestFrame>) {
        self.inbox.extend(pages);
    }

    /// Switches to post-copy: the VM now runs on the destination while
    /// `outstanding` pages are still on the source.  Pages already queued
    /// in the inbox keep landing as background intake.
    pub fn begin_post_copy(&mut self, outstanding: impl IntoIterator<Item = GuestFrame>) {
        self.outstanding.extend(outstanding);
        self.post_copy = true;
    }

    /// Whether the receiver is in post-copy mode.
    #[must_use]
    pub fn is_post_copy(&self) -> bool {
        self.post_copy
    }

    /// Declares that the source has finished sending (its engine
    /// completed): once the inbox and the outstanding set drain, the
    /// receiver is complete.
    pub fn mark_source_done(&mut self) {
        self.source_done = true;
    }

    /// Pages not yet materialized on the destination (inbox backlog plus
    /// post-copy outstanding set) — the counter-timeline gauge.
    #[must_use]
    pub fn pending_pages(&self) -> u64 {
        self.inbox.len() as u64 + self.outstanding.len() as u64
    }

    /// Whether every page has landed and the source declared itself done.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.source_done && self.inbox.is_empty() && self.outstanding.is_empty()
    }

    /// Tears the intake down: discards the inbox backlog and the
    /// outstanding post-copy set, marks the receiver complete (so a later
    /// `attach_receiver` on the slot does not trip the still-draining
    /// assertion), and returns `(pages_discarded, landed)` — the count of
    /// pages thrown away un-materialized, and the pages this receiver had
    /// newly mapped, which the caller rolls back (un-registers the
    /// first-touch remaps) when the migration dies before hand-off.
    pub fn abort(&mut self) -> (u64, Vec<GuestFrame>) {
        let discarded = self.pending_pages();
        self.stats.pages_discarded += discarded;
        self.inbox.clear();
        self.outstanding.clear();
        self.post_copy = false;
        self.source_done = true;
        (discarded, std::mem::take(&mut self.landed))
    }

    /// Statistics accumulated so far (destination-side only; the cluster
    /// merges them with the source engine's).
    #[must_use]
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Clears the statistics while keeping the intake state intact —
    /// called at the warmup/measured boundary, mirroring
    /// [`MigrationEngine::reset_stats`](crate::MigrationEngine::reset_stats).
    pub fn reset_stats(&mut self) {
        self.stats = MigrationStats::default();
    }

    /// Advances the destination by one scheduler slice: materializes up to
    /// `pages_per_slice` arrivals from the inbox, then (in post-copy mode)
    /// pulls up to `fetch_pages_per_slice` outstanding pages — demanded
    /// pages first, at critical-path fetch cost.  The caller runs this
    /// with `initiator` declared (via
    /// [`Platform::set_occupant`](hatric::Platform::set_occupant)) as
    /// occupied by the receiving VM so intake cycles are charged against
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the receiver's VM slot or `initiator` is out of range.
    pub fn advance(&mut self, platform: &mut Platform, vms: &mut [VmInstance], initiator: CpuId) {
        let before = platform.cycles_per_cpu()[initiator.index()];
        let (mut landed, mut fetched) = (0u64, 0u64);
        for _ in 0..self.params.pages_per_slice {
            let Some(gpp) = self.inbox.pop_front() else {
                break;
            };
            // A page that arrives over the wire is no longer outstanding,
            // whichever mode queued it.
            self.outstanding.remove(&gpp);
            self.land_page(platform, vms, initiator, self.params.page_copy_cycles, gpp);
            landed += 1;
        }
        if self.post_copy {
            for _ in 0..self.params.fetch_pages_per_slice {
                let Some(gpp) = self.next_pull(vms) else {
                    break;
                };
                self.outstanding.remove(&gpp);
                // Demanded pages pay the synchronous round trip; the rest
                // are background trickle.
                let demanded = vms[self.params.vm_slot]
                    .nested_page_table()
                    .translate(gpp)
                    .is_some();
                let cycles = if demanded {
                    self.stats.postcopy_fetched_pages += 1;
                    fetched += 1;
                    self.params.fetch_page_cycles
                } else {
                    self.params.page_copy_cycles
                };
                self.land_page(platform, vms, initiator, cycles, gpp);
                landed += 1;
            }
        }
        if landed > 0 && platform.trace_enabled() {
            let after = platform.cycles_per_cpu()[initiator.index()];
            platform.trace_event(TraceEvent {
                name: "receive_pages",
                cat: "migration",
                track: track::HYPERVISOR,
                ts: before,
                dur: after.saturating_sub(before),
                args: vec![
                    ("landed", landed),
                    ("demand_fetched", fetched),
                    ("backlog", self.pending_pages()),
                ],
            });
        }
    }

    /// The next outstanding page to pull: a *demanded* one (already
    /// faulted in by the destination guest, so someone is waiting on its
    /// content) if any exists, else the lowest-numbered background page.
    fn next_pull(&self, vms: &[VmInstance]) -> Option<GuestFrame> {
        let npt = vms[self.params.vm_slot].nested_page_table();
        self.outstanding
            .iter()
            .copied()
            .find(|&gpp| npt.translate(gpp).is_some())
            .or_else(|| self.outstanding.iter().next().copied())
    }

    /// Lands one page: the transfer cycles plus the nested-PTE store with
    /// its translation-coherence consequences.
    fn land_page(
        &mut self,
        platform: &mut Platform,
        vms: &mut [VmInstance],
        initiator: CpuId,
        transfer_cycles: u64,
        gpp: GuestFrame,
    ) {
        let newly_mapped = vms[self.params.vm_slot]
            .nested_page_table()
            .translate(gpp)
            .is_none();
        platform.charge_hypervisor_cycles(vms, initiator, transfer_cycles);
        if platform.hypervisor_map_page(vms, self.params.vm_slot, initiator, gpp) {
            self.stats.migration_remaps += 1;
        }
        if newly_mapped {
            self.landed.push(gpp);
        }
        self.stats.received_pages += 1;
    }
}
