//! # hatric-migration
//!
//! Live VM migration and memory ballooning for the consolidated host —
//! the remap-storm sources the paper's Sec. 7 names beyond die-stacked
//! paging.  Both are hypervisor-driven bulk page operations whose nested
//! page-table stores must keep every CPU's translation structures
//! coherent, so both turn into IPI/VM-exit/flush storms under software
//! shootdowns and into quiet directory-confined invalidations under
//! HATRIC:
//!
//! * [`MigrationEngine`] — pre-copy live migration: a full-image first
//!   round, dirty-rate-driven re-copy rounds (fed by a [`DirtyTracker`]
//!   installed as the platform's write observer), and a stop-and-copy
//!   phase whose cycles are the migration's *downtime*.
//! * [`MigrationReceiver`] — the destination side of an *inter-host*
//!   migration: arriving pages are materialized as first-touch faults
//!   plus nested-PTE stores (the destination remap storm), with a
//!   post-copy mode that demand-fetches pages the relocated guest is
//!   already waiting on.
//! * [`BalloonDriver`] — balloon inflation in one VM and a capacity grant
//!   to another, demoting evicted residents and refilling through demand
//!   promotions.
//! * [`HostEvent`] — the schedulable wrapper `hatric-host` executes
//!   per slice.
//!
//! The engines operate directly on [`hatric::Platform`] +
//! [`hatric::VmInstance`] and charge every cycle through the same
//! occupancy-aware accounting the guest pipeline uses, so victim VMs see
//! migration-induced interference exactly the way they see paging-induced
//! interference.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod balloon;
pub mod dirty;
pub mod engine;
pub mod event;
pub mod receiver;

pub use balloon::{BalloonDriver, BalloonParams};
pub use dirty::{DirtyBitmap, DirtyTracker};
pub use engine::{MigrationEngine, MigrationParams, MigrationPhase};
pub use event::HostEvent;
pub use receiver::{MigrationReceiver, ReceiverParams};

// Re-export the stats type engines report with, so callers need not import
// the core crate for it.
pub use hatric::metrics::MigrationStats;
