//! Deterministic, seeded fault injection.
//!
//! The paper's claim is that HATRIC keeps translation coherence cheap
//! *under stress*; this crate supplies the stress that is not benign.  A
//! [`FaultPlan`] expands a seed into a fixed schedule of typed
//! [`FaultEvent`]s *before* the cluster runs — exactly the
//! `ChurnStream` discipline from `hatric-cluster`: the schedule is data,
//! not a live random source, so a fault storm is byte-identical for any
//! worker-thread count and both slice-engine backends.  Faults fire from
//! simulated epochs, never wall-clock.
//!
//! The event taxonomy covers the failure modes a live-migration fleet
//! actually sees:
//!
//! * **Host crash** — the host drops out at the epoch boundary; its VMs
//!   cold-restart elsewhere and any migration it anchored aborts or
//!   completes per protocol phase.
//! * **Link degradation / blackout** — the migration wire delivers a
//!   fraction of its pages (degrade) or drops them outright while the
//!   source is still in pre-copy (blackout); drops are re-sent.
//! * **DRAM brownout** — a transient service-latency multiplier on a
//!   host's memory devices, applied through the existing leaky-bucket
//!   queueing path so both engine backends observe identical timing.
//! * **Stuck pre-copy** — the source's copy rounds stall for a few
//!   epochs, feeding the cluster's non-convergence escalation timeout.
//!
//! A [`FaultClock`] replays a validated schedule in epoch order; the
//! cluster pops due events at each boundary.

use serde::{Deserialize, Serialize};

use hatric_types::ConfigError;

use std::collections::VecDeque;

/// One fault, due at the start of `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Epoch (0-based, counted over the whole run including warmup) at
    /// whose boundary the fault fires.
    pub epoch: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// The kinds of fault the cluster reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The host dies at the epoch boundary and never comes back: its
    /// VMs are cold-restarted elsewhere (dirty state lost) and any
    /// migration it anchored is aborted or completed per protocol phase.
    HostCrash {
        /// Index of the crashing host.
        host: usize,
    },
    /// The host's migration link delivers only `1/factor` of its usual
    /// page budget for `epochs` epochs; undelivered pages stay queued
    /// (nothing is lost).
    LinkDegrade {
        /// Host whose outbound migration wire degrades.
        host: usize,
        /// Bandwidth divisor (≥ 2).
        factor: u64,
        /// Duration in epochs.
        epochs: u64,
    },
    /// The host's migration link drops every page a pre-copy source
    /// puts on the wire for `epochs` epochs; each drop must be re-sent.
    LinkBlackout {
        /// Host whose outbound migration wire blacks out.
        host: usize,
        /// Duration in epochs.
        epochs: u64,
    },
    /// The host's DRAM devices serve lines `multiplier_x100/100` times
    /// slower for `epochs` epochs (a fixed-point percentage so the
    /// timing stays integer-exact; `100` is a no-op).
    DramBrownout {
        /// Host whose memory devices brown out.
        host: usize,
        /// Service-latency multiplier × 100 (e.g. `250` = 2.5×).
        multiplier_x100: u64,
        /// Duration in epochs.
        epochs: u64,
    },
    /// Any pre-copy migration sourced on the host makes no progress for
    /// `epochs` epochs (rounds freeze; the cluster's non-convergence
    /// timeout keeps counting).
    StuckPreCopy {
        /// Host whose outbound pre-copy stalls.
        host: usize,
        /// Duration in epochs.
        epochs: u64,
    },
}

impl FaultKind {
    /// The host the fault lands on.
    #[must_use]
    pub fn host(&self) -> usize {
        match *self {
            FaultKind::HostCrash { host }
            | FaultKind::LinkDegrade { host, .. }
            | FaultKind::LinkBlackout { host, .. }
            | FaultKind::DramBrownout { host, .. }
            | FaultKind::StuckPreCopy { host, .. } => host,
        }
    }

    /// A short label for trace spans and logs.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::HostCrash { .. } => "host_crash",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::LinkBlackout { .. } => "link_blackout",
            FaultKind::DramBrownout { .. } => "dram_brownout",
            FaultKind::StuckPreCopy { .. } => "stuck_precopy",
        }
    }
}

/// Relative draw weights for the fault classes a [`FaultPlan`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWeights {
    /// Weight of [`FaultKind::HostCrash`].
    pub crash: u64,
    /// Weight of the link faults (split evenly between degrade and
    /// blackout by a follow-up draw).
    pub link: u64,
    /// Weight of [`FaultKind::DramBrownout`].
    pub brownout: u64,
    /// Weight of [`FaultKind::StuckPreCopy`].
    pub stall: u64,
}

impl Default for FaultWeights {
    /// Crashes rare, everything else evenly likely: `1 : 3 : 3 : 3`.
    fn default() -> Self {
        Self {
            crash: 1,
            link: 3,
            brownout: 3,
            stall: 3,
        }
    }
}

impl FaultWeights {
    fn total(&self) -> u64 {
        self.crash + self.link + self.brownout + self.stall
    }
}

/// splitmix64 — the tiny deterministic generator the churn and workload
/// layers also build on.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

/// Expands a seed into a deterministic fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed.
    pub seed: u64,
    /// Number of hosts faults can land on.
    pub hosts: usize,
    /// Mean epochs between faults (a fault is drawn per epoch with
    /// probability `1/period`; `0` disables injection entirely).
    pub period: u64,
    /// Relative class weights.
    pub weights: FaultWeights,
    /// Hard cap on emitted [`FaultKind::HostCrash`] events (a seeded
    /// storm should not raze the fleet; crash draws past the cap are
    /// re-routed to link degradation).
    pub max_crashes: u64,
}

impl FaultPlan {
    /// A plan drawing roughly one fault every `period` epochs with the
    /// default class weights and at most one crash.
    #[must_use]
    pub fn new(seed: u64, hosts: usize, period: u64) -> Self {
        Self {
            seed,
            hosts,
            period,
            weights: FaultWeights::default(),
            max_crashes: 1,
        }
    }

    /// Checks the plan's internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFaultPlan`] when the plan injects (nonzero
    /// `period`) but has no hosts to land faults on, or all class
    /// weights are zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.period == 0 {
            return Ok(());
        }
        if self.hosts == 0 {
            return Err(ConfigError::fault_plan(
                "a nonzero-period plan needs at least one host",
            ));
        }
        if self.weights.total() == 0 {
            return Err(ConfigError::fault_plan("class weights sum to zero"));
        }
        Ok(())
    }

    /// The faults due over `epochs` epochs, in epoch order.  The draw
    /// per epoch: fault-or-not, then the class (by weight), then the
    /// host and the class's parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`].
    pub fn generate(&self, epochs: u64) -> Result<Vec<FaultEvent>, ConfigError> {
        self.validate()?;
        if self.period == 0 {
            return Ok(Vec::new());
        }
        let mut state = self.seed ^ 0xfau64.rotate_left(32);
        let mut draw = || {
            splitmix64(&mut state);
            state
        };
        let total = self.weights.total();
        let mut crashes = 0u64;
        let mut events = Vec::new();
        for epoch in 0..epochs {
            if draw() % self.period != 0 {
                continue;
            }
            let mut pick = draw() % total;
            let host = (draw() % self.hosts as u64) as usize;
            let mut class = 3usize; // stall
            for (idx, weight) in [self.weights.crash, self.weights.link, self.weights.brownout]
                .into_iter()
                .enumerate()
            {
                if pick < weight {
                    class = idx;
                    break;
                }
                pick -= weight;
            }
            if class == 0 && crashes >= self.max_crashes {
                class = 1; // crash budget spent: degrade the link instead
            }
            let kind = match class {
                0 => {
                    crashes += 1;
                    FaultKind::HostCrash { host }
                }
                1 => {
                    if draw() % 2 == 0 {
                        FaultKind::LinkDegrade {
                            host,
                            factor: 2 + draw() % 3,
                            epochs: 1 + draw() % 3,
                        }
                    } else {
                        FaultKind::LinkBlackout {
                            host,
                            epochs: 1 + draw() % 2,
                        }
                    }
                }
                2 => FaultKind::DramBrownout {
                    host,
                    multiplier_x100: 150 + 50 * (draw() % 4),
                    epochs: 1 + draw() % 3,
                },
                _ => FaultKind::StuckPreCopy {
                    host,
                    epochs: 1 + draw() % 3,
                },
            };
            events.push(FaultEvent { epoch, kind });
        }
        Ok(events)
    }
}

/// Checks that a schedule is epoch-ordered and every event names a host
/// below `hosts`.
///
/// # Errors
///
/// [`ConfigError::BadFaultPlan`] naming the first offending event.
pub fn validate_schedule(events: &[FaultEvent], hosts: usize) -> Result<(), ConfigError> {
    for pair in events.windows(2) {
        if pair[1].epoch < pair[0].epoch {
            return Err(ConfigError::fault_plan(format!(
                "schedule out of order: epoch {} after epoch {}",
                pair[1].epoch, pair[0].epoch
            )));
        }
    }
    for event in events {
        let host = event.kind.host();
        if host >= hosts {
            return Err(ConfigError::fault_plan(format!(
                "{} at epoch {} targets host {host} of a {hosts}-host fleet",
                event.kind.label(),
                event.epoch
            )));
        }
    }
    Ok(())
}

/// Replays a validated fault schedule in epoch order.
#[derive(Debug, Clone, Default)]
pub struct FaultClock {
    events: VecDeque<FaultEvent>,
}

impl FaultClock {
    /// A clock over `events`, which must already be in epoch order.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFaultPlan`] when the schedule is out of order.
    pub fn new(events: Vec<FaultEvent>) -> Result<Self, ConfigError> {
        validate_schedule(&events, usize::MAX)?;
        Ok(Self {
            events: events.into(),
        })
    }

    /// A clock over `events` destined for a `hosts`-host fleet: rejects
    /// out-of-order schedules *and* events naming hosts the fleet does
    /// not have.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFaultPlan`] naming the first offending event.
    pub fn for_fleet(events: Vec<FaultEvent>, hosts: usize) -> Result<Self, ConfigError> {
        validate_schedule(&events, hosts)?;
        Ok(Self {
            events: events.into(),
        })
    }

    /// Removes and returns every event due at or before `epoch`, in
    /// schedule order.
    pub fn pop_due(&mut self, epoch: u64) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while self.events.front().is_some_and(|e| e.epoch <= epoch) {
            due.push(self.events.pop_front().expect("front checked"));
        }
        due
    }

    /// Events not yet fired.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_epoch_ordered() {
        let plan = FaultPlan::new(42, 4, 3);
        let a = plan.generate(96).unwrap();
        let b = plan.generate(96).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert!(!a.is_empty(), "period 3 over 96 epochs must draw faults");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1, 4, 2).generate(96).unwrap();
        let b = FaultPlan::new(2, 4, 2).generate(96).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_period_disables_injection() {
        assert!(FaultPlan::new(7, 4, 0).generate(96).unwrap().is_empty());
    }

    #[test]
    fn crash_budget_is_honored_and_rerouted() {
        let plan = FaultPlan {
            weights: FaultWeights {
                crash: 10,
                link: 0,
                brownout: 0,
                stall: 0,
            },
            max_crashes: 2,
            ..FaultPlan::new(9, 3, 1)
        };
        let events = plan.generate(64).unwrap();
        let crashes = events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostCrash { .. }))
            .count();
        assert_eq!(crashes, 2, "exactly the crash budget");
        assert!(
            events
                .iter()
                .skip_while(|e| !matches!(e.kind, FaultKind::HostCrash { .. }))
                .any(|e| matches!(
                    e.kind,
                    FaultKind::LinkDegrade { .. } | FaultKind::LinkBlackout { .. }
                )),
            "spent crash draws become link faults"
        );
    }

    #[test]
    fn zero_crash_weight_never_crashes() {
        let plan = FaultPlan {
            weights: FaultWeights {
                crash: 0,
                ..FaultWeights::default()
            },
            ..FaultPlan::new(11, 4, 1)
        };
        let events = plan.generate(128).unwrap();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| !matches!(e.kind, FaultKind::HostCrash { .. })));
    }

    #[test]
    fn invalid_plans_are_rejected_with_typed_errors() {
        let no_hosts = FaultPlan::new(1, 0, 2);
        assert!(matches!(
            no_hosts.validate(),
            Err(ConfigError::BadFaultPlan { .. })
        ));
        let no_weights = FaultPlan {
            weights: FaultWeights {
                crash: 0,
                link: 0,
                brownout: 0,
                stall: 0,
            },
            ..FaultPlan::new(1, 4, 2)
        };
        assert!(matches!(
            no_weights.generate(16),
            Err(ConfigError::BadFaultPlan { .. })
        ));
        // A zero-period plan never draws, so it is valid regardless.
        assert!(FaultPlan::new(1, 0, 0).validate().is_ok());
    }

    #[test]
    fn clock_rejects_out_of_order_schedules() {
        let events = vec![
            FaultEvent {
                epoch: 5,
                kind: FaultKind::HostCrash { host: 0 },
            },
            FaultEvent {
                epoch: 2,
                kind: FaultKind::LinkBlackout { host: 1, epochs: 1 },
            },
        ];
        assert!(matches!(
            FaultClock::new(events),
            Err(ConfigError::BadFaultPlan { .. })
        ));
    }

    #[test]
    fn fleet_clock_rejects_out_of_range_hosts() {
        let events = vec![FaultEvent {
            epoch: 0,
            kind: FaultKind::DramBrownout {
                host: 7,
                multiplier_x100: 200,
                epochs: 2,
            },
        }];
        let err = FaultClock::for_fleet(events, 4).unwrap_err();
        assert!(err.to_string().contains("host 7"));
    }

    #[test]
    fn clock_pops_due_events_in_order() {
        let plan = FaultPlan::new(3, 4, 2);
        let events = plan.generate(64).unwrap();
        let total = events.len();
        let mut clock = FaultClock::for_fleet(events.clone(), 4).unwrap();
        let mut replayed = Vec::new();
        for epoch in 0..64 {
            replayed.extend(clock.pop_due(epoch));
        }
        assert_eq!(replayed, events);
        assert_eq!(clock.remaining(), 0);
        assert!(total > 0);
    }
}
