//! The named workloads of the paper's evaluation, expressed as stream
//! parameters relative to the die-stacked DRAM capacity.

use serde::{Deserialize, Serialize};

use crate::stream::{Access, StreamParams, ThreadStream};

/// The multithreaded workloads used throughout the evaluation (Sec. 5.3),
/// plus a representative small-footprint workload class used for the energy
/// study of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// PARSEC canneal: large footprint, pointer-chasing with moderate
    /// locality; benefits substantially from die-stacked bandwidth.
    Canneal,
    /// CloudSuite data caching (memcached-like): footprint far exceeding
    /// die-stacked capacity with nearly uniform key popularity — the worst
    /// case for paging and translation coherence.
    DataCaching,
    /// graph500 BFS: big, irregular, low locality, bandwidth hungry.
    Graph500,
    /// CloudSuite tunkrank (graph analytics on Twitter data): large
    /// footprint, modest locality.
    Tunkrank,
    /// PARSEC facesim: moderately sized working set with strong locality.
    Facesim,
    /// A small-footprint workload whose data fits in die-stacked DRAM
    /// (stands in for the remaining PARSEC/SPEC applications of Fig. 11).
    SmallFootprint,
}

impl WorkloadKind {
    /// The five big-memory workloads shown in Figs. 2 and 7–9 and 13, in the
    /// paper's presentation order.
    #[must_use]
    pub fn big_memory_suite() -> [WorkloadKind; 5] {
        [
            WorkloadKind::Canneal,
            WorkloadKind::DataCaching,
            WorkloadKind::Graph500,
            WorkloadKind::Tunkrank,
            WorkloadKind::Facesim,
        ]
    }

    /// Figure label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Canneal => "canneal",
            WorkloadKind::DataCaching => "data caching",
            WorkloadKind::Graph500 => "graph500",
            WorkloadKind::Tunkrank => "tunkrank",
            WorkloadKind::Facesim => "facesim",
            WorkloadKind::SmallFootprint => "small-footprint",
        }
    }

    /// Memory footprint as a multiple of die-stacked DRAM capacity.
    #[must_use]
    pub fn footprint_vs_fast(self) -> f64 {
        match self {
            WorkloadKind::Canneal => 2.0,
            WorkloadKind::DataCaching => 3.6,
            WorkloadKind::Graph500 => 2.6,
            WorkloadKind::Tunkrank => 3.0,
            WorkloadKind::Facesim => 1.6,
            WorkloadKind::SmallFootprint => 0.6,
        }
    }

    /// The data footprint (in 4 KiB pages) that [`Workload::build`] will
    /// generate for this kind at the given scale and thread count — the
    /// capacity ratio floored at 16 pages per thread.  Exposed so sizing
    /// code (e.g. per-VM die-stacked quotas on a consolidated host) shares
    /// one formula with the generator instead of re-deriving it.
    #[must_use]
    pub fn footprint_pages(self, fast_capacity_pages: u64, threads: usize) -> u64 {
        ((fast_capacity_pages as f64 * self.footprint_vs_fast()) as u64).max(threads as u64 * 16)
    }

    /// Zipf skew of page popularity (higher = hotter hot set).
    #[must_use]
    pub fn theta(self) -> f64 {
        match self {
            WorkloadKind::Canneal => 0.55,
            WorkloadKind::DataCaching => 0.15,
            WorkloadKind::Graph500 => 0.30,
            WorkloadKind::Tunkrank => 0.35,
            WorkloadKind::Facesim => 0.75,
            WorkloadKind::SmallFootprint => 0.70,
        }
    }

    /// Mean spatial run length (consecutive near-by accesses).
    #[must_use]
    pub fn run_length(self) -> u32 {
        match self {
            WorkloadKind::Canneal => 3,
            WorkloadKind::DataCaching => 6,
            WorkloadKind::Graph500 => 2,
            WorkloadKind::Tunkrank => 3,
            WorkloadKind::Facesim => 8,
            WorkloadKind::SmallFootprint => 6,
        }
    }

    /// Fraction of accesses that are stores.
    #[must_use]
    pub fn write_fraction(self) -> f64 {
        match self {
            WorkloadKind::Canneal => 0.30,
            WorkloadKind::DataCaching => 0.10,
            WorkloadKind::Graph500 => 0.20,
            WorkloadKind::Tunkrank => 0.25,
            WorkloadKind::Facesim => 0.35,
            WorkloadKind::SmallFootprint => 0.30,
        }
    }

    /// Fraction of accesses that go to data shared by all threads.
    #[must_use]
    pub fn shared_fraction(self) -> f64 {
        match self {
            WorkloadKind::Canneal => 0.45,
            WorkloadKind::DataCaching => 0.70,
            WorkloadKind::Graph500 => 0.60,
            WorkloadKind::Tunkrank => 0.55,
            WorkloadKind::Facesim => 0.25,
            WorkloadKind::SmallFootprint => 0.30,
        }
    }

    /// Average compute cycles between memory accesses (memory intensity).
    #[must_use]
    pub fn compute_cycles(self) -> u32 {
        match self {
            WorkloadKind::Canneal => 8,
            WorkloadKind::DataCaching => 6,
            WorkloadKind::Graph500 => 4,
            WorkloadKind::Tunkrank => 6,
            WorkloadKind::Facesim => 14,
            WorkloadKind::SmallFootprint => 16,
        }
    }

    /// Size of each thread's phased working window, as a multiple of
    /// die-stacked capacity (per VM, across threads).  Workloads whose
    /// windows exceed die-stacked capacity keep the hypervisor paging
    /// continuously; the others only page when the window drifts.
    #[must_use]
    pub fn window_vs_fast(self) -> f64 {
        match self {
            WorkloadKind::Canneal => 0.60,
            WorkloadKind::DataCaching => 0.72,
            WorkloadKind::Graph500 => 0.66,
            WorkloadKind::Tunkrank => 0.70,
            WorkloadKind::Facesim => 0.48,
            WorkloadKind::SmallFootprint => 0.40,
        }
    }

    /// Number of page draws between one-page drifts of the working window
    /// (smaller = faster phase changes = more page migrations).
    #[must_use]
    pub fn drift_interval(self) -> u32 {
        match self {
            WorkloadKind::Canneal => 2_000,
            WorkloadKind::DataCaching => 200,
            WorkloadKind::Graph500 => 1_300,
            WorkloadKind::Tunkrank => 500,
            WorkloadKind::Facesim => 3_000,
            WorkloadKind::SmallFootprint => 10_000,
        }
    }
}

/// The fully resolved parameters of one workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which workload this is.
    pub kind: WorkloadKind,
    /// Number of guest threads (one per vCPU).
    pub threads: usize,
    /// Total data footprint in 4 KiB pages.
    pub footprint_pages: u64,
    /// First guest-virtual page of the workload's data region.
    pub region_base: u64,
    /// Zipf skew.
    pub theta: f64,
    /// Mean spatial run length.
    pub run_length: u32,
    /// Store fraction.
    pub write_fraction: f64,
    /// Fraction of accesses to shared data.
    pub shared_fraction: f64,
    /// Compute cycles between accesses.
    pub compute_cycles: u32,
    /// Per-thread working-window size in pages (0 = whole region).
    pub window_pages: u64,
    /// Page draws between window drifts (0 = static window).
    pub drift_interval_draws: u32,
    /// Whether each thread sweeps its whole private region once at start-up
    /// (initialisation phase), which brings die-stacked memory to
    /// steady-state occupancy during warmup.
    pub prefault_sweep: bool,
}

/// A running workload: one access stream per thread.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    streams: Vec<ThreadStream>,
}

impl Workload {
    /// Builds a workload of `kind` with `threads` threads, sized for a
    /// die-stacked DRAM of `fast_capacity_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn build(kind: WorkloadKind, threads: usize, fast_capacity_pages: u64, seed: u64) -> Self {
        assert!(threads > 0, "a workload needs at least one thread");
        let footprint_pages = kind.footprint_pages(fast_capacity_pages, threads);
        // The VM-wide window is split across the shared and private regions
        // in proportion to how accesses are split, so each thread's stream
        // gets a window that collectively covers `window_vs_fast` of fast
        // capacity.
        let vm_window = (fast_capacity_pages as f64 * kind.window_vs_fast()) as u64;
        let per_thread_window = (vm_window / threads as u64).max(8);
        let spec = WorkloadSpec {
            kind,
            threads,
            footprint_pages,
            region_base: 0x100,
            theta: kind.theta(),
            run_length: kind.run_length(),
            write_fraction: kind.write_fraction(),
            shared_fraction: kind.shared_fraction(),
            compute_cycles: kind.compute_cycles(),
            window_pages: per_thread_window,
            drift_interval_draws: kind.drift_interval(),
            prefault_sweep: true,
        };
        Self::from_spec(spec, seed)
    }

    /// Builds a workload from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the spec declares zero threads.
    #[must_use]
    pub fn from_spec(spec: WorkloadSpec, seed: u64) -> Self {
        assert!(spec.threads > 0, "a workload needs at least one thread");
        let shared_pages = (spec.footprint_pages as f64 * spec.shared_fraction) as u64;
        let private_total = spec.footprint_pages - shared_pages;
        let per_thread = (private_total / spec.threads as u64).max(1);
        let shared_base = spec.region_base;
        let private_base = shared_base + shared_pages;
        let streams = (0..spec.threads)
            .map(|t| {
                ThreadStream::new(
                    StreamParams {
                        private_base: private_base + t as u64 * per_thread,
                        private_pages: per_thread,
                        shared_base,
                        shared_pages,
                        shared_fraction: spec.shared_fraction,
                        theta: spec.theta,
                        run_length: spec.run_length,
                        write_fraction: spec.write_fraction,
                        compute_cycles: spec.compute_cycles,
                        // The shared region is touched by every thread, so
                        // the VM-wide shared window is `threads ×` larger
                        // than each thread's private one; using the same
                        // per-thread window for both keeps the combined
                        // resident set near the intended multiple of fast
                        // capacity.
                        window_pages: spec.window_pages,
                        drift_interval_draws: spec.drift_interval_draws,
                        sweep_pages: if spec.prefault_sweep { per_thread } else { 0 },
                    },
                    seed.wrapping_mul(0x9e37_79b9).wrapping_add(t as u64),
                )
            })
            .collect();
        Self { spec, streams }
    }

    /// The resolved parameters.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.streams.len()
    }

    /// Generates the next access of thread `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn next_access(&mut self, thread: usize) -> Access {
        self.streams[thread].next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_memory_suite_has_five_members() {
        assert_eq!(WorkloadKind::big_memory_suite().len(), 5);
    }

    #[test]
    fn footprints_exceed_fast_memory_for_big_workloads() {
        for kind in WorkloadKind::big_memory_suite() {
            assert!(kind.footprint_vs_fast() > 1.0, "{kind:?}");
        }
        assert!(WorkloadKind::SmallFootprint.footprint_vs_fast() < 1.0);
    }

    #[test]
    fn data_caching_has_least_locality() {
        for kind in WorkloadKind::big_memory_suite() {
            if kind != WorkloadKind::DataCaching {
                assert!(kind.theta() > WorkloadKind::DataCaching.theta());
            }
        }
    }

    #[test]
    fn build_respects_thread_count_and_footprint() {
        let wl = Workload::build(WorkloadKind::Canneal, 8, 4_096, 1);
        assert_eq!(wl.threads(), 8);
        assert_eq!(wl.spec().footprint_pages, (4_096.0 * 2.0) as u64);
    }

    #[test]
    fn threads_access_disjoint_private_regions() {
        let mut wl = Workload::build(WorkloadKind::Facesim, 2, 2_048, 3);
        let shared_pages = (wl.spec().footprint_pages as f64 * wl.spec().shared_fraction) as u64;
        let shared_end = wl.spec().region_base + shared_pages;
        let mut t0_private = Vec::new();
        let mut t1_private = Vec::new();
        for _ in 0..2_000 {
            let a0 = wl.next_access(0);
            let a1 = wl.next_access(1);
            if a0.gvp.number() >= shared_end {
                t0_private.push(a0.gvp.number());
            }
            if a1.gvp.number() >= shared_end {
                t1_private.push(a1.gvp.number());
            }
        }
        // Allow the small spill-over from sequential runs at region edges.
        let t0_max = t0_private.iter().max().copied().unwrap_or(0);
        let t1_min = t1_private.iter().min().copied().unwrap_or(u64::MAX);
        assert!(
            t0_max < t1_min + 64,
            "private regions overlap: t0 max {t0_max} vs t1 min {t1_min}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Workload::build(WorkloadKind::Canneal, 0, 1_024, 1);
    }
}
