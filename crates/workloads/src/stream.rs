//! Per-thread memory-access stream generation.

use serde::{Deserialize, Serialize};

use hatric_types::{GuestVirtPage, SimRng};

/// One memory access issued by a guest thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Guest-virtual page touched.
    pub gvp: GuestVirtPage,
    /// Cache-line index within the page (0..64).
    pub line_in_page: u8,
    /// Whether the access is a store.
    pub is_write: bool,
    /// Non-memory work (cycles) the thread performs before this access.
    pub compute_cycles: u32,
}

/// Parameters controlling one thread's address stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamParams {
    /// First guest-virtual page of the thread's private region.
    pub private_base: u64,
    /// Number of pages in the thread's private region.
    pub private_pages: u64,
    /// First guest-virtual page of the region shared by all threads.
    pub shared_base: u64,
    /// Number of pages in the shared region.
    pub shared_pages: u64,
    /// Probability that an access targets the shared region.
    pub shared_fraction: f64,
    /// Zipf skew of page selection (0 = uniform, towards 1 = very hot).
    pub theta: f64,
    /// Mean number of consecutive accesses to the same/adjacent pages before
    /// re-drawing (spatial locality).
    pub run_length: u32,
    /// Probability an access is a write.
    pub write_fraction: f64,
    /// Average compute cycles between memory accesses.
    pub compute_cycles: u32,
    /// Size of the thread's *active working window* in pages (0 = the whole
    /// region).  Real workloads touch a phased working set much smaller than
    /// their total footprint; the window plus its drift rate determine how
    /// often cold pages are demanded, i.e. how often the hypervisor migrates
    /// pages between DRAM levels.
    pub window_pages: u64,
    /// Number of page draws between one-page advances of the working window
    /// (0 = the window never drifts).
    pub drift_interval_draws: u32,
    /// Number of pages of the private region touched once, sequentially, at
    /// the very start of the stream (an initialisation sweep).  Big-memory
    /// workloads use this to populate their whole footprint so that
    /// die-stacked memory reaches steady-state occupancy during warmup.
    pub sweep_pages: u64,
}

impl StreamParams {
    /// A window covering the whole region with no drift (pure Zipf over the
    /// footprint).
    #[must_use]
    pub fn without_window(mut self) -> Self {
        self.window_pages = 0;
        self.drift_interval_draws = 0;
        self
    }
}

/// A generator of one thread's access stream.
#[derive(Debug, Clone)]
pub struct ThreadStream {
    params: StreamParams,
    rng: SimRng,
    current_page: u64,
    current_line: u8,
    remaining_run: u32,
    draws: u64,
    window_start: u64,
    sweep_remaining: u64,
}

impl ThreadStream {
    /// Creates a stream with its own deterministic random sequence.
    #[must_use]
    pub fn new(params: StreamParams, seed: u64) -> Self {
        Self {
            params,
            rng: SimRng::new(seed),
            current_page: params.private_base,
            current_line: 0,
            remaining_run: 0,
            draws: 0,
            window_start: 0,
            sweep_remaining: params.sweep_pages.min(params.private_pages),
        }
    }

    /// The stream's parameters.
    #[must_use]
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    fn pick_in_region(&mut self, base: u64, pages: u64) -> u64 {
        let p = self.params;
        let pages = pages.max(1);
        if p.window_pages == 0 || p.window_pages >= pages {
            return base + self.rng.zipf(pages, p.theta);
        }
        let offset = (self.window_start + self.rng.zipf(p.window_pages, p.theta)) % pages;
        base + offset
    }

    fn pick_new_page(&mut self) -> u64 {
        self.draws += 1;
        let p = self.params;
        if p.drift_interval_draws > 0
            && self.draws.is_multiple_of(u64::from(p.drift_interval_draws))
        {
            self.window_start += 1;
        }
        let shared = p.shared_pages > 0 && self.rng.chance(p.shared_fraction);
        if shared {
            self.pick_in_region(p.shared_base, p.shared_pages)
        } else {
            self.pick_in_region(p.private_base, p.private_pages)
        }
    }

    /// Generates the next access.
    pub fn next_access(&mut self) -> Access {
        let p = self.params;
        if self.sweep_remaining > 0 {
            // Initialisation sweep: one access per private page, in order.
            let page = p.private_base + (p.sweep_pages.min(p.private_pages) - self.sweep_remaining);
            self.sweep_remaining -= 1;
            return Access {
                gvp: GuestVirtPage::new(page),
                line_in_page: 0,
                is_write: true,
                compute_cycles: p.compute_cycles / 2,
            };
        }
        if self.remaining_run == 0 {
            self.current_page = self.pick_new_page();
            self.current_line = self.rng.below(64) as u8;
            // Run length ~ uniform in [1, 2*mean] keeps the mean right while
            // providing variety.
            self.remaining_run = 1 + self.rng.below(u64::from(p.run_length.max(1)) * 2) as u32;
        } else {
            // Walk forward within the page; occasionally spill to the next
            // page, which is what streaming code does.
            self.current_line = self.current_line.wrapping_add(1);
            if self.current_line >= 64 {
                self.current_line = 0;
                self.current_page += 1;
            }
        }
        self.remaining_run -= 1;
        let jitter = if p.compute_cycles == 0 {
            0
        } else {
            self.rng.below(u64::from(p.compute_cycles)) as u32
        };
        Access {
            gvp: GuestVirtPage::new(self.current_page),
            line_in_page: self.current_line,
            is_write: self.rng.chance(p.write_fraction),
            compute_cycles: p.compute_cycles / 2 + jitter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StreamParams {
        StreamParams {
            private_base: 1_000,
            private_pages: 500,
            shared_base: 50_000,
            shared_pages: 1_000,
            shared_fraction: 0.3,
            theta: 0.5,
            run_length: 4,
            write_fraction: 0.25,
            compute_cycles: 10,
            window_pages: 0,
            drift_interval_draws: 0,
            sweep_pages: 0,
        }
    }

    #[test]
    fn windowed_stream_touches_few_distinct_pages_without_drift() {
        let mut p = params();
        p.shared_fraction = 0.0;
        p.window_pages = 16;
        p.drift_interval_draws = 0;
        let mut s = ThreadStream::new(p, 11);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..5_000 {
            pages.insert(s.next_access().gvp.number());
        }
        // Runs can spill a few pages past the window, but the set stays small.
        assert!(pages.len() < 40, "touched {} distinct pages", pages.len());
    }

    #[test]
    fn drift_expands_coverage_over_time() {
        let mut p = params();
        p.shared_fraction = 0.0;
        p.window_pages = 16;
        p.drift_interval_draws = 4;
        let mut s = ThreadStream::new(p, 12);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..20_000 {
            pages.insert(s.next_access().gvp.number());
        }
        assert!(
            pages.len() > 100,
            "drift should reach new pages, got {}",
            pages.len()
        );
    }

    #[test]
    fn accesses_stay_in_declared_regions() {
        let mut s = ThreadStream::new(params(), 1);
        for _ in 0..10_000 {
            let a = s.next_access();
            let page = a.gvp.number();
            let in_private = (1_000..1_000 + 500 + 64).contains(&page);
            let in_shared = (50_000..50_000 + 1_000 + 64).contains(&page);
            assert!(in_private || in_shared, "page {page} outside both regions");
            assert!(a.line_in_page < 64);
        }
    }

    #[test]
    fn write_fraction_is_respected_roughly() {
        let mut s = ThreadStream::new(params(), 2);
        let writes = (0..20_000).filter(|_| s.next_access().is_write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((0.18..0.32).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn spatial_runs_reuse_pages() {
        let mut s = ThreadStream::new(params(), 3);
        let mut same_page = 0;
        let mut prev = s.next_access().gvp;
        for _ in 0..10_000 {
            let a = s.next_access();
            if a.gvp == prev {
                same_page += 1;
            }
            prev = a.gvp;
        }
        // With mean run length 4 a large fraction of consecutive accesses
        // share a page.
        assert!(same_page > 5_000, "only {same_page} same-page pairs");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = ThreadStream::new(params(), 9);
        let mut b = ThreadStream::new(params(), 9);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn zero_shared_region_never_accesses_shared() {
        let mut p = params();
        p.shared_pages = 0;
        p.shared_fraction = 0.9;
        let mut s = ThreadStream::new(p, 4);
        for _ in 0..1_000 {
            assert!(s.next_access().gvp.number() < 2_000);
        }
    }
}
