//! SPEC-like single-threaded applications used to build the Fig. 10
//! multiprogrammed mixes.

use serde::{Deserialize, Serialize};

use crate::stream::StreamParams;

/// A catalogue of single-threaded applications with SPEC-CPU-like memory
/// behaviour.  The absolute identities do not matter for the reproduction;
/// what matters is the *spread* of footprints, localities and memory
/// intensities, because Fig. 10 shows that applications with little to gain
/// from die-stacked bandwidth are the ones most hurt by imprecise
/// translation-coherence targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecApp {
    Perlbench,
    Bzip2,
    Gcc,
    Mcf,
    Milc,
    Namd,
    Gobmk,
    Soplex,
    Povray,
    Hmmer,
    Sjeng,
    Libquantum,
    H264ref,
    Lbm,
    Omnetpp,
    Astar,
    Sphinx3,
    Xalancbmk,
    GemsFDTD,
    Leslie3d,
}

impl SpecApp {
    /// Every application in the catalogue.
    #[must_use]
    pub fn all() -> [SpecApp; 20] {
        use SpecApp::*;
        [
            Perlbench, Bzip2, Gcc, Mcf, Milc, Namd, Gobmk, Soplex, Povray, Hmmer, Sjeng,
            Libquantum, H264ref, Lbm, Omnetpp, Astar, Sphinx3, Xalancbmk, GemsFDTD, Leslie3d,
        ]
    }

    /// Short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpecApp::Perlbench => "perlbench",
            SpecApp::Bzip2 => "bzip2",
            SpecApp::Gcc => "gcc",
            SpecApp::Mcf => "mcf",
            SpecApp::Milc => "milc",
            SpecApp::Namd => "namd",
            SpecApp::Gobmk => "gobmk",
            SpecApp::Soplex => "soplex",
            SpecApp::Povray => "povray",
            SpecApp::Hmmer => "hmmer",
            SpecApp::Sjeng => "sjeng",
            SpecApp::Libquantum => "libquantum",
            SpecApp::H264ref => "h264ref",
            SpecApp::Lbm => "lbm",
            SpecApp::Omnetpp => "omnetpp",
            SpecApp::Astar => "astar",
            SpecApp::Sphinx3 => "sphinx3",
            SpecApp::Xalancbmk => "xalancbmk",
            SpecApp::GemsFDTD => "gemsfdtd",
            SpecApp::Leslie3d => "leslie3d",
        }
    }

    /// Footprint as a fraction of die-stacked DRAM capacity (per instance).
    #[must_use]
    pub fn footprint_vs_fast(self) -> f64 {
        match self {
            SpecApp::Mcf | SpecApp::Lbm | SpecApp::GemsFDTD => 0.45,
            SpecApp::Milc | SpecApp::Soplex | SpecApp::Omnetpp | SpecApp::Leslie3d => 0.30,
            SpecApp::Gcc | SpecApp::Astar | SpecApp::Sphinx3 | SpecApp::Xalancbmk => 0.18,
            SpecApp::Bzip2 | SpecApp::Libquantum | SpecApp::Hmmer => 0.10,
            SpecApp::Perlbench | SpecApp::Gobmk | SpecApp::Sjeng | SpecApp::H264ref => 0.05,
            SpecApp::Namd | SpecApp::Povray => 0.03,
        }
    }

    /// Zipf skew of the application's page popularity.
    #[must_use]
    pub fn theta(self) -> f64 {
        match self {
            SpecApp::Mcf | SpecApp::Omnetpp | SpecApp::Xalancbmk => 0.25,
            SpecApp::Milc | SpecApp::Lbm | SpecApp::GemsFDTD | SpecApp::Leslie3d => 0.35,
            SpecApp::Gcc | SpecApp::Soplex | SpecApp::Astar | SpecApp::Sphinx3 => 0.55,
            _ => 0.75,
        }
    }

    /// Memory intensity: average compute cycles between memory accesses.
    /// Low values are bandwidth-hungry codes that benefit from die stacking;
    /// high values have little memory-level parallelism and mostly suffer
    /// the coherence overheads.
    #[must_use]
    pub fn compute_cycles(self) -> u32 {
        match self {
            SpecApp::Mcf | SpecApp::Lbm | SpecApp::Milc | SpecApp::Libquantum => 4,
            SpecApp::GemsFDTD | SpecApp::Leslie3d | SpecApp::Soplex | SpecApp::Omnetpp => 8,
            SpecApp::Gcc | SpecApp::Astar | SpecApp::Sphinx3 | SpecApp::Xalancbmk => 14,
            SpecApp::Bzip2 | SpecApp::Hmmer | SpecApp::H264ref => 22,
            SpecApp::Perlbench
            | SpecApp::Gobmk
            | SpecApp::Sjeng
            | SpecApp::Namd
            | SpecApp::Povray => 30,
        }
    }

    /// Store fraction.
    #[must_use]
    pub fn write_fraction(self) -> f64 {
        match self {
            SpecApp::Bzip2 | SpecApp::Gcc | SpecApp::Lbm => 0.35,
            SpecApp::Libquantum | SpecApp::Milc => 0.15,
            _ => 0.25,
        }
    }

    /// Stream parameters for one instance of this application, given the
    /// die-stacked capacity in pages and the virtual region to occupy.
    #[must_use]
    pub fn stream_params(self, fast_capacity_pages: u64, region_base: u64) -> StreamParams {
        let pages = ((fast_capacity_pages as f64 * self.footprint_vs_fast()) as u64).max(32);
        StreamParams {
            private_base: region_base,
            private_pages: pages,
            shared_base: 0,
            shared_pages: 0,
            shared_fraction: 0.0,
            theta: self.theta(),
            run_length: 4,
            write_fraction: self.write_fraction(),
            compute_cycles: self.compute_cycles(),
            // Single-threaded SPEC codes cycle through phased working sets
            // roughly half their footprint in size; memory-intensive codes
            // change phase faster.
            window_pages: (pages / 2).max(16),
            drift_interval_draws: 150 + self.compute_cycles() * 40,
            sweep_pages: pages,
        }
    }

    /// Number of pages the instance occupies for a given fast capacity.
    #[must_use]
    pub fn footprint_pages(self, fast_capacity_pages: u64) -> u64 {
        ((fast_capacity_pages as f64 * self.footprint_vs_fast()) as u64).max(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_twenty_distinct_apps() {
        let all = SpecApp::all();
        assert_eq!(all.len(), 20);
        let mut names: Vec<_> = all.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn footprints_and_intensities_span_a_range() {
        let footprints: Vec<f64> = SpecApp::all()
            .iter()
            .map(|a| a.footprint_vs_fast())
            .collect();
        let min = footprints.iter().cloned().fold(f64::MAX, f64::min);
        let max = footprints.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.05);
        assert!(max > 0.4);
        let intensities: Vec<u32> = SpecApp::all().iter().map(|a| a.compute_cycles()).collect();
        assert!(intensities.iter().any(|&c| c <= 4));
        assert!(intensities.iter().any(|&c| c >= 30));
    }

    #[test]
    fn stream_params_are_private_only() {
        let p = SpecApp::Mcf.stream_params(10_000, 500);
        assert_eq!(p.shared_pages, 0);
        assert_eq!(p.private_base, 500);
        assert_eq!(p.private_pages, 4_500);
    }

    #[test]
    fn minimum_footprint_enforced() {
        assert_eq!(SpecApp::Povray.footprint_pages(100), 32);
    }
}
