//! Multiprogrammed SPEC mixes (Fig. 10): 16 single-threaded applications
//! running together in one VM.

use serde::{Deserialize, Serialize};

use hatric_types::SimRng;

use crate::spec::SpecApp;
use crate::stream::{Access, ThreadStream};

/// A named combination of 16 SPEC-like applications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecMix {
    /// Mix index (0..80 in the paper's study).
    pub index: usize,
    /// The applications, one per vCPU.
    pub apps: Vec<SpecApp>,
}

impl SpecMix {
    /// Number of applications per mix used by the paper.
    pub const APPS_PER_MIX: usize = 16;

    /// Deterministically generates the `count` mixes used by the study.
    #[must_use]
    pub fn generate(count: usize, seed: u64) -> Vec<SpecMix> {
        let mut rng = SimRng::new(seed);
        let catalogue = SpecApp::all();
        (0..count)
            .map(|index| {
                let apps = (0..Self::APPS_PER_MIX)
                    .map(|_| catalogue[rng.below(catalogue.len() as u64) as usize])
                    .collect();
                SpecMix { index, apps }
            })
            .collect()
    }

    /// Total footprint of the mix in pages, for a given fast capacity.
    #[must_use]
    pub fn footprint_pages(&self, fast_capacity_pages: u64) -> u64 {
        self.apps
            .iter()
            .map(|a| a.footprint_pages(fast_capacity_pages))
            .sum()
    }
}

/// A running multiprogrammed mix: one independent address space and stream
/// per application.
#[derive(Debug, Clone)]
pub struct MixWorkload {
    mix: SpecMix,
    streams: Vec<ThreadStream>,
    footprints: Vec<u64>,
}

impl MixWorkload {
    /// Instantiates the mix for a die-stacked capacity of
    /// `fast_capacity_pages`, laying each application out in its own virtual
    /// region.
    #[must_use]
    pub fn build(mix: SpecMix, fast_capacity_pages: u64, seed: u64) -> Self {
        let mut streams = Vec::with_capacity(mix.apps.len());
        let mut footprints = Vec::with_capacity(mix.apps.len());
        let mut base = 0x100u64;
        for (i, app) in mix.apps.iter().enumerate() {
            let params = app.stream_params(fast_capacity_pages, base);
            footprints.push(params.private_pages);
            base += params.private_pages + 64;
            streams.push(ThreadStream::new(
                params,
                seed.wrapping_add(i as u64 * 7919),
            ));
        }
        Self {
            mix,
            streams,
            footprints,
        }
    }

    /// The mix definition.
    #[must_use]
    pub fn mix(&self) -> &SpecMix {
        &self.mix
    }

    /// Number of applications (vCPUs).
    #[must_use]
    pub fn apps(&self) -> usize {
        self.streams.len()
    }

    /// Footprint of application `app` in pages.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    #[must_use]
    pub fn footprint_of(&self, app: usize) -> u64 {
        self.footprints[app]
    }

    /// Memory intensity (compute cycles per access) of application `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    #[must_use]
    pub fn compute_cycles_of(&self, app: usize) -> u32 {
        self.mix.apps[app].compute_cycles()
    }

    /// Generates the next access of application `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    pub fn next_access(&mut self, app: usize) -> Access {
        self.streams[app].next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_mixes() {
        let mixes = SpecMix::generate(80, 42);
        assert_eq!(mixes.len(), 80);
        assert!(mixes.iter().all(|m| m.apps.len() == 16));
        // Mixes differ from each other.
        assert_ne!(mixes[0].apps, mixes[1].apps);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(SpecMix::generate(10, 7), SpecMix::generate(10, 7));
        assert_ne!(SpecMix::generate(10, 7), SpecMix::generate(10, 8));
    }

    #[test]
    fn mix_workload_uses_disjoint_regions() {
        let mix = SpecMix::generate(1, 3).remove(0);
        let mut wl = MixWorkload::build(mix, 2_048, 5);
        let apps = wl.apps();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for app in 0..apps {
            let mut lo = u64::MAX;
            let mut hi = 0;
            for _ in 0..200 {
                let a = wl.next_access(app);
                lo = lo.min(a.gvp.number());
                hi = hi.max(a.gvp.number());
            }
            ranges.push((lo, hi));
        }
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0 + 64, "app regions overlap: {:?}", w);
        }
    }

    #[test]
    fn mix_footprint_sums_apps() {
        let mix = SpecMix::generate(1, 9).remove(0);
        let total = mix.footprint_pages(4_096);
        let by_hand: u64 = mix.apps.iter().map(|a| a.footprint_pages(4_096)).sum();
        assert_eq!(total, by_hand);
    }
}
