//! # hatric-workloads
//!
//! Synthetic workload generators standing in for the paper's evaluation
//! workloads (Sec. 5.3).  The original study drives its simulator with Pin
//! traces of PARSEC (canneal, facesim), CloudSuite (data caching, tunkrank),
//! graph500 and SPEC mixes; those traces are not available, so this crate
//! generates access streams with the *characteristics that matter to
//! translation coherence*: memory footprint relative to die-stacked
//! capacity, access locality (how concentrated the hot set is), spatial run
//! length, write fraction, sharing across threads, and compute intensity.
//!
//! Each [`Workload`] exposes per-thread streams of [`Access`]es that the
//! core simulator feeds through the TLB/cache/memory model.
//!
//! ```
//! use hatric_workloads::{Workload, WorkloadKind};
//!
//! // 2 GiB of die-stacked capacity is 524 288 pages; scaled-down runs pass
//! // a proportionally smaller number.
//! let mut wl = Workload::build(WorkloadKind::DataCaching, 16, 8_192, 7);
//! let access = wl.next_access(0);
//! assert!(access.gvp.number() < wl.spec().footprint_pages + wl.spec().region_base);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod mix;
pub mod spec;
pub mod stream;
pub mod suite;
pub mod trace;

pub use mix::{MixWorkload, SpecMix};
pub use spec::SpecApp;
pub use stream::{Access, ThreadStream};
pub use suite::{Workload, WorkloadKind, WorkloadSpec};
pub use trace::{TraceEvent, TraceRecorder};
