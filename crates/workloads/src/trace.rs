//! Trace recording: capturing generated access streams so experiments can be
//! replayed exactly (the paper drives its simulator from Pin traces; we
//! record and replay synthetic ones).

use serde::{Deserialize, Serialize};

use hatric_types::{AddressSpaceId, GuestVirtPage, VcpuId};

use crate::stream::Access;

/// One event of a recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The vCPU (thread) that issued the access.
    pub vcpu: VcpuId,
    /// The guest address space the access belongs to.
    pub asid: AddressSpaceId,
    /// Guest-virtual page touched.
    pub gvp: GuestVirtPage,
    /// Cache line within the page.
    pub line_in_page: u8,
    /// Whether it was a store.
    pub is_write: bool,
    /// Compute cycles preceding the access.
    pub compute_cycles: u32,
}

impl TraceEvent {
    /// Builds an event from a generated access.
    #[must_use]
    pub fn from_access(vcpu: VcpuId, asid: AddressSpaceId, access: Access) -> Self {
        Self {
            vcpu,
            asid,
            gvp: access.gvp,
            line_in_page: access.line_in_page,
            is_write: access.is_write,
            compute_cycles: access.compute_cycles,
        }
    }
}

/// An in-memory trace recorder with a bounded capacity.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder that keeps at most `capacity` events (0 disables
    /// recording entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (dropping it if the recorder is full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events did not fit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(page: u64) -> TraceEvent {
        TraceEvent {
            vcpu: VcpuId::new(0),
            asid: AddressSpaceId::new(0),
            gvp: GuestVirtPage::new(page),
            line_in_page: 0,
            is_write: false,
            compute_cycles: 1,
        }
    }

    #[test]
    fn records_up_to_capacity() {
        let mut rec = TraceRecorder::new(2);
        rec.record(event(1));
        rec.record(event(2));
        rec.record(event(3));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.events()[0].gvp, GuestVirtPage::new(1));
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut rec = TraceRecorder::new(0);
        rec.record(event(1));
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn from_access_preserves_fields() {
        let access = Access {
            gvp: GuestVirtPage::new(9),
            line_in_page: 3,
            is_write: true,
            compute_cycles: 5,
        };
        let ev = TraceEvent::from_access(VcpuId::new(2), AddressSpaceId::new(1), access);
        assert_eq!(ev.gvp, GuestVirtPage::new(9));
        assert!(ev.is_write);
        assert_eq!(ev.vcpu, VcpuId::new(2));
    }
}
