//! # hatric-energy
//!
//! A CACTI-style energy model for the simulated system.  The paper models
//! energy with CACTI 6.0 (Sec. 5.1); here every microarchitectural event has
//! a per-access dynamic energy, and every structure contributes leakage
//! power integrated over the runtime.  The model captures the energy
//! consequences the paper evaluates:
//!
//! * co-tags make every TLB / MMU-cache / nTLB lookup slightly more
//!   expensive and add leakage proportional to their width (Fig. 11 right);
//! * UNITD's reverse-lookup CAM makes every coherence snoop of the
//!   translation structures far more expensive than a co-tag match
//!   (Fig. 13);
//! * runtime reductions save static energy, which is how HATRIC ends up
//!   saving energy overall despite the added state (Fig. 11 left).
//!
//! ```
//! use hatric_energy::{EnergyEvent, EnergyModel, EnergyParams};
//!
//! let mut model = EnergyModel::new(EnergyParams::haswell_like(2));
//! model.record(EnergyEvent::TlbLookup, 1_000);
//! model.record(EnergyEvent::DramAccessSlow, 10);
//! let report = model.report(1_000_000, 16);
//! assert!(report.total_nj() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::{Deserialize, Serialize};

/// Microarchitectural events that consume dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EnergyEvent {
    /// A TLB lookup (L1 or L2).
    TlbLookup,
    /// A co-tag comparison performed on a coherence message reaching the
    /// translation structures.
    CotagMatch,
    /// An MMU-cache (paging-structure cache) lookup.
    MmuCacheLookup,
    /// A nested-TLB lookup.
    NtlbLookup,
    /// A private L1 cache access.
    L1Access,
    /// A private L2 cache access.
    L2Access,
    /// A shared LLC access.
    LlcAccess,
    /// A coherence-directory lookup or update.
    DirectoryAccess,
    /// One die-stacked DRAM line access.
    DramAccessFast,
    /// One off-chip DRAM line access.
    DramAccessSlow,
    /// One coherence message on the interconnect.
    CoherenceMessage,
    /// One inter-processor interrupt (software translation coherence).
    Ipi,
    /// One VM exit / re-entry pair.
    VmExit,
    /// One page-table-walk memory reference.
    PageWalkStep,
    /// One translation-structure entry invalidation.
    TranslationInvalidation,
    /// One reverse-lookup CAM search over the whole TLB (UNITD).
    UnitdCamSearch,
    /// One 4 KiB page copy between DRAM devices.
    PageCopy,
}

/// Per-event dynamic energies (picojoules) and leakage (milliwatts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Dynamic energy of a TLB lookup, pJ.
    pub tlb_lookup_pj: f64,
    /// Extra dynamic energy per TLB/MMU/nTLB lookup due to co-tag storage, pJ.
    pub cotag_lookup_extra_pj: f64,
    /// Dynamic energy of a co-tag comparison on an incoming message, pJ.
    pub cotag_match_pj: f64,
    /// Dynamic energy of an MMU-cache lookup, pJ.
    pub mmu_lookup_pj: f64,
    /// Dynamic energy of a nested-TLB lookup, pJ.
    pub ntlb_lookup_pj: f64,
    /// Dynamic energy of an L1 access, pJ.
    pub l1_access_pj: f64,
    /// Dynamic energy of an L2 access, pJ.
    pub l2_access_pj: f64,
    /// Dynamic energy of an LLC access, pJ.
    pub llc_access_pj: f64,
    /// Dynamic energy of a directory access, pJ.
    pub directory_access_pj: f64,
    /// Dynamic energy of a die-stacked DRAM line access, pJ.
    pub dram_fast_pj: f64,
    /// Dynamic energy of an off-chip DRAM line access, pJ.
    pub dram_slow_pj: f64,
    /// Dynamic energy of one coherence message, pJ.
    pub coherence_message_pj: f64,
    /// Energy of delivering one IPI, pJ.
    pub ipi_pj: f64,
    /// Energy of one VM exit/entry, pJ.
    pub vm_exit_pj: f64,
    /// Energy of one page-walk memory reference (walker FSM side), pJ.
    pub walk_step_pj: f64,
    /// Energy of invalidating one translation entry, pJ.
    pub invalidation_pj: f64,
    /// Energy of one UNITD reverse-CAM search, pJ.
    pub unitd_cam_pj: f64,
    /// Energy of copying one 4 KiB page, pJ.
    pub page_copy_pj: f64,
    /// Per-CPU leakage power of the baseline translation structures, mW.
    pub structure_leakage_mw: f64,
    /// Additional per-CPU leakage from co-tags, mW (scales with width).
    pub cotag_leakage_mw: f64,
    /// Additional per-CPU leakage from a UNITD reverse CAM, mW.
    pub unitd_cam_leakage_mw: f64,
    /// Rest-of-core + cache leakage power per CPU, mW.
    pub core_leakage_mw: f64,
    /// Clock frequency in GHz (converts cycles to seconds for leakage).
    pub frequency_ghz: f64,
    /// Whether the UNITD CAM leakage applies (set for UNITD++ configs).
    pub unitd_cam_present: bool,
}

impl EnergyParams {
    /// Parameters loosely calibrated to CACTI numbers for a Haswell-class
    /// core, with co-tags of `cotag_bytes` bytes added to every translation
    /// structure entry.  Passing `0` models a system without co-tags.
    #[must_use]
    pub fn haswell_like(cotag_bytes: u8) -> Self {
        let width = f64::from(cotag_bytes);
        Self {
            tlb_lookup_pj: 8.0,
            cotag_lookup_extra_pj: 0.55 * width,
            cotag_match_pj: 1.2 + 0.4 * width,
            mmu_lookup_pj: 4.0,
            ntlb_lookup_pj: 3.0,
            l1_access_pj: 22.0,
            l2_access_pj: 60.0,
            llc_access_pj: 240.0,
            directory_access_pj: 30.0,
            dram_fast_pj: 4_000.0,
            dram_slow_pj: 6_500.0,
            coherence_message_pj: 18.0,
            ipi_pj: 9_000.0,
            vm_exit_pj: 14_000.0,
            walk_step_pj: 6.0,
            invalidation_pj: 1.0,
            unitd_cam_pj: 95.0,
            page_copy_pj: 280_000.0,
            structure_leakage_mw: 9.0,
            cotag_leakage_mw: 0.8 * width,
            unitd_cam_leakage_mw: 6.5,
            core_leakage_mw: 350.0,
            frequency_ghz: 2.5,
            unitd_cam_present: false,
        }
    }

    /// Parameters for an UNITD++-style design: no co-tags, but a
    /// reverse-lookup CAM attached to the TLBs.
    #[must_use]
    pub fn unitd_like() -> Self {
        let mut p = Self::haswell_like(0);
        p.unitd_cam_present = true;
        p
    }

    fn dynamic_pj(&self, event: EnergyEvent) -> f64 {
        match event {
            EnergyEvent::TlbLookup => self.tlb_lookup_pj + self.cotag_lookup_extra_pj,
            EnergyEvent::CotagMatch => self.cotag_match_pj,
            EnergyEvent::MmuCacheLookup => self.mmu_lookup_pj + self.cotag_lookup_extra_pj,
            EnergyEvent::NtlbLookup => self.ntlb_lookup_pj + self.cotag_lookup_extra_pj,
            EnergyEvent::L1Access => self.l1_access_pj,
            EnergyEvent::L2Access => self.l2_access_pj,
            EnergyEvent::LlcAccess => self.llc_access_pj,
            EnergyEvent::DirectoryAccess => self.directory_access_pj,
            EnergyEvent::DramAccessFast => self.dram_fast_pj,
            EnergyEvent::DramAccessSlow => self.dram_slow_pj,
            EnergyEvent::CoherenceMessage => self.coherence_message_pj,
            EnergyEvent::Ipi => self.ipi_pj,
            EnergyEvent::VmExit => self.vm_exit_pj,
            EnergyEvent::PageWalkStep => self.walk_step_pj,
            EnergyEvent::TranslationInvalidation => self.invalidation_pj,
            EnergyEvent::UnitdCamSearch => self.unitd_cam_pj,
            EnergyEvent::PageCopy => self.page_copy_pj,
        }
    }

    /// Total per-CPU leakage power in milliwatts.
    #[must_use]
    pub fn leakage_mw_per_cpu(&self) -> f64 {
        self.core_leakage_mw
            + self.structure_leakage_mw
            + self.cotag_leakage_mw
            + if self.unitd_cam_present {
                self.unitd_cam_leakage_mw
            } else {
                0.0
            }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::haswell_like(2)
    }
}

/// A finished energy accounting for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic energy in nanojoules.
    pub dynamic_nj: f64,
    /// Static (leakage) energy in nanojoules.
    pub static_nj: f64,
}

impl EnergyReport {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.static_nj
    }
}

/// Every energy event, in a fixed canonical order (used by
/// [`EnergyTally`] to index its counters and to replay them
/// deterministically).
const ALL_EVENTS: [EnergyEvent; 17] = [
    EnergyEvent::TlbLookup,
    EnergyEvent::CotagMatch,
    EnergyEvent::MmuCacheLookup,
    EnergyEvent::NtlbLookup,
    EnergyEvent::L1Access,
    EnergyEvent::L2Access,
    EnergyEvent::LlcAccess,
    EnergyEvent::DirectoryAccess,
    EnergyEvent::DramAccessFast,
    EnergyEvent::DramAccessSlow,
    EnergyEvent::CoherenceMessage,
    EnergyEvent::Ipi,
    EnergyEvent::VmExit,
    EnergyEvent::PageWalkStep,
    EnergyEvent::TranslationInvalidation,
    EnergyEvent::UnitdCamSearch,
    EnergyEvent::PageCopy,
];

const fn event_index(event: EnergyEvent) -> usize {
    match event {
        EnergyEvent::TlbLookup => 0,
        EnergyEvent::CotagMatch => 1,
        EnergyEvent::MmuCacheLookup => 2,
        EnergyEvent::NtlbLookup => 3,
        EnergyEvent::L1Access => 4,
        EnergyEvent::L2Access => 5,
        EnergyEvent::LlcAccess => 6,
        EnergyEvent::DirectoryAccess => 7,
        EnergyEvent::DramAccessFast => 8,
        EnergyEvent::DramAccessSlow => 9,
        EnergyEvent::CoherenceMessage => 10,
        EnergyEvent::Ipi => 11,
        EnergyEvent::VmExit => 12,
        EnergyEvent::PageWalkStep => 13,
        EnergyEvent::TranslationInvalidation => 14,
        EnergyEvent::UnitdCamSearch => 15,
        EnergyEvent::PageCopy => 16,
    }
}

/// A side accumulator of event *counts* (no parameters, no floats): worker
/// threads of the parallel slice engine tally their events here, and the
/// commit phase replays every tally into the one [`EnergyModel`] in
/// canonical event order — so the floating-point accumulation order (and
/// with it the reported energy) is identical for any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyTally {
    counts: [u64; ALL_EVENTS.len()],
}

impl EnergyTally {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; ALL_EVENTS.len()],
        }
    }

    /// Records `count` occurrences of `event`.
    pub fn record(&mut self, event: EnergyEvent, count: u64) {
        self.counts[event_index(event)] += count;
    }

    /// Clears the tally for reuse.
    pub fn clear(&mut self) {
        self.counts = [0; ALL_EVENTS.len()];
    }

    /// Replays the tallied counts into `model` in canonical event order.
    pub fn apply_to(&self, model: &mut EnergyModel) {
        for (event, &count) in ALL_EVENTS.iter().zip(&self.counts) {
            if count > 0 {
                model.record(*event, count);
            }
        }
    }
}

impl Default for EnergyTally {
    fn default() -> Self {
        Self::new()
    }
}

/// Accumulates event counts and converts them to energy.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
    dynamic_pj: f64,
}

impl EnergyModel {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        Self {
            params,
            dynamic_pj: 0.0,
        }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Records `count` occurrences of `event`.
    pub fn record(&mut self, event: EnergyEvent, count: u64) {
        self.dynamic_pj += self.params.dynamic_pj(event) * count as f64;
    }

    /// Dynamic energy accumulated so far, in nanojoules.
    #[must_use]
    pub fn dynamic_nj(&self) -> f64 {
        self.dynamic_pj / 1_000.0
    }

    /// Produces the final report given the simulated runtime (`cycles`) and
    /// the number of CPUs leaking for that long.
    #[must_use]
    pub fn report(&self, cycles: u64, num_cpus: usize) -> EnergyReport {
        let seconds = cycles as f64 / (self.params.frequency_ghz * 1e9);
        let leak_w = self.params.leakage_mw_per_cpu() / 1_000.0 * num_cpus as f64;
        EnergyReport {
            dynamic_nj: self.dynamic_nj(),
            static_nj: leak_w * seconds * 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_accumulates() {
        let mut m = EnergyModel::new(EnergyParams::haswell_like(2));
        m.record(EnergyEvent::TlbLookup, 100);
        let only_tlb = m.dynamic_nj();
        m.record(EnergyEvent::DramAccessSlow, 1);
        assert!(m.dynamic_nj() > only_tlb);
    }

    #[test]
    fn cotags_cost_lookup_energy() {
        let with = EnergyParams::haswell_like(2);
        let without = EnergyParams::haswell_like(0);
        assert!(
            with.dynamic_pj(EnergyEvent::TlbLookup) > without.dynamic_pj(EnergyEvent::TlbLookup)
        );
        assert!(with.leakage_mw_per_cpu() > without.leakage_mw_per_cpu());
    }

    #[test]
    fn wider_cotags_cost_more() {
        let one = EnergyParams::haswell_like(1);
        let three = EnergyParams::haswell_like(3);
        assert!(three.dynamic_pj(EnergyEvent::TlbLookup) > one.dynamic_pj(EnergyEvent::TlbLookup));
        assert!(three.leakage_mw_per_cpu() > one.leakage_mw_per_cpu());
    }

    #[test]
    fn unitd_cam_is_more_expensive_than_cotag_match() {
        let p = EnergyParams::unitd_like();
        assert!(
            p.dynamic_pj(EnergyEvent::UnitdCamSearch)
                > p.dynamic_pj(EnergyEvent::CotagMatch) * 10.0
        );
        assert!(p.leakage_mw_per_cpu() > EnergyParams::haswell_like(2).leakage_mw_per_cpu());
    }

    #[test]
    fn static_energy_scales_with_runtime_and_cpus() {
        let m = EnergyModel::new(EnergyParams::haswell_like(2));
        let short = m.report(1_000_000, 16).static_nj;
        let long = m.report(2_000_000, 16).static_nj;
        let more_cpus = m.report(1_000_000, 32).static_nj;
        assert!((long / short - 2.0).abs() < 1e-9);
        assert!((more_cpus / short - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tally_replay_equals_direct_recording() {
        let mut direct = EnergyModel::new(EnergyParams::haswell_like(2));
        let mut tallied = EnergyModel::new(EnergyParams::haswell_like(2));
        let mut tally = EnergyTally::new();
        for (i, event) in ALL_EVENTS.iter().enumerate() {
            direct.record(*event, i as u64 + 1);
            tally.record(*event, i as u64 + 1);
        }
        tally.apply_to(&mut tallied);
        assert_eq!(direct.dynamic_nj(), tallied.dynamic_nj());
        tally.clear();
        tally.apply_to(&mut tallied);
        assert_eq!(direct.dynamic_nj(), tallied.dynamic_nj());
    }

    #[test]
    fn vm_exits_and_ipis_are_costly_events() {
        let p = EnergyParams::haswell_like(2);
        assert!(p.dynamic_pj(EnergyEvent::VmExit) > 100.0 * p.dynamic_pj(EnergyEvent::TlbLookup));
        assert!(p.dynamic_pj(EnergyEvent::Ipi) > 100.0 * p.dynamic_pj(EnergyEvent::TlbLookup));
    }
}
