//! Property-based tests for the address/co-tag vocabulary.

use proptest::prelude::*;

use hatric_types::{CacheLineAddr, CoTag, GuestVirtAddr, PageSize, SimRng, SystemPhysAddr};

proptest! {
    /// Page base + offset always reconstructs the original address.
    #[test]
    fn page_decomposition_round_trips(addr in 0u64..(1 << 48)) {
        let va = GuestVirtAddr::new(addr);
        for size in [PageSize::Base, PageSize::Large2M, PageSize::Huge1G] {
            let page = va.page(size);
            prop_assert_eq!(page.base_addr().raw() + va.page_offset(size), addr);
            prop_assert_eq!(page.base_addr().raw() % size.bytes(), 0);
        }
    }

    /// Cache-line decomposition is idempotent and line-aligned.
    #[test]
    fn cache_line_containing_is_idempotent(addr in 0u64..(1 << 48)) {
        let line = CacheLineAddr::containing(addr);
        prop_assert_eq!(line.raw() % 64, 0);
        prop_assert_eq!(CacheLineAddr::containing(line.raw()), line);
        prop_assert!(line.raw() <= addr && addr < line.raw() + 64);
    }

    /// Two PTE addresses share a co-tag if and only if they share a cache
    /// line, as long as the addresses fit within the co-tag's reach.
    #[test]
    fn cotag_matches_exactly_cache_line_sharing(
        a in 0u64..(1 << 21),
        b in 0u64..(1 << 21),
        width in 2u8..=4,
    ) {
        let ta = CoTag::from_pte_addr(SystemPhysAddr::new(a), width);
        let tb = CoTag::from_pte_addr(SystemPhysAddr::new(b), width);
        let same_line = a / 64 == b / 64;
        if same_line {
            prop_assert_eq!(ta, tb);
        }
        // Within the 2-byte reach (bits 6..22), different lines differ.
        if !same_line && width >= 3 {
            prop_assert_ne!(ta, tb);
        }
    }

    /// The deterministic RNG produces values strictly below its bound and is
    /// reproducible from the seed.
    #[test]
    fn rng_bound_and_determinism(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// Zipf draws always fall within the requested universe.
    #[test]
    fn zipf_stays_in_range(seed in any::<u64>(), n in 1u64..100_000, theta in 0.0f64..0.99) {
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.zipf(n, theta) < n);
        }
    }
}
