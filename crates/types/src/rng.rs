//! A small, fast, fully deterministic pseudo-random number generator.
//!
//! The simulator needs reproducible runs — figure regeneration must produce
//! the same series every time — so all stochastic choices (workload address
//! streams, replacement tie-breaking, mix construction) flow through
//! [`SimRng`], a SplitMix64/xoshiro256** generator seeded explicitly.  The
//! `rand` crate is still used by workload generators for distributions, via
//! the `rand::RngCore`-compatible shim in `hatric-workloads`; this type is
//! the seed-stable core.

use serde::{Deserialize, Serialize};

/// Deterministic xoshiro256** pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-then-shift rejection-free approximation is fine
        // for simulation purposes; the slight bias for huge bounds is
        // irrelevant here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Returns a value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Draws an index from a Zipf(`theta`) distribution over `n` items.
    ///
    /// Uses the standard two-parameter approximation for the inverse CDF,
    /// which is accurate enough for locality modelling and avoids building a
    /// table per call.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        if theta <= f64::EPSILON {
            return self.below(n);
        }
        // Inverse-transform sampling on the continuous approximation of the
        // Zipf CDF: P(X <= x) ~ (x/n)^(1-theta) for theta < 1; fall back to a
        // geometric-like skew for theta >= 1.
        let u = self.unit().max(1e-12);
        let exponent = if theta < 1.0 {
            1.0 / (1.0 - theta)
        } else {
            4.0 + theta
        };
        let x = (u.powf(exponent) * n as f64) as u64;
        x.min(n - 1)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Splits off an independent generator (for per-CPU streams).
    pub fn split(&mut self) -> Self {
        SimRng::new(self.next_u64())
    }
}

impl Default for SimRng {
    fn default() -> Self {
        Self::new(0x5eed_0000_c0ff_ee00)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = SimRng::new(11);
        let n = 1000;
        let mut low = 0usize;
        for _ in 0..20_000 {
            if rng.zipf(n, 0.9) < n / 10 {
                low += 1;
            }
        }
        // With theta=0.9 the hottest 10% of items should absorb far more
        // than 10% of accesses.
        assert!(low > 6_000, "zipf skew too weak: {low}");
    }

    #[test]
    fn zipf_zero_theta_is_uniformish() {
        let mut rng = SimRng::new(13);
        let n = 10;
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(n, 0.0) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
