//! Identifiers for the hardware and software entities the simulator models:
//! physical CPUs, virtual CPUs, virtual machines, guest processes, and
//! address spaces.

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $short:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the identifier's index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the identifier's raw value.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_newtype!(
    /// A physical CPU (core) in the simulated machine.
    CpuId,
    "cpu"
);
id_newtype!(
    /// A virtual CPU belonging to a virtual machine.
    VcpuId,
    "vcpu"
);
id_newtype!(
    /// A virtual machine managed by the hypervisor.
    VmId,
    "vm"
);
id_newtype!(
    /// A guest process running inside a virtual machine.
    ProcessId,
    "pid"
);
id_newtype!(
    /// A socket (NUMA node) of a multi-socket host: a package holding a
    /// contiguous block of physical CPUs plus its locally attached DRAM
    /// devices.  Accesses that cross sockets pay the inter-socket link.
    SocketId,
    "skt"
);
id_newtype!(
    /// A guest address space (one guest page table).  Processes within a VM
    /// each have their own address space; the hypervisor does not know which
    /// physical CPUs an address space ran on, which is the root cause of the
    /// imprecise target identification the paper describes (Sec. 3.2).
    AddressSpaceId,
    "asid"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cpu = CpuId::new(7);
        assert_eq!(cpu.index(), 7);
        assert_eq!(usize::from(cpu), 7);
        assert_eq!(CpuId::from(7usize), cpu);
    }

    #[test]
    fn display_is_short() {
        assert_eq!(CpuId::new(3).to_string(), "cpu3");
        assert_eq!(VcpuId::new(1).to_string(), "vcpu1");
        assert_eq!(VmId::new(0).to_string(), "vm0");
        assert_eq!(ProcessId::new(9).to_string(), "pid9");
        assert_eq!(AddressSpaceId::new(2).to_string(), "asid2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CpuId::new(1) < CpuId::new(2));
    }
}
