//! # hatric-types
//!
//! Core vocabulary for the HATRIC translation-coherence simulator: strongly
//! typed addresses (guest-virtual, guest-physical, system-physical), page and
//! frame numbers, cache-line addresses, co-tags, hardware/software entity
//! identifiers, architectural constants, a deterministic RNG, and statistics
//! counters shared by every other crate in the workspace.
//!
//! The types follow the newtype pattern so that the simulator cannot mix up
//! the three address spaces involved in two-dimensional address translation
//! (see Sec. 2.1 of the paper): guest-virtual pages (GVP), guest-physical
//! pages (GPP), and system-physical pages (SPP).
//!
//! ```
//! use hatric_types::{GuestVirtAddr, PageSize};
//!
//! let va = GuestVirtAddr::new(0x7fff_dead_b000);
//! let page = va.page(PageSize::Base);
//! assert_eq!(page.base_addr().raw(), 0x7fff_dead_b000);
//! assert_eq!(va.page_offset(PageSize::Base), 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod consts;
pub mod error;
pub mod ids;
pub mod rng;
pub mod stats;

pub use addr::{
    CacheLineAddr, CoTag, GuestFrame, GuestPhysAddr, GuestVirtAddr, GuestVirtPage, PageSize,
    SystemFrame, SystemPhysAddr,
};
pub use consts::{
    CACHE_LINE_BYTES, PAGE_SIZE_4K, PTES_PER_CACHE_LINE, PTE_BYTES, RADIX_BITS_PER_LEVEL,
    RADIX_LEVELS,
};
pub use error::{ConfigError, Result, SimError};
pub use ids::{AddressSpaceId, CpuId, ProcessId, SocketId, VcpuId, VmId};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, RatioStat};
