//! Architectural constants for the simulated x86-64-like machine.
//!
//! The constants mirror the platform evaluated by the paper (Sec. 5): 4 KiB
//! base pages, 64-byte cache lines, 8-byte page-table entries (hence eight
//! PTEs per cache line, the invalidation granularity that HATRIC's coherence
//! piggybacking operates at), and 4-level radix page tables with 9 index bits
//! per level.

/// Size in bytes of a base (4 KiB) page.
pub const PAGE_SIZE_4K: u64 = 4096;

/// Size in bytes of a 2 MiB superpage.
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;

/// Size in bytes of a 1 GiB superpage.
pub const PAGE_SIZE_1G: u64 = 1024 * 1024 * 1024;

/// Size in bytes of a cache line on the simulated machine.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Size in bytes of one page-table entry.
pub const PTE_BYTES: u64 = 8;

/// Number of page-table entries that share one cache line.
///
/// This is the granularity at which HATRIC invalidates translation-structure
/// entries: a store to a nested-page-table cache line conservatively
/// invalidates every translation whose co-tag matches the line (Sec. 4.2,
/// "Coherence granularity").
pub const PTES_PER_CACHE_LINE: u64 = CACHE_LINE_BYTES / PTE_BYTES;

/// Number of levels in an x86-64 radix page table (PML4 .. PT).
pub const RADIX_LEVELS: usize = 4;

/// Number of virtual-address bits consumed per radix level.
pub const RADIX_BITS_PER_LEVEL: usize = 9;

/// Number of entries in one radix page-table node (2^9).
pub const RADIX_FANOUT: usize = 1 << RADIX_BITS_PER_LEVEL;

/// Memory references needed by a full two-dimensional page-table walk.
///
/// A nested walk performs `RADIX_LEVELS` nested lookups for each of the
/// `RADIX_LEVELS` guest levels plus a final nested walk for the data GPP:
/// `4 * 5 + 4 = 24` (Sec. 2.1).
pub const TWO_DIM_WALK_REFS: usize = RADIX_LEVELS * (RADIX_LEVELS + 1) + RADIX_LEVELS;

/// Memory references needed by a native (non-virtualized) page-table walk.
pub const NATIVE_WALK_REFS: usize = RADIX_LEVELS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptes_per_line_is_eight() {
        assert_eq!(PTES_PER_CACHE_LINE, 8);
    }

    #[test]
    fn two_dimensional_walk_is_24_references() {
        assert_eq!(TWO_DIM_WALK_REFS, 24);
    }

    #[test]
    fn radix_fanout_matches_bits() {
        assert_eq!(RADIX_FANOUT, 512);
    }

    #[test]
    fn superpage_sizes_are_multiples_of_base() {
        assert_eq!(PAGE_SIZE_2M % PAGE_SIZE_4K, 0);
        assert_eq!(PAGE_SIZE_1G % PAGE_SIZE_2M, 0);
    }
}
