//! Lightweight statistics primitives used by every simulated structure.
//!
//! Simulated hardware structures expose their behaviour through counters
//! ([`Counter`]), hit/miss style ratios ([`RatioStat`]) and coarse
//! distributions ([`Histogram`]).  All of them are plain-old-data so reports
//! can be serialised with `serde`.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self(0)
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments the counter by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

/// A hit/miss style ratio statistic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatioStat {
    hits: u64,
    misses: u64,
}

impl RatioStat {
    /// Creates a zeroed statistic.
    #[must_use]
    pub const fn new() -> Self {
        Self { hits: 0, misses: 0 }
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records `n` hits at once (batched commit of a worker's tally).
    pub fn add_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Records `n` misses at once (batched commit of a worker's tally).
    pub fn add_misses(&mut self, n: u64) {
        self.misses += n;
    }

    /// Records `hit` as a boolean outcome.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Number of hits recorded.
    #[must_use]
    pub const fn hits(self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    #[must_use]
    pub const fn misses(self) -> u64 {
        self.misses
    }

    /// Total number of accesses recorded.
    #[must_use]
    pub const fn total(self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero if nothing was recorded.
    #[must_use]
    pub fn hit_rate(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Miss rate in `[0, 1]`; zero if nothing was recorded.
    #[must_use]
    pub fn miss_rate(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }

    /// Merges another statistic into this one.
    pub fn merge(&mut self, other: RatioStat) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl fmt::Display for RatioStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}% hit)",
            self.hits,
            self.total(),
            self.hit_rate() * 100.0
        )
    }
}

/// A fixed-bucket histogram for coarse latency / size distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    /// A final unbounded bucket is added automatically.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of all recorded samples (zero if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts; the last bucket is unbounded.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&[1, 4, 16, 64, 256, 1024, 4096])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c += 4;
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_rates() {
        let mut r = RatioStat::new();
        for _ in 0..3 {
            r.hit();
        }
        r.miss();
        assert_eq!(r.total(), 4);
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
        assert!((r.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratio_empty_is_zero() {
        let r = RatioStat::new();
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.miss_rate(), 0.0);
    }

    #[test]
    fn ratio_merge() {
        let mut a = RatioStat::new();
        a.hit();
        let mut b = RatioStat::new();
        b.miss();
        a.merge(b);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        assert_eq!(h.buckets(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 500);
        assert!((h.mean() - 185.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 5]);
    }
}
