//! Strongly typed addresses for the three address spaces of a virtualized
//! system, plus the derived quantities the simulator works with (pages,
//! frames, cache lines, and HATRIC co-tags).
//!
//! Two-dimensional address translation involves three spaces:
//!
//! * **Guest-virtual** ([`GuestVirtAddr`], [`GuestVirtPage`]) — what a guest
//!   application issues.
//! * **Guest-physical** ([`GuestPhysAddr`], [`GuestFrame`]) — what the guest
//!   OS believes is physical memory.
//! * **System-physical** ([`SystemPhysAddr`], [`SystemFrame`]) — real DRAM
//!   locations, managed by the hypervisor.
//!
//! The newtypes make it a compile error to, e.g., index the nested page table
//! with a guest-virtual page, which is exactly the confusion the paper points
//! out hypervisors struggle with (they know GPPs/SPPs but not GVPs).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::consts::{CACHE_LINE_BYTES, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K};

/// Page sizes supported by the simulated architecture.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum PageSize {
    /// 4 KiB base page.
    #[default]
    Base,
    /// 2 MiB superpage.
    Large2M,
    /// 1 GiB superpage.
    Huge1G,
}

impl PageSize {
    /// Size of the page in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Base => PAGE_SIZE_4K,
            PageSize::Large2M => PAGE_SIZE_2M,
            PageSize::Huge1G => PAGE_SIZE_1G,
        }
    }

    /// Number of address bits covered by the page offset.
    #[must_use]
    pub fn offset_bits(self) -> u32 {
        self.bytes().trailing_zeros()
    }

    /// Number of base (4 KiB) pages spanned by a page of this size.
    #[must_use]
    pub fn base_pages(self) -> u64 {
        self.bytes() / PAGE_SIZE_4K
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base => write!(f, "4KiB"),
            PageSize::Large2M => write!(f, "2MiB"),
            PageSize::Huge1G => write!(f, "1GiB"),
        }
    }
}

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident, $short:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit address.
            #[must_use]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address of the cache line containing this address.
            #[must_use]
            pub fn cache_line(self) -> CacheLineAddr {
                CacheLineAddr::containing(self.0)
            }

            /// Returns the offset of this address within its page.
            #[must_use]
            pub fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Returns an address displaced by `delta` bytes.
            #[must_use]
            pub fn offset(self, delta: u64) -> Self {
                Self(self.0.wrapping_add(delta))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, ":{:#x}"), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }
    };
}

addr_newtype!(
    /// A guest-virtual byte address (what guest applications issue).
    GuestVirtAddr,
    "gva"
);
addr_newtype!(
    /// A guest-physical byte address (what the guest OS manages).
    GuestPhysAddr,
    "gpa"
);
addr_newtype!(
    /// A system-physical byte address (real DRAM, managed by the hypervisor).
    SystemPhysAddr,
    "spa"
);

impl GuestVirtAddr {
    /// The guest-virtual page containing this address.
    #[must_use]
    pub fn page(self, size: PageSize) -> GuestVirtPage {
        GuestVirtPage::containing(self, size)
    }
}

impl GuestPhysAddr {
    /// The guest-physical frame containing this address.
    #[must_use]
    pub fn frame(self, size: PageSize) -> GuestFrame {
        GuestFrame::containing(self, size)
    }
}

impl SystemPhysAddr {
    /// The system-physical frame containing this address.
    #[must_use]
    pub fn frame(self, size: PageSize) -> SystemFrame {
        SystemFrame::containing(self, size)
    }
}

macro_rules! page_newtype {
    ($(#[$meta:meta])* $name:ident, $addr:ident, $short:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates a page/frame from its 4 KiB-granular number.
            #[must_use]
            pub const fn new(number: u64) -> Self {
                Self(number)
            }

            /// The page/frame number (in units of 4 KiB base pages).
            #[must_use]
            pub const fn number(self) -> u64 {
                self.0
            }

            /// The page/frame containing the given byte address.
            #[must_use]
            pub fn containing(addr: $addr, size: PageSize) -> Self {
                let base = addr.raw() & !(size.bytes() - 1);
                Self(base / PAGE_SIZE_4K)
            }

            /// First byte address of the page/frame.
            #[must_use]
            pub fn base_addr(self) -> $addr {
                $addr::new(self.0 * PAGE_SIZE_4K)
            }

            /// Address of the `offset`-th byte inside the page/frame.
            #[must_use]
            pub fn addr_at(self, offset: u64) -> $addr {
                $addr::new(self.0 * PAGE_SIZE_4K + offset)
            }

            /// The next page/frame number.
            #[must_use]
            pub fn next(self) -> Self {
                Self(self.0 + 1)
            }

            /// A page/frame displaced by `delta` base pages.
            #[must_use]
            pub fn offset(self, delta: u64) -> Self {
                Self(self.0.wrapping_add(delta))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, ":{:#x}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(number: u64) -> Self {
                Self(number)
            }
        }

        impl From<$name> for u64 {
            fn from(page: $name) -> u64 {
                page.0
            }
        }
    };
}

page_newtype!(
    /// A guest-virtual page number (GVP).
    GuestVirtPage,
    GuestVirtAddr,
    "gvp"
);
page_newtype!(
    /// A guest-physical frame number (GPP).
    GuestFrame,
    GuestPhysAddr,
    "gpp"
);
page_newtype!(
    /// A system-physical frame number (SPP).
    SystemFrame,
    SystemPhysAddr,
    "spp"
);

/// The address of a 64-byte cache line in system-physical space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CacheLineAddr(u64);

impl CacheLineAddr {
    /// Creates a cache-line address from a line-aligned byte address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `aligned` is not 64-byte aligned.
    #[must_use]
    pub fn new(aligned: u64) -> Self {
        debug_assert_eq!(
            aligned % CACHE_LINE_BYTES,
            0,
            "address must be line aligned"
        );
        Self(aligned)
    }

    /// The cache line containing a byte address.
    #[must_use]
    pub fn containing(addr: u64) -> Self {
        Self(addr & !(CACHE_LINE_BYTES - 1))
    }

    /// The line-aligned byte address of this cache line.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The line index (raw address divided by the line size).
    #[must_use]
    pub fn index(self) -> u64 {
        self.0 / CACHE_LINE_BYTES
    }

    /// The system-physical address of the first byte of the line.
    #[must_use]
    pub fn base(self) -> SystemPhysAddr {
        SystemPhysAddr::new(self.0)
    }
}

impl fmt::Display for CacheLineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl From<SystemPhysAddr> for CacheLineAddr {
    fn from(addr: SystemPhysAddr) -> Self {
        CacheLineAddr::containing(addr.raw())
    }
}

/// A HATRIC coherence tag (co-tag).
///
/// A co-tag is a truncated system-physical address of the *page-table entry*
/// (not the data page) backing a cached translation. The paper's preferred
/// configuration stores bits 19..=3 of that address in a 2-byte tag
/// (Sec. 4.1/4.2); the width is configurable so the Fig. 11 co-tag sweep can
/// be reproduced.
///
/// Two translations whose page-table entries live in the same cache line
/// always produce the same co-tag, giving the 8-entry invalidation
/// granularity described in the paper. Narrow co-tags alias more.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CoTag(u32);

impl CoTag {
    /// Lowest address bit captured by a co-tag: bit 3 would address a PTE
    /// within a line, so tags start at bit `log2(CACHE_LINE_BYTES)` = 6?  No:
    /// the paper excludes the 3 least-significant PTE-index bits of the
    /// *entry address* (bits 0..=2 address bytes inside the PTE and 3..=5
    /// select the PTE within the line). HATRIC tracks whole cache lines, so
    /// the tag starts at the cache-line granularity, bit 6 of the byte
    /// address — equivalently bit 3 of the PTE index as stated in Sec. 4.2.
    pub const LOW_BIT: u32 = 6;

    /// Builds a co-tag of `width_bytes` bytes from the system-physical
    /// address of a page-table entry.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` is zero or greater than 4.
    #[must_use]
    pub fn from_pte_addr(pte_addr: SystemPhysAddr, width_bytes: u8) -> Self {
        assert!(
            (1..=4).contains(&width_bytes),
            "co-tag width must be between 1 and 4 bytes, got {width_bytes}"
        );
        let bits = u32::from(width_bytes) * 8;
        let shifted = pte_addr.raw() >> Self::LOW_BIT;
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        Self((shifted & mask) as u32)
    }

    /// Builds a co-tag from a cache-line address (used by coherence traffic).
    #[must_use]
    pub fn from_line(line: CacheLineAddr, width_bytes: u8) -> Self {
        Self::from_pte_addr(line.base(), width_bytes)
    }

    /// Raw tag value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CoTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cotag:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_round_trip() {
        let va = GuestVirtAddr::new(0x1234_5678);
        let page = va.page(PageSize::Base);
        assert_eq!(page.base_addr().raw(), 0x1234_5000);
        assert_eq!(va.page_offset(PageSize::Base), 0x678);
    }

    #[test]
    fn large_page_alignment() {
        let gpa = GuestPhysAddr::new(3 * PAGE_SIZE_2M + 17);
        let frame = gpa.frame(PageSize::Large2M);
        assert_eq!(frame.base_addr().raw(), 3 * PAGE_SIZE_2M);
        assert_eq!(frame.number() % PageSize::Large2M.base_pages(), 0);
    }

    #[test]
    fn cache_line_containing() {
        let line = CacheLineAddr::containing(0x1007);
        assert_eq!(line.raw(), 0x1000);
        assert_eq!(line.index(), 0x40);
    }

    #[test]
    fn cotag_same_line_same_tag() {
        let a = SystemPhysAddr::new(0x10_0c00);
        let b = SystemPhysAddr::new(0x10_0c38);
        assert_eq!(
            CoTag::from_pte_addr(a, 2),
            CoTag::from_pte_addr(b, 2),
            "PTEs in one cache line must share a co-tag"
        );
    }

    #[test]
    fn cotag_adjacent_lines_differ() {
        let a = SystemPhysAddr::new(0x10_0c00);
        let b = SystemPhysAddr::new(0x10_0c40);
        assert_ne!(CoTag::from_pte_addr(a, 2), CoTag::from_pte_addr(b, 2));
    }

    #[test]
    fn narrow_cotags_alias() {
        // With 1-byte co-tags only 8 bits are kept, so lines 256 lines apart alias.
        let a = SystemPhysAddr::new(0);
        let b = SystemPhysAddr::new(256 * CACHE_LINE_BYTES);
        assert_eq!(CoTag::from_pte_addr(a, 1), CoTag::from_pte_addr(b, 1));
        assert_ne!(CoTag::from_pte_addr(a, 2), CoTag::from_pte_addr(b, 2));
    }

    #[test]
    #[should_panic(expected = "co-tag width")]
    fn cotag_width_validation() {
        let _ = CoTag::from_pte_addr(SystemPhysAddr::new(0), 0);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", GuestVirtAddr::new(0)).is_empty());
        assert!(!format!("{}", GuestVirtPage::new(0)).is_empty());
        assert!(!format!("{}", CacheLineAddr::containing(0)).is_empty());
        assert!(!format!("{}", CoTag::default()).is_empty());
        assert!(!format!("{}", PageSize::Base).is_empty());
    }

    #[test]
    fn page_size_ordering() {
        assert!(PageSize::Base < PageSize::Large2M);
        assert!(PageSize::Large2M < PageSize::Huge1G);
        assert_eq!(PageSize::Large2M.base_pages(), 512);
    }
}
