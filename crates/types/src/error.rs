//! Error handling shared by the simulator crates.

use core::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, SimError>;

/// Errors produced by the HATRIC simulator crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was invalid (e.g. a non-power-of-two associativity).
    InvalidConfig {
        /// Description of the offending parameter.
        what: String,
    },
    /// Physical memory of the requested kind is exhausted.
    OutOfMemory {
        /// Which device ran out of frames.
        device: String,
    },
    /// A translation was requested for a page that is not mapped.
    UnmappedPage {
        /// The guest-virtual page number that missed.
        page: u64,
    },
    /// A guest-physical frame has no nested-page-table mapping.
    UnmappedGuestFrame {
        /// The guest-physical frame number that missed.
        frame: u64,
    },
    /// An entity identifier was out of range for the configured system.
    UnknownEntity {
        /// Description of the entity (e.g. "cpu 17 of 16").
        what: String,
    },
    /// A trace or workload was malformed.
    MalformedTrace {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SimError::OutOfMemory { device } => write!(f, "out of {device} memory"),
            SimError::UnmappedPage { page } => {
                write!(f, "guest virtual page {page:#x} is not mapped")
            }
            SimError::UnmappedGuestFrame { frame } => {
                write!(f, "guest physical frame {frame:#x} has no nested mapping")
            }
            SimError::UnknownEntity { what } => write!(f, "unknown entity: {what}"),
            SimError::MalformedTrace { what } => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Shorthand constructor for configuration errors.
    #[must_use]
    pub fn config(what: impl Into<String>) -> Self {
        SimError::InvalidConfig { what: what.into() }
    }

    /// Shorthand constructor for unknown-entity errors.
    #[must_use]
    pub fn unknown(what: impl Into<String>) -> Self {
        SimError::UnknownEntity { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = SimError::config("llc ways must be a power of two");
        let text = err.to_string();
        assert!(text.starts_with("invalid configuration"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(SimError::OutOfMemory {
            device: "die-stacked DRAM".into(),
        });
        assert!(err.to_string().contains("die-stacked"));
    }
}
