//! Error handling shared by the simulator crates.

use core::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, SimError>;

/// Errors produced by the HATRIC simulator crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was invalid (e.g. a non-power-of-two associativity).
    InvalidConfig {
        /// Description of the offending parameter.
        what: String,
    },
    /// Physical memory of the requested kind is exhausted.
    OutOfMemory {
        /// Which device ran out of frames.
        device: String,
    },
    /// A translation was requested for a page that is not mapped.
    UnmappedPage {
        /// The guest-virtual page number that missed.
        page: u64,
    },
    /// A guest-physical frame has no nested-page-table mapping.
    UnmappedGuestFrame {
        /// The guest-physical frame number that missed.
        frame: u64,
    },
    /// An entity identifier was out of range for the configured system.
    UnknownEntity {
        /// Description of the entity (e.g. "cpu 17 of 16").
        what: String,
    },
    /// A trace or workload was malformed.
    MalformedTrace {
        /// Description of the problem.
        what: String,
    },
    /// An operation targeted a host that has crashed (fault injection
    /// took it down; it no longer advances or accepts migrations).
    HostDown {
        /// Index of the dead host.
        host: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SimError::OutOfMemory { device } => write!(f, "out of {device} memory"),
            SimError::UnmappedPage { page } => {
                write!(f, "guest virtual page {page:#x} is not mapped")
            }
            SimError::UnmappedGuestFrame { frame } => {
                write!(f, "guest physical frame {frame:#x} has no nested mapping")
            }
            SimError::UnknownEntity { what } => write!(f, "unknown entity: {what}"),
            SimError::MalformedTrace { what } => write!(f, "malformed trace: {what}"),
            SimError::HostDown { host } => write!(f, "host {host} is down"),
        }
    }
}

impl std::error::Error for SimError {}

/// A typed configuration error: every way a declarative host/scenario
/// description can fail validation, as its own variant rather than a panic
/// or a stringly-typed [`SimError::InvalidConfig`].
///
/// Config validation across the workspace (`HostConfig::validate`, the
/// scenario layer's parameter parsing) returns this type so callers can
/// match on *which* invariant broke; the `From<ConfigError>` impl converts
/// into [`SimError`] at the simulator boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The host was configured with zero physical CPUs.
    ZeroPcpus,
    /// The host's die-stacked device was configured with zero pages.
    ZeroFastPages,
    /// The host has no VMs to run.
    NoVms,
    /// A VM was configured with zero vCPUs.
    ZeroVcpus {
        /// Slot of the offending VM, or `None` when the VM is not (yet)
        /// part of a host.
        slot: Option<usize>,
    },
    /// `slice_accesses` was zero, so no vCPU would ever make progress.
    ZeroSliceAccesses,
    /// `threads` was zero — the slice engine needs at least one worker.
    ZeroThreads,
    /// The per-VM die-stacked quotas oversubscribe the fast device.
    QuotaOvercommit {
        /// Sum of all VM quotas in pages.
        quota_sum: u64,
        /// Capacity of the fast device in pages.
        fast_pages: u64,
    },
    /// A VM's home socket does not exist on this host.
    HomeSocketOutOfRange {
        /// Slot of the offending VM.
        slot: usize,
        /// The requested home socket.
        home_socket: usize,
        /// Number of sockets the host actually has.
        sockets: usize,
    },
    /// A scheduled host event (migration / balloon) is inconsistent.
    BadEvent {
        /// Description of the problem.
        what: String,
    },
    /// A scenario parameter key is not recognised by the scenario.
    UnknownParam {
        /// The offending key.
        key: String,
    },
    /// A scenario parameter value could not be parsed.
    BadValue {
        /// The parameter key.
        key: String,
        /// The unparseable value.
        value: String,
    },
    /// A fault-injection plan is inconsistent (zero hosts, weights that
    /// sum to zero, an out-of-order schedule, an event naming a host the
    /// fleet does not have, …).
    BadFaultPlan {
        /// Description of the problem.
        what: String,
    },
    /// Any other invalid configuration (platform-level checks).
    Invalid {
        /// Description of the offending parameter.
        what: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPcpus => write!(f, "a host needs at least one physical CPU"),
            ConfigError::ZeroFastPages => {
                write!(f, "a host needs a nonzero die-stacked capacity")
            }
            ConfigError::NoVms => write!(f, "a host needs at least one VM"),
            ConfigError::ZeroVcpus { slot: None } => {
                write!(f, "a VM needs at least one vCPU")
            }
            ConfigError::ZeroVcpus { slot: Some(slot) } => {
                write!(f, "VM slot {slot} needs at least one vCPU")
            }
            ConfigError::ZeroSliceAccesses => write!(f, "slice_accesses must be nonzero"),
            ConfigError::ZeroThreads => {
                write!(f, "threads must be nonzero (1 = serial slice execution)")
            }
            ConfigError::QuotaOvercommit {
                quota_sum,
                fast_pages,
            } => write!(
                f,
                "VM die-stacked quotas ({quota_sum} pages) exceed the fast device \
                 capacity ({fast_pages} pages)"
            ),
            ConfigError::HomeSocketOutOfRange {
                slot,
                home_socket,
                sockets,
            } => write!(
                f,
                "VM slot {slot} is homed on socket {home_socket} but the host has \
                 only {sockets} socket(s)"
            ),
            ConfigError::BadEvent { what } => write!(f, "invalid host event: {what}"),
            ConfigError::BadFaultPlan { what } => write!(f, "invalid fault plan: {what}"),
            ConfigError::UnknownParam { key } => {
                write!(f, "unknown scenario parameter: {key}")
            }
            ConfigError::BadValue { key, value } => {
                write!(f, "cannot parse scenario parameter {key}={value}")
            }
            ConfigError::Invalid { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for SimError {
    fn from(err: ConfigError) -> Self {
        SimError::InvalidConfig {
            what: err.to_string(),
        }
    }
}

impl From<SimError> for ConfigError {
    fn from(err: SimError) -> Self {
        match err {
            SimError::InvalidConfig { what } => ConfigError::Invalid { what },
            other => ConfigError::Invalid {
                what: other.to_string(),
            },
        }
    }
}

impl ConfigError {
    /// Shorthand constructor for event-validation errors.
    #[must_use]
    pub fn event(what: impl Into<String>) -> Self {
        ConfigError::BadEvent { what: what.into() }
    }

    /// Shorthand constructor for fault-plan validation errors.
    #[must_use]
    pub fn fault_plan(what: impl Into<String>) -> Self {
        ConfigError::BadFaultPlan { what: what.into() }
    }
}

impl SimError {
    /// Shorthand constructor for configuration errors.
    #[must_use]
    pub fn config(what: impl Into<String>) -> Self {
        SimError::InvalidConfig { what: what.into() }
    }

    /// Shorthand constructor for unknown-entity errors.
    #[must_use]
    pub fn unknown(what: impl Into<String>) -> Self {
        SimError::UnknownEntity { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = SimError::config("llc ways must be a power of two");
        let text = err.to_string();
        assert!(text.starts_with("invalid configuration"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn config_error_displays_each_invariant() {
        assert_eq!(
            ConfigError::ZeroPcpus.to_string(),
            "a host needs at least one physical CPU"
        );
        assert!(ConfigError::ZeroFastPages.to_string().contains("nonzero"));
        assert!(ConfigError::ZeroVcpus { slot: Some(3) }
            .to_string()
            .contains("slot 3"));
        assert!(ConfigError::ZeroVcpus { slot: None }
            .to_string()
            .starts_with("a VM"));
        let err = ConfigError::QuotaOvercommit {
            quota_sum: 300,
            fast_pages: 256,
        };
        assert!(err.to_string().contains("300"));
        assert!(err.to_string().contains("256"));
        let err = ConfigError::HomeSocketOutOfRange {
            slot: 1,
            home_socket: 2,
            sockets: 2,
        };
        assert!(err.to_string().contains("socket 2"));
        assert_eq!(
            ConfigError::fault_plan("weights sum to zero").to_string(),
            "invalid fault plan: weights sum to zero"
        );
    }

    #[test]
    fn host_down_names_the_host() {
        assert_eq!(SimError::HostDown { host: 3 }.to_string(), "host 3 is down");
    }

    #[test]
    fn config_error_round_trips_into_sim_error() {
        let sim: SimError = ConfigError::ZeroSliceAccesses.into();
        assert_eq!(
            sim,
            SimError::InvalidConfig {
                what: "slice_accesses must be nonzero".into()
            }
        );
        let back: ConfigError = sim.into();
        assert_eq!(
            back,
            ConfigError::Invalid {
                what: "slice_accesses must be nonzero".into()
            }
        );
        let cfg: ConfigError = SimError::OutOfMemory {
            device: "die-stacked DRAM".into(),
        }
        .into();
        assert!(matches!(cfg, ConfigError::Invalid { .. }));
    }

    #[test]
    fn config_errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(SimError::OutOfMemory {
            device: "die-stacked DRAM".into(),
        });
        assert!(err.to_string().contains("die-stacked"));
    }
}
