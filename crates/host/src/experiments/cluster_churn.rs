//! The cluster-churn experiment: a fleet of consolidated hosts under
//! concurrent inter-host live migrations and VM arrival/departure churn.
//!
//! Each host runs `active_vms` victim VMs (plus spare slots for arrivals
//! and migration destinations) over its own platform; the
//! [`Cluster`] advances the fleet in lockstep
//! epochs and wires migration page streams between hosts at the epoch
//! boundaries.  Shortly into the measured phase, `migrations` pre-copy
//! migrations start at once — one per source host — so every transferred
//! page triggers a source-side write-protect *and* a destination-side
//! first-touch-plus-remap, on two different hosts, under the mechanism
//! under test.  The aggregate victim slowdown and the per-migration
//! downtime distribution are the headline numbers: software shootdowns
//! degrade both as the concurrent-migration count grows, HATRIC holds
//! both near the ideal-coherence bound.

use hatric::EngineKind;
use hatric_cluster::{
    ChurnStream, Cluster, ClusterParams, ClusterReport, MigrationMode, PlacementPolicy,
    ScheduledMigration,
};
use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::SchedPolicy;
use hatric_migration::{MigrationParams, ReceiverParams};

use crate::config::{HostConfig, VmSpec};
use crate::host::ConsolidatedHost;

/// Sizing of the cluster-churn experiment.
#[derive(Debug, Clone, Copy)]
pub struct ClusterChurnParams {
    /// Number of consolidated hosts in the fleet.
    pub hosts: usize,
    /// Physical CPUs per host.
    pub num_pcpus: usize,
    /// Die-stacked capacity per host, in 4 KiB pages.
    pub fast_pages: u64,
    /// VMs active on each host at the start of the run.
    pub active_vms: usize,
    /// Additional initially-inactive slots per host (arrival and
    /// migration-destination headroom).
    pub spare_slots: usize,
    /// vCPUs per VM.
    pub vm_vcpus: usize,
    /// Scheduler slices per cluster epoch.
    pub epoch_slices: u64,
    /// Unmeasured warmup epochs.
    pub warmup_epochs: u64,
    /// Measured epochs (migrations and churn land inside this window).
    pub measured_epochs: u64,
    /// Accesses per scheduled vCPU per slice.
    pub slice_accesses: u64,
    /// Master seed (each host derives its own workload seeds from it).
    pub seed: u64,
    /// Cluster worker threads (hosts are sharded over them; results are
    /// byte-identical for any value).  Per-host slice engines run
    /// single-threaded — the fleet is the parallelism axis here.
    pub threads: usize,
    /// Per-host slice-executor backend (results are byte-identical
    /// between the two).
    pub engine: EngineKind,
    /// Mean epochs between churn events (0 disables churn).
    pub churn_period: u64,
    /// Pre-copy link bandwidth in pages per slice.
    pub copy_pages_per_slice: u64,
    /// Auto-convergence threshold in pre-copy rounds (0 disables).
    pub throttle_after_rounds: u32,
    /// Where arrivals and migration destinations land.
    pub policy: PlacementPolicy,
}

impl ClusterChurnParams {
    /// The committed-baseline sizing: four 4-pCPU hosts, three 2-vCPU VMs
    /// each plus two spare slots, light churn.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            hosts: 4,
            num_pcpus: 4,
            fast_pages: 1_024,
            active_vms: 3,
            spare_slots: 2,
            vm_vcpus: 2,
            epoch_slices: 30,
            warmup_epochs: 20,
            measured_epochs: 30,
            slice_accesses: 40,
            seed: hatric::DEFAULT_SEED,
            threads: 1,
            engine: EngineKind::Sliced,
            churn_period: 10,
            copy_pages_per_slice: 64,
            throttle_after_rounds: 3,
            policy: PlacementPolicy::LeastLoaded,
        }
    }

    /// A much smaller sizing for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            hosts: 4,
            num_pcpus: 4,
            fast_pages: 512,
            active_vms: 2,
            spare_slots: 2,
            vm_vcpus: 2,
            epoch_slices: 20,
            warmup_epochs: 8,
            measured_epochs: 14,
            slice_accesses: 25,
            seed: 0x7e57,
            threads: 1,
            engine: EngineKind::Sliced,
            churn_period: 6,
            copy_pages_per_slice: 48,
            throttle_after_rounds: 3,
            policy: PlacementPolicy::LeastLoaded,
        }
    }

    /// Slots per host (active plus spare).
    #[must_use]
    pub fn vm_slots(&self) -> usize {
        self.active_vms + self.spare_slots
    }

    /// Epoch at which the scheduled migrations start (an eighth into the
    /// measured phase, mirroring the single-host migration storm).
    #[must_use]
    pub fn migration_start_epoch(&self) -> u64 {
        self.warmup_epochs + self.measured_epochs / 8
    }

    /// The configuration of host `host` under `mechanism`.  Every slot —
    /// spare ones included — carries a VM spec; the cluster deactivates
    /// the spares before the run.  Host seeds diverge so the fleet is not
    /// N copies of one workload.
    #[must_use]
    pub fn host_config(&self, host: usize, mechanism: CoherenceMechanism) -> HostConfig {
        let quota = self.fast_pages / self.vm_slots().max(1) as u64;
        let mut cfg = HostConfig::scaled(self.num_pcpus, self.fast_pages)
            .with_mechanism(mechanism)
            .with_sched(SchedPolicy::RoundRobin)
            .with_slice_accesses(self.slice_accesses)
            .with_threads(1)
            .with_engine(self.engine)
            .with_seed(self.seed.wrapping_add(0x5eed * (host as u64 + 1)));
        for _ in 0..self.vm_slots() {
            cfg = cfg.with_vm(VmSpec::victim(self.vm_vcpus, quota));
        }
        cfg
    }

    /// Builds the fleet under `mechanism`: hosts constructed, spare slots
    /// deactivated, churn stream installed, `migrations` concurrent
    /// pre-copy migrations scheduled (one per source host, slot 0).
    ///
    /// # Panics
    ///
    /// Panics if the derived host configurations are invalid (the
    /// built-in parameter sets never are) or `migrations > hosts` (one
    /// outgoing pre-copy engine per host).
    #[must_use]
    pub fn build_cluster(
        &self,
        mechanism: CoherenceMechanism,
        migrations: usize,
    ) -> Cluster<ConsolidatedHost> {
        assert!(
            migrations <= self.hosts,
            "at most one concurrent outgoing migration per source host"
        );
        let hosts: Vec<ConsolidatedHost> = (0..self.hosts)
            .map(|h| {
                ConsolidatedHost::new(self.host_config(h, mechanism))
                    .expect("cluster-churn configurations are valid")
            })
            .collect();
        let mut params = ClusterParams::new(self.epoch_slices, self.threads);
        params.policy = self.policy;
        params.migration = MigrationParams {
            copy_pages_per_slice: self.copy_pages_per_slice,
            throttle_after_rounds: self.throttle_after_rounds,
            ..MigrationParams::at(0, 0)
        };
        params.receiver = ReceiverParams::for_slot(0);
        let mut cluster = Cluster::new(hosts, params);
        for host in 0..self.hosts {
            for slot in self.active_vms..self.vm_slots() {
                cluster.set_vm_active(host, slot, false);
            }
        }
        cluster.set_churn(
            ChurnStream::new(self.seed ^ CHURN_SEED_SALT, self.hosts, self.churn_period)
                .generate(self.warmup_epochs + self.measured_epochs),
        );
        for m in 0..migrations {
            cluster.schedule_migration(ScheduledMigration {
                epoch: self.migration_start_epoch(),
                src_host: m % self.hosts,
                src_slot: 0,
                dst_host: None,
                mode: MigrationMode::PreCopy,
            });
        }
        cluster
    }
}

/// Salt separating the churn-stream seed from the workload seeds derived
/// from the same master seed.
const CHURN_SEED_SALT: u64 = 0xc0de_c4a2;

/// The outcome of one mechanism's cluster-churn run.
#[derive(Debug, Clone)]
pub struct ClusterChurnRow {
    /// Mechanism under test.
    pub mechanism: CoherenceMechanism,
    /// The merged fleet report.
    pub report: ClusterReport,
    /// Mean victim runtime in cycles (VMs untouched by any migration).
    pub victim_runtime: f64,
    /// Mean victim runtime normalised to the same victims under
    /// [`CoherenceMechanism::Ideal`].
    pub agg_victim_slowdown_vs_ideal: f64,
    /// Cycles stolen from victim vCPUs by coherence across the fleet.
    pub victim_disrupted_cycles: u64,
    /// p99 of the per-migration downtime distribution.
    pub downtime_p99_cycles: u64,
    /// Worst per-migration downtime.
    pub downtime_max_cycles: u64,
    /// Wall-clock milliseconds of the run (machine-dependent, ungated).
    pub elapsed_ms: f64,
    /// Measured accesses per wall-clock second (machine-dependent,
    /// ungated).
    pub accesses_per_sec: f64,
}

/// Mean runtime over the fleet's victim VMs: every slot that made
/// progress and was never a source or destination of an inter-host
/// migration.  The set is a function of the deterministic churn/placement
/// flow only, so it is identical across mechanisms and the ratio to the
/// ideal run compares like with like.
pub(crate) fn mean_victim_runtime(report: &ClusterReport) -> f64 {
    let involved: Vec<(usize, usize)> = report
        .migrations
        .iter()
        .flat_map(|m| [(m.src_host, m.src_slot), (m.dst_host, m.dst_slot)])
        .collect();
    let mut total = 0.0;
    let mut count = 0u64;
    for (h, host) in report.per_host.iter().enumerate() {
        for (s, vm) in host.per_vm.iter().enumerate() {
            if vm.accesses > 0 && !involved.contains(&(h, s)) {
                total += vm.runtime_cycles() as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Summed coherence-disruption cycles over the same victim set
/// [`mean_victim_runtime`] averages.
pub(crate) fn victim_disrupted_cycles(report: &ClusterReport) -> u64 {
    let involved: Vec<(usize, usize)> = report
        .migrations
        .iter()
        .flat_map(|m| [(m.src_host, m.src_slot), (m.dst_host, m.dst_slot)])
        .collect();
    let mut total = 0;
    for (h, host) in report.per_host.iter().enumerate() {
        for (s, vm) in host.per_vm.iter().enumerate() {
            if vm.accesses > 0 && !involved.contains(&(h, s)) {
                total += vm.interference.disrupted_cycles;
            }
        }
    }
    total
}

/// Runs the fleet under software, HATRIC and ideal coherence with
/// `migrations` concurrent pre-copy migrations, and returns one row per
/// mechanism (victim slowdowns normalised to the ideal run).
#[must_use]
pub fn run(params: &ClusterChurnParams, migrations: usize) -> Vec<ClusterChurnRow> {
    let mechanisms = [
        CoherenceMechanism::Software,
        CoherenceMechanism::Hatric,
        CoherenceMechanism::Ideal,
    ];
    let reports: Vec<(CoherenceMechanism, ClusterReport, f64)> = mechanisms
        .iter()
        .map(|&mechanism| {
            let mut cluster = params.build_cluster(mechanism, migrations);
            let start = std::time::Instant::now();
            let report = cluster.run(params.warmup_epochs, params.measured_epochs);
            (mechanism, report, start.elapsed().as_secs_f64())
        })
        .collect();
    let ideal_victim = reports
        .iter()
        .find(|(m, _, _)| *m == CoherenceMechanism::Ideal)
        .map(|(_, r, _)| mean_victim_runtime(r))
        .unwrap_or(0.0);
    reports
        .into_iter()
        .map(|(mechanism, report, elapsed_secs)| {
            let victim_runtime = mean_victim_runtime(&report);
            let accesses_per_sec = if elapsed_secs > 0.0 {
                report.aggregate.accesses as f64 / elapsed_secs
            } else {
                0.0
            };
            ClusterChurnRow {
                mechanism,
                victim_runtime,
                agg_victim_slowdown_vs_ideal: if ideal_victim == 0.0 {
                    0.0
                } else {
                    victim_runtime / ideal_victim
                },
                victim_disrupted_cycles: victim_disrupted_cycles(&report),
                downtime_p99_cycles: report.downtime_percentile(99),
                downtime_max_cycles: report.downtime_percentile(100),
                report,
                elapsed_ms: elapsed_secs * 1_000.0,
                accesses_per_sec,
            }
        })
        .collect()
}

/// Formats the rows as the table the example prints.
#[must_use]
pub fn format_table(rows: &[ClusterChurnRow]) -> String {
    let mut out = String::from(
        "mechanism     victim-slowdown  downtime-p99  downtime-max  migrations  peak-inflight  victim-disrupted\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<13} {:>16.3} {:>13} {:>13} {:>11} {:>14} {:>17}\n",
            format!("{:?}", row.mechanism),
            row.agg_victim_slowdown_vs_ideal,
            row.downtime_p99_cycles,
            row.downtime_max_cycles,
            row.report.completed_migrations(),
            row.report.peak_inflight,
            row.victim_disrupted_cycles,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_migrations_complete_and_hatric_bounds_the_damage() {
        let params = ClusterChurnParams {
            churn_period: 0, // isolate the scheduled migrations
            ..ClusterChurnParams::quick()
        };
        let rows = run(&params, 4);
        assert_eq!(rows.len(), 3);
        let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
        let sw = by(CoherenceMechanism::Software);
        let hatric = by(CoherenceMechanism::Hatric);
        for row in &rows {
            assert_eq!(
                row.report.completed_migrations(),
                4,
                "{:?}: all four migrations must hand off inside the window",
                row.mechanism
            );
            assert!(row.report.peak_inflight >= 4);
            assert!(row.report.migration.received_pages > 0);
            assert!(row.downtime_p99_cycles > 0);
        }
        assert!(
            sw.downtime_p99_cycles > hatric.downtime_p99_cycles,
            "software downtime p99 {} must exceed hatric's {}",
            sw.downtime_p99_cycles,
            hatric.downtime_p99_cycles
        );
        assert!(
            sw.agg_victim_slowdown_vs_ideal > hatric.agg_victim_slowdown_vs_ideal,
            "software victim slowdown {} must exceed hatric's {}",
            sw.agg_victim_slowdown_vs_ideal,
            hatric.agg_victim_slowdown_vs_ideal
        );
    }

    #[test]
    fn churn_places_arrivals_and_the_fleet_reconciles() {
        let rows = run(&ClusterChurnParams::quick(), 1);
        for row in &rows {
            let report = &row.report;
            assert_eq!(report.hosts(), 4);
            let summed: u64 = report.per_host.iter().map(|h| h.host.accesses).sum();
            assert_eq!(report.aggregate.accesses, summed);
        }
    }
}
