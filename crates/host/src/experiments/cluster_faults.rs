//! The cluster-faults experiment: the churn fleet under a deterministic
//! fault storm — a host crash mid-migration, a stuck pre-copy that must
//! escalate, and a seeded background schedule of link and DRAM faults.
//!
//! The engineered part of the storm is fixed so the robustness claims are
//! checkable at any seed: three concurrent pre-copy migrations start, the
//! host that is simultaneously the *destination* of migration A and the
//! *source* of migration B crashes two epochs later (aborting both — one
//! with a destination rollback, one with a bounded retry — and
//! cold-restarting the dead host's VMs through placement), while
//! migration C's source engine is stuck and force-escalates to post-copy
//! at the non-convergence timeout.  On top of that, a
//! [`FaultPlan`] seeded by `fault_seed` (crash weight zero — the
//! engineered crash stays the only one) sprinkles link degradation,
//! blackouts, DRAM brownouts and stalls across the fleet.
//!
//! Everything is keyed to epochs, so the whole faulted run stays
//! byte-identical across thread counts and engine backends.  The headline
//! comparison: under the *same* fault storm, HATRIC must recover no
//! slower than software shootdowns — aggregate victim slowdown and the
//! p99 of recovery downtime (migration blackouts ∪ restart windows) both
//! gate `hatric ≤ software`.

use hatric_cluster::{
    ChurnStream, Cluster, ClusterParams, ClusterReport, FaultEvent, FaultKind, FaultPlan,
    FaultWeights, MigrationMode, ScheduledMigration,
};
use hatric_coherence::CoherenceMechanism;
use hatric_migration::{MigrationParams, ReceiverParams};

use crate::experiments::cluster_churn::{
    mean_victim_runtime, victim_disrupted_cycles, ClusterChurnParams,
};
use crate::host::ConsolidatedHost;

/// Salt separating the background fault-plan seed from the churn and
/// workload seeds derived from the same master seed.
const FAULT_SEED_SALT: u64 = 0xfa57_fa17;

/// Sizing of the cluster-faults experiment: the churn fleet plus the
/// fault storm's knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterFaultsParams {
    /// Fleet sizing and churn (the migration link is deliberately slow —
    /// `base.copy_pages_per_slice` — so the engineered crash lands
    /// mid-flight).
    pub base: ClusterChurnParams,
    /// Seed of the background [`FaultPlan`] (0 disables the background
    /// schedule; the engineered storm always runs).
    pub fault_seed: u64,
    /// Mean epochs between background fault events.
    pub fault_period: u64,
    /// Epochs after the migration start at which the engineered host
    /// crash fires.
    pub crash_after_epochs: u64,
    /// Duration of the engineered stuck-pre-copy window on migration C's
    /// source.
    pub stall_epochs: u64,
    /// Non-convergence timeout (epochs of pre-copy without hand-off
    /// before force-escalation to post-copy).
    pub stall_timeout_epochs: u64,
    /// Bounded retries for destination-crash aborts.
    pub max_retries: u32,
    /// Linear backoff between retry attempts, in epochs.
    pub retry_backoff_epochs: u64,
    /// Unavailability window charged per crash-driven VM cold restart.
    pub restart_penalty_cycles: u64,
}

impl ClusterFaultsParams {
    /// The committed-baseline sizing: the churn fleet with a slow
    /// migration link, crash two epochs into the storm, stuck pre-copy
    /// escalating after four epochs.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            base: ClusterChurnParams {
                copy_pages_per_slice: 2,
                ..ClusterChurnParams::default_scale()
            },
            fault_seed: 0xfa01,
            fault_period: 8,
            crash_after_epochs: 2,
            stall_epochs: 12,
            stall_timeout_epochs: 4,
            max_retries: 2,
            retry_backoff_epochs: 1,
            restart_penalty_cycles: 50_000,
        }
    }

    /// A much smaller sizing for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            base: ClusterChurnParams {
                copy_pages_per_slice: 1,
                ..ClusterChurnParams::quick()
            },
            fault_seed: 0xfa01,
            fault_period: 6,
            crash_after_epochs: 2,
            stall_epochs: 10,
            stall_timeout_epochs: 3,
            max_retries: 2,
            retry_backoff_epochs: 1,
            restart_penalty_cycles: 50_000,
        }
    }

    /// The full fault schedule: the engineered storm (crash + stall)
    /// merged with the seeded background plan, in epoch order.
    ///
    /// # Panics
    ///
    /// Panics if the derived background plan is invalid (the built-in
    /// parameter sets never are).
    #[must_use]
    pub fn fault_schedule(&self) -> Vec<FaultEvent> {
        let start = self.base.migration_start_epoch();
        let mut events = vec![
            FaultEvent {
                epoch: start,
                kind: FaultKind::StuckPreCopy {
                    host: 2 % self.base.hosts,
                    epochs: self.stall_epochs,
                },
            },
            FaultEvent {
                epoch: start + self.crash_after_epochs,
                kind: FaultKind::HostCrash {
                    host: 1 % self.base.hosts,
                },
            },
        ];
        if self.fault_seed != 0 && self.fault_period > 0 {
            let plan = FaultPlan {
                weights: FaultWeights {
                    crash: 0, // the engineered crash stays the only one
                    link: 3,
                    brownout: 3,
                    stall: 2,
                },
                ..FaultPlan::new(
                    self.fault_seed ^ FAULT_SEED_SALT,
                    self.base.hosts,
                    self.fault_period,
                )
            };
            events.extend(
                plan.generate(self.base.warmup_epochs + self.base.measured_epochs)
                    .expect("the background fault plan is valid"),
            );
        }
        events.sort_by_key(|e| e.epoch);
        events
    }

    /// Builds the faulted fleet under `mechanism`: churn installed, three
    /// concurrent pre-copy migrations scheduled (hosts 0, 1 and 2, slot
    /// 0), the fault schedule armed, recovery knobs set.
    ///
    /// # Panics
    ///
    /// Panics if the derived configurations are invalid or the fleet has
    /// fewer than four hosts (the engineered storm needs a crash victim,
    /// a stuck source and an uninvolved bystander).
    #[must_use]
    pub fn build_cluster(&self, mechanism: CoherenceMechanism) -> Cluster<ConsolidatedHost> {
        assert!(
            self.base.hosts >= 4,
            "the engineered fault storm needs at least four hosts"
        );
        let hosts: Vec<ConsolidatedHost> = (0..self.base.hosts)
            .map(|h| {
                ConsolidatedHost::new(self.base.host_config(h, mechanism))
                    .expect("cluster-faults configurations are valid")
            })
            .collect();
        let mut params = ClusterParams::new(self.base.epoch_slices, self.base.threads);
        params.policy = self.base.policy;
        params.migration = MigrationParams {
            copy_pages_per_slice: self.base.copy_pages_per_slice,
            throttle_after_rounds: self.base.throttle_after_rounds,
            ..MigrationParams::at(0, 0)
        };
        params.receiver = ReceiverParams::for_slot(0);
        params.stall_timeout_epochs = self.stall_timeout_epochs;
        params.max_retries = self.max_retries;
        params.retry_backoff_epochs = self.retry_backoff_epochs;
        params.restart_penalty_cycles = self.restart_penalty_cycles;
        let mut cluster = Cluster::new(hosts, params);
        for host in 0..self.base.hosts {
            for slot in self.base.active_vms..self.base.vm_slots() {
                cluster.set_vm_active(host, slot, false);
            }
        }
        if self.base.churn_period > 0 {
            cluster.set_churn(
                ChurnStream::new(
                    self.base.seed ^ 0xc0de_c4a2,
                    self.base.hosts,
                    self.base.churn_period,
                )
                .generate(self.base.warmup_epochs + self.base.measured_epochs),
            );
        }
        for src_host in 0..3 {
            cluster.schedule_migration(ScheduledMigration {
                epoch: self.base.migration_start_epoch(),
                src_host,
                src_slot: 0,
                // Migration A (src 0) is pinned onto host 1 so the
                // engineered crash deterministically kills a migration
                // *destination* (abort + bounded retry) as well as a
                // migration *source* (B, src 1); churn-perturbed loads
                // would otherwise let the policy route A elsewhere.
                dst_host: (src_host == 0).then_some(1 % self.base.hosts),
                mode: MigrationMode::PreCopy,
            });
        }
        cluster
            .set_faults(self.fault_schedule())
            .expect("the built-in fault schedule is valid");
        cluster
    }
}

/// The outcome of one mechanism's cluster-faults run.
#[derive(Debug, Clone)]
pub struct ClusterFaultsRow {
    /// Mechanism under test.
    pub mechanism: CoherenceMechanism,
    /// The merged fleet report.
    pub report: ClusterReport,
    /// Mean victim runtime in cycles (VMs untouched by any migration).
    pub victim_runtime: f64,
    /// Mean victim runtime normalised to the same victims under
    /// [`CoherenceMechanism::Ideal`].
    pub agg_victim_slowdown_vs_ideal: f64,
    /// Cycles stolen from victim vCPUs by coherence across the fleet.
    pub victim_disrupted_cycles: u64,
    /// p99 of the recovery-downtime distribution (handed-off migration
    /// blackouts ∪ crash-restart windows).
    pub recovery_downtime_p99_cycles: u64,
    /// Worst recovery downtime.
    pub recovery_downtime_max_cycles: u64,
    /// Wall-clock milliseconds of the run (machine-dependent, ungated).
    pub elapsed_ms: f64,
    /// Measured accesses per wall-clock second (machine-dependent,
    /// ungated).
    pub accesses_per_sec: f64,
}

/// Runs the faulted fleet under software, HATRIC and ideal coherence and
/// returns one row per mechanism (victim slowdowns normalised to the
/// ideal run, which weathers the identical fault storm).
#[must_use]
pub fn run(params: &ClusterFaultsParams) -> Vec<ClusterFaultsRow> {
    let mechanisms = [
        CoherenceMechanism::Software,
        CoherenceMechanism::Hatric,
        CoherenceMechanism::Ideal,
    ];
    let reports: Vec<(CoherenceMechanism, ClusterReport, f64)> = mechanisms
        .iter()
        .map(|&mechanism| {
            let mut cluster = params.build_cluster(mechanism);
            let start = std::time::Instant::now();
            let report = cluster.run(params.base.warmup_epochs, params.base.measured_epochs);
            (mechanism, report, start.elapsed().as_secs_f64())
        })
        .collect();
    let ideal_victim = reports
        .iter()
        .find(|(m, _, _)| *m == CoherenceMechanism::Ideal)
        .map(|(_, r, _)| mean_victim_runtime(r))
        .unwrap_or(0.0);
    reports
        .into_iter()
        .map(|(mechanism, report, elapsed_secs)| {
            let victim_runtime = mean_victim_runtime(&report);
            let accesses_per_sec = if elapsed_secs > 0.0 {
                report.aggregate.accesses as f64 / elapsed_secs
            } else {
                0.0
            };
            ClusterFaultsRow {
                mechanism,
                victim_runtime,
                agg_victim_slowdown_vs_ideal: if ideal_victim == 0.0 {
                    0.0
                } else {
                    victim_runtime / ideal_victim
                },
                victim_disrupted_cycles: victim_disrupted_cycles(&report),
                recovery_downtime_p99_cycles: report.recovery_downtime_percentile(99),
                recovery_downtime_max_cycles: report.recovery_downtime_percentile(100),
                report,
                elapsed_ms: elapsed_secs * 1_000.0,
                accesses_per_sec,
            }
        })
        .collect()
}

/// Formats the rows as the table the example prints.
#[must_use]
pub fn format_table(rows: &[ClusterFaultsRow]) -> String {
    let mut out = String::from(
        "mechanism     victim-slowdown  recovery-p99  recovery-max  crashes  aborts  retried  escalated  restarts\n",
    );
    for row in rows {
        let r = row.report.recovery;
        out.push_str(&format!(
            "{:<13} {:>16.3} {:>13} {:>13} {:>8} {:>7} {:>8} {:>10} {:>9}\n",
            format!("{:?}", row.mechanism),
            row.agg_victim_slowdown_vs_ideal,
            row.recovery_downtime_p99_cycles,
            row.recovery_downtime_max_cycles,
            r.host_crashes,
            r.migrations_aborted,
            r.migrations_retried,
            r.migrations_escalated,
            r.vm_restarts,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_storm_crashes_aborts_escalates_and_recovers() {
        let rows = run(&ClusterFaultsParams::quick());
        assert_eq!(rows.len(), 3);
        let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
        let sw = by(CoherenceMechanism::Software);
        let hatric = by(CoherenceMechanism::Hatric);
        for row in &rows {
            let recovery = row.report.recovery;
            assert_eq!(
                recovery.host_crashes, 1,
                "{:?}: exactly the engineered crash",
                row.mechanism
            );
            assert!(
                recovery.migrations_aborted >= 2,
                "{:?}: the crash must abort both migrations touching host 1 \
                 (got {})",
                row.mechanism,
                recovery.migrations_aborted
            );
            assert!(
                recovery.migrations_escalated >= 1,
                "{:?}: the stuck pre-copy must escalate",
                row.mechanism
            );
            assert!(
                recovery.vm_restarts >= 1,
                "{:?}: the dead host's VMs must cold-restart",
                row.mechanism
            );
            assert!(recovery.faults_injected >= 2);
            assert!(row.recovery_downtime_p99_cycles > 0);
        }
        assert!(
            hatric.agg_victim_slowdown_vs_ideal <= sw.agg_victim_slowdown_vs_ideal,
            "hatric victim slowdown {} must not exceed software's {}",
            hatric.agg_victim_slowdown_vs_ideal,
            sw.agg_victim_slowdown_vs_ideal
        );
        assert!(
            hatric.recovery_downtime_p99_cycles <= sw.recovery_downtime_p99_cycles,
            "hatric recovery p99 {} must not exceed software's {}",
            hatric.recovery_downtime_p99_cycles,
            sw.recovery_downtime_p99_cycles
        );
    }

    #[test]
    fn the_fault_storm_is_identical_across_mechanisms() {
        let params = ClusterFaultsParams::quick();
        let rows = run(&params);
        let storms: Vec<_> = rows
            .iter()
            .map(|r| {
                (
                    r.report.recovery.host_crashes,
                    r.report.recovery.faults_injected,
                    r.report.restarts.clone(),
                )
            })
            .collect();
        assert_eq!(storms[0], storms[1]);
        assert_eq!(storms[1], storms[2]);
    }
}
