//! The consolidated-host interference experiment.
//!
//! One aggressor VM (big-memory workload, footprint ≫ its die-stacked
//! quota, so the hypervisor remaps pages continuously) shares a host with
//! remap-free victim VMs, with more vCPUs than physical CPUs so the VMs
//! genuinely time-share CPUs.  Under software shootdowns every aggressor
//! remap IPIs all CPUs the aggressor ever ran on; the victims occupying
//! those CPUs eat VM exits and full TLB flushes.  Under HATRIC the same
//! remaps touch only the directory-listed sharer CPUs with co-tag
//! invalidations that never interrupt the running guest, so victim
//! slowdown collapses to (near) the ideal bound.

use hatric::metrics::HostReport;
use hatric::EngineKind;
use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::SchedPolicy;

use crate::config::{HostConfig, VmSpec};

/// Sizing of the multi-VM experiment.
#[derive(Debug, Clone, Copy)]
pub struct MultiVmParams {
    /// Physical CPUs of the host.
    pub num_pcpus: usize,
    /// Total die-stacked capacity in 4 KiB pages.
    pub fast_pages: u64,
    /// vCPUs of the aggressor VM.
    pub aggressor_vcpus: usize,
    /// Number of victim VMs.
    pub victims: usize,
    /// vCPUs of each victim VM.
    pub victim_vcpus: usize,
    /// Unmeasured warmup slices.
    pub warmup_slices: u64,
    /// Measured slices.
    pub measured_slices: u64,
    /// Accesses per scheduled vCPU per slice.
    pub slice_accesses: u64,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Master seed.
    pub seed: u64,
    /// Worker threads of the parallel slice engine (results are
    /// bit-identical for any value; only wall clock changes).
    pub threads: usize,
    /// Slice-executor backend (results are byte-identical between the
    /// two; only orchestration changes).
    pub engine: EngineKind,
    /// Aggressor workload scale as a fraction of its die-stacked quota.
    /// The aggressor's footprint is `footprint_vs_fast() ×` this scale, so
    /// raising the factor raises its paging — and remap — rate while
    /// leaving the machine and the victims untouched.
    pub aggressor_footprint_factor: f64,
}

impl MultiVmParams {
    /// The sizing used by the benchmark harness: a 4-VM host (1 aggressor +
    /// 3 victims, 8 vCPUs over 4 pCPUs, round-robin) big enough for
    /// steady-state paging.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            num_pcpus: 4,
            fast_pages: 2_048,
            aggressor_vcpus: 2,
            victims: 3,
            victim_vcpus: 2,
            warmup_slices: 600,
            measured_slices: 1_200,
            slice_accesses: 40,
            sched: SchedPolicy::RoundRobin,
            seed: hatric::DEFAULT_SEED,
            threads: 1,
            engine: EngineKind::Sliced,
            aggressor_footprint_factor: 1.0,
        }
    }

    /// Returns a copy with the given aggressor footprint factor.
    #[must_use]
    pub fn with_aggressor_footprint_factor(mut self, factor: f64) -> Self {
        self.aggressor_footprint_factor = factor;
        self
    }

    /// A much smaller sizing for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            num_pcpus: 4,
            fast_pages: 512,
            aggressor_vcpus: 2,
            victims: 3,
            victim_vcpus: 2,
            warmup_slices: 200,
            measured_slices: 300,
            slice_accesses: 25,
            sched: SchedPolicy::RoundRobin,
            seed: 0x7e57,
            threads: 1,
            engine: EngineKind::Sliced,
            aggressor_footprint_factor: 1.0,
        }
    }

    /// The host configuration this sizing describes, under `mechanism`.
    #[must_use]
    pub fn host_config(&self, mechanism: CoherenceMechanism) -> HostConfig {
        // The aggressor gets half the fast device; the victims split the
        // rest.  Victim footprints fit their quotas, so victims never remap.
        let aggressor_quota = self.fast_pages / 2;
        let victim_quota = (self.fast_pages - aggressor_quota) / self.victims.max(1) as u64;
        let mut aggressor = VmSpec::aggressor(self.aggressor_vcpus, aggressor_quota);
        aggressor.workload_scale_pages =
            ((aggressor_quota as f64 * self.aggressor_footprint_factor).max(1.0)) as u64;
        let mut cfg = HostConfig::scaled(self.num_pcpus, self.fast_pages)
            .with_mechanism(mechanism)
            .with_sched(self.sched)
            .with_slice_accesses(self.slice_accesses)
            .with_threads(self.threads)
            .with_engine(self.engine)
            .with_seed(self.seed)
            .with_vm(aggressor);
        for _ in 0..self.victims {
            cfg = cfg.with_vm(VmSpec::victim(self.victim_vcpus, victim_quota));
        }
        cfg
    }
}

/// The outcome of one mechanism's consolidated-host run.
#[derive(Debug, Clone)]
pub struct MultiVmRow {
    /// Mechanism under test.
    pub mechanism: CoherenceMechanism,
    /// The full host report.
    pub report: HostReport,
    /// Mean victim runtime in cycles (victims are slots 1..).
    pub victim_runtime: f64,
    /// Mean victim runtime normalised to the same victims under
    /// [`CoherenceMechanism::Ideal`] (1.0 = no coherence-induced slowdown).
    pub victim_slowdown_vs_ideal: f64,
    /// Total cycles stolen from victim vCPUs by aggressor coherence.
    pub victim_disrupted_cycles: u64,
    /// Remaps the aggressor performed.
    pub aggressor_remaps: u64,
    /// Wall-clock milliseconds of the run (machine-dependent, ungated).
    pub elapsed_ms: f64,
    /// Measured accesses per wall-clock second (machine-dependent, ungated).
    pub accesses_per_sec: f64,
}

/// Mean victim runtime of a host report (victims are slots `1..`).
fn mean_victim_runtime(report: &HostReport) -> f64 {
    let victims = &report.per_vm[1..];
    if victims.is_empty() {
        return 0.0;
    }
    victims
        .iter()
        .map(|r| r.runtime_cycles() as f64)
        .sum::<f64>()
        / victims.len() as f64
}

/// Runs the experiment under all four mechanisms and returns one row per
/// mechanism in presentation order (ideal last; victim slowdowns are
/// normalised to it after all runs complete).
///
/// # Panics
///
/// Panics if the derived host configuration is invalid (it never is for the
/// built-in parameter sets).
#[must_use]
pub fn run(params: &MultiVmParams) -> Vec<MultiVmRow> {
    let mechanisms = [
        CoherenceMechanism::Software,
        CoherenceMechanism::UnitdPlusPlus,
        CoherenceMechanism::Hatric,
        CoherenceMechanism::Ideal,
    ];
    let reports: Vec<(CoherenceMechanism, crate::experiments::TimedReport)> = mechanisms
        .iter()
        .map(|&mechanism| {
            (
                mechanism,
                crate::experiments::run_host_timed(
                    params.host_config(mechanism),
                    params.warmup_slices,
                    params.measured_slices,
                ),
            )
        })
        .collect();
    let ideal_victim = reports
        .iter()
        .find(|(m, _)| *m == CoherenceMechanism::Ideal)
        .map(|(_, t)| mean_victim_runtime(&t.report))
        .unwrap_or(0.0);
    reports
        .into_iter()
        .map(|(mechanism, timed)| {
            let report = timed.report;
            let victim_runtime = mean_victim_runtime(&report);
            MultiVmRow {
                mechanism,
                victim_runtime,
                victim_slowdown_vs_ideal: if ideal_victim == 0.0 {
                    0.0
                } else {
                    victim_runtime / ideal_victim
                },
                victim_disrupted_cycles: report.per_vm[1..]
                    .iter()
                    .map(|r| r.interference.disrupted_cycles)
                    .sum(),
                aggressor_remaps: report.per_vm[0].coherence.remaps,
                report,
                elapsed_ms: timed.elapsed_ms,
                accesses_per_sec: timed.accesses_per_sec,
            }
        })
        .collect()
}

/// Formats the rows as the table the example and bench print.
#[must_use]
pub fn format_table(rows: &[MultiVmRow]) -> String {
    let mut out = String::from(
        "mechanism    victim-slowdown  victim-disrupted-cycles  aggressor-remaps  ipis  vm-exits\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:>15.3} {:>24} {:>17} {:>5} {:>9}\n",
            format!("{:?}", row.mechanism),
            row.victim_slowdown_vs_ideal,
            row.victim_disrupted_cycles,
            row.aggressor_remaps,
            row.report.host.coherence.ipis,
            row.report.host.coherence.coherence_vm_exits,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shootdown_disrupts_victims_and_hatric_does_not() {
        let rows = run(&MultiVmParams::quick());
        assert_eq!(rows.len(), 4);
        let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
        let sw = by(CoherenceMechanism::Software);
        let hatric = by(CoherenceMechanism::Hatric);
        let ideal = by(CoherenceMechanism::Ideal);
        assert!(sw.aggressor_remaps > 0, "aggressor must page");
        assert!(
            sw.victim_disrupted_cycles > 0,
            "software shootdowns must disturb victims"
        );
        assert_eq!(hatric.victim_disrupted_cycles, 0);
        assert_eq!(ideal.victim_disrupted_cycles, 0);
        assert!(
            sw.victim_slowdown_vs_ideal > hatric.victim_slowdown_vs_ideal,
            "software victim slowdown {} must exceed hatric's {}",
            sw.victim_slowdown_vs_ideal,
            hatric.victim_slowdown_vs_ideal
        );
        assert!(
            hatric.victim_slowdown_vs_ideal < 1.05,
            "hatric victims must stay within 5% of ideal, got {}",
            hatric.victim_slowdown_vs_ideal
        );
    }
}
