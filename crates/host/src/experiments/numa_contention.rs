//! The NUMA multi-socket contention experiment.
//!
//! The multi-VM interference experiment on a multi-socket host: one
//! paging-heavy aggressor shares CPUs and memory with remap-free victims,
//! but now the physical CPUs and both DRAM devices are split across
//! sockets joined by bandwidth-limited inter-socket links.  The sweep
//! holds the machine's total memory *capacity* and CPU count fixed and
//! raises the **remote-access ratio** — with interleaved allocation on *S*
//! sockets, a fraction `(S-1)/S` of all DRAM traffic crosses a link.
//! (Each socket carries its own memory controllers, so aggregate DRAM
//! bandwidth grows with the socket count, as on real hardware; that relief
//! *reduces* queueing contention as S rises, making the widening software
//! penalty conservative.)
//!
//! Distance magnifies the software shootdown bill twice over:
//!
//! * cross-socket IPIs and their acknowledgements pay the link premium on
//!   every disruptive target;
//! * every full flush forces the victims to re-walk page tables and refill
//!   translations through the (congested) link, so the flush *aftermath*
//!   scales with the remote-access ratio.
//!
//! HATRIC's co-tag invalidations ride the existing coherence interconnect
//! for a few cycles per hop and invalidate selectively, so its victims stay
//! at the ideal bound regardless of distance — the HATRIC-vs-software gap
//! widens monotonically as the remote ratio rises.
//!
//! A second configuration axis (socket-affine pinning + first-touch
//! allocation) shows the *scheduling* counterpart: placement that confines
//! a VM to its home socket keeps most of the blast radius — and most of its
//! memory traffic — socket-local.

use hatric::metrics::HostReport;
use hatric::{EngineKind, NumaConfig};
use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::{NumaPolicy, SchedPolicy};

use crate::config::{HostConfig, VmSpec};

/// Sizing of the NUMA contention experiment.
#[derive(Debug, Clone, Copy)]
pub struct NumaContentionParams {
    /// Physical CPUs of the host (split evenly across sockets).
    pub num_pcpus: usize,
    /// Number of sockets (1 reproduces the classic UMA host).
    pub sockets: usize,
    /// Total die-stacked capacity in 4 KiB pages (split across sockets).
    pub fast_pages: u64,
    /// vCPUs of the aggressor VM.
    pub aggressor_vcpus: usize,
    /// Number of victim VMs.
    pub victims: usize,
    /// vCPUs of each victim VM.
    pub victim_vcpus: usize,
    /// Unmeasured warmup slices.
    pub warmup_slices: u64,
    /// Measured slices.
    pub measured_slices: u64,
    /// Accesses per scheduled vCPU per slice.
    pub slice_accesses: u64,
    /// NUMA memory-placement policy.
    pub numa_policy: NumaPolicy,
    /// Scheduling policy.  Under [`SchedPolicy::SocketAffine`] the
    /// aggressor is homed on socket 0 and victim *i* on socket
    /// `(i + 1) % sockets` — with more victims than sockets, some victims
    /// share the aggressor's socket, mirroring a consolidated host that
    /// cannot fully isolate tenants.
    pub sched: SchedPolicy,
    /// Master seed.
    pub seed: u64,
    /// Worker threads of the parallel slice engine (results are
    /// bit-identical for any value; only wall clock changes).
    pub threads: usize,
    /// Slice-executor backend (results are byte-identical between the
    /// two; only orchestration changes).
    pub engine: EngineKind,
    /// Aggressor workload scale as a fraction of its die-stacked quota.
    pub aggressor_footprint_factor: f64,
}

impl NumaContentionParams {
    /// The sizing used by the benchmark harness: 8 pCPUs, 1 aggressor (4
    /// vCPUs) + 3 victims (2 vCPUs each) — 10 vCPUs over 8 pCPUs so the VMs
    /// genuinely time-share, round-robin, interleaved allocation.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            num_pcpus: 8,
            sockets: 1,
            fast_pages: 2_048,
            aggressor_vcpus: 4,
            victims: 3,
            victim_vcpus: 2,
            warmup_slices: 600,
            measured_slices: 1_200,
            slice_accesses: 40,
            numa_policy: NumaPolicy::Interleaved,
            sched: SchedPolicy::RoundRobin,
            seed: hatric::DEFAULT_SEED,
            threads: 1,
            engine: EngineKind::Sliced,
            aggressor_footprint_factor: 1.0,
        }
    }

    /// A much smaller sizing for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            num_pcpus: 8,
            sockets: 1,
            fast_pages: 512,
            aggressor_vcpus: 4,
            victims: 3,
            victim_vcpus: 2,
            warmup_slices: 200,
            measured_slices: 300,
            slice_accesses: 25,
            numa_policy: NumaPolicy::Interleaved,
            sched: SchedPolicy::RoundRobin,
            seed: 0x7e57,
            threads: 1,
            engine: EngineKind::Sliced,
            aggressor_footprint_factor: 1.0,
        }
    }

    /// Returns a copy with the given socket count.
    #[must_use]
    pub fn with_sockets(mut self, sockets: usize) -> Self {
        self.sockets = sockets;
        self
    }

    /// Returns a copy using the given placement policy.
    #[must_use]
    pub fn with_numa_policy(mut self, policy: NumaPolicy) -> Self {
        self.numa_policy = policy;
        self
    }

    /// Returns a copy using the given scheduling policy.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// The host configuration this sizing describes, under `mechanism`.
    ///
    /// Slot 0 is the aggressor (half the fast device, footprint scaled by
    /// `aggressor_footprint_factor`); victims split the rest.  Under
    /// [`SchedPolicy::SocketAffine`] the aggressor is homed on socket 0 and
    /// victim *i* on socket `(i + 1) % sockets`.
    #[must_use]
    pub fn host_config(&self, mechanism: CoherenceMechanism) -> HostConfig {
        let aggressor_quota = self.fast_pages / 2;
        let victim_quota = (self.fast_pages - aggressor_quota) / self.victims.max(1) as u64;
        let mut aggressor = VmSpec::aggressor(self.aggressor_vcpus, aggressor_quota);
        aggressor.workload_scale_pages =
            ((aggressor_quota as f64 * self.aggressor_footprint_factor).max(1.0)) as u64;
        let mut cfg = HostConfig::scaled(self.num_pcpus, self.fast_pages)
            .with_mechanism(mechanism)
            .with_numa(NumaConfig::symmetric(self.sockets))
            .with_numa_policy(self.numa_policy)
            .with_sched(self.sched)
            .with_slice_accesses(self.slice_accesses)
            .with_threads(self.threads)
            .with_engine(self.engine)
            .with_seed(self.seed)
            .with_vm(aggressor);
        for i in 0..self.victims {
            cfg = cfg.with_vm(
                VmSpec::victim(self.victim_vcpus, victim_quota)
                    .with_home_socket((i + 1) % self.sockets),
            );
        }
        cfg
    }
}

/// The outcome of one mechanism's run at one socket configuration.
#[derive(Debug, Clone)]
pub struct NumaContentionRow {
    /// Mechanism under test.
    pub mechanism: CoherenceMechanism,
    /// The full host report.
    pub report: HostReport,
    /// Mean victim runtime in cycles (victims are slots 1..).
    pub victim_runtime: f64,
    /// Mean victim runtime normalised to the same victims under
    /// [`CoherenceMechanism::Ideal`] at the *same* socket configuration, so
    /// the baseline NUMA cost every mechanism pays cancels out.
    pub victim_slowdown_vs_ideal: f64,
    /// Cycles stolen from victim vCPUs by aggressor coherence.
    pub victim_disrupted_cycles: u64,
    /// Remaps the aggressor performed.
    pub aggressor_remaps: u64,
    /// Host-wide fraction of DRAM accesses that crossed the link.
    pub remote_access_ratio: f64,
    /// Fraction of the aggressor's coherence targets on a remote socket.
    pub remote_target_ratio: f64,
    /// Wall-clock milliseconds of the run (machine-dependent, ungated).
    pub elapsed_ms: f64,
    /// Measured accesses per wall-clock second (machine-dependent, ungated).
    pub accesses_per_sec: f64,
}

/// Mean victim runtime of a host report (victims are slots `1..`).
fn mean_victim_runtime(report: &HostReport) -> f64 {
    let victims = &report.per_vm[1..];
    if victims.is_empty() {
        return 0.0;
    }
    victims
        .iter()
        .map(|r| r.runtime_cycles() as f64)
        .sum::<f64>()
        / victims.len() as f64
}

/// Runs the experiment under all four mechanisms at one socket
/// configuration, returning one row per mechanism (victim slowdowns
/// normalised to the ideal run of the same configuration).
///
/// # Panics
///
/// Panics if the derived host configuration is invalid (it never is for the
/// built-in parameter sets).
#[must_use]
pub fn run(params: &NumaContentionParams) -> Vec<NumaContentionRow> {
    let mechanisms = [
        CoherenceMechanism::Software,
        CoherenceMechanism::UnitdPlusPlus,
        CoherenceMechanism::Hatric,
        CoherenceMechanism::Ideal,
    ];
    let reports: Vec<(CoherenceMechanism, crate::experiments::TimedReport)> = mechanisms
        .iter()
        .map(|&mechanism| {
            (
                mechanism,
                crate::experiments::run_host_timed(
                    params.host_config(mechanism),
                    params.warmup_slices,
                    params.measured_slices,
                ),
            )
        })
        .collect();
    let ideal_victim = reports
        .iter()
        .find(|(m, _)| *m == CoherenceMechanism::Ideal)
        .map(|(_, t)| mean_victim_runtime(&t.report))
        .unwrap_or(0.0);
    reports
        .into_iter()
        .map(|(mechanism, timed)| {
            let report = timed.report;
            let victim_runtime = mean_victim_runtime(&report);
            NumaContentionRow {
                mechanism,
                victim_runtime,
                victim_slowdown_vs_ideal: if ideal_victim == 0.0 {
                    0.0
                } else {
                    victim_runtime / ideal_victim
                },
                victim_disrupted_cycles: report.per_vm[1..]
                    .iter()
                    .map(|r| r.interference.disrupted_cycles)
                    .sum(),
                aggressor_remaps: report.per_vm[0].coherence.remaps,
                remote_access_ratio: report.host.numa.remote_access_ratio(),
                remote_target_ratio: report.per_vm[0].numa.remote_target_ratio(),
                report,
                elapsed_ms: timed.elapsed_ms,
                accesses_per_sec: timed.accesses_per_sec,
            }
        })
        .collect()
}

/// Formats the rows as the table the example and bench print.
#[must_use]
pub fn format_table(rows: &[NumaContentionRow]) -> String {
    let mut out = String::from(
        "mechanism     victim-slowdown  victim-runtime  victim-disrupted  remote-ratio  remote-targets  remaps\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<13} {:>15.3} {:>14.0} {:>17} {:>12.3} {:>15.3} {:>7}\n",
            format!("{:?}", row.mechanism),
            row.victim_slowdown_vs_ideal,
            row.victim_runtime,
            row.victim_disrupted_cycles,
            row.remote_access_ratio,
            row.remote_target_ratio,
            row.aggressor_remaps,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by(rows: &[NumaContentionRow], m: CoherenceMechanism) -> &NumaContentionRow {
        rows.iter().find(|r| r.mechanism == m).unwrap()
    }

    #[test]
    fn hatric_beats_software_and_the_gap_widens_with_remote_ratio() {
        let mut gaps = Vec::new();
        let mut ratios = Vec::new();
        for sockets in [1, 2, 4] {
            let rows = run(&NumaContentionParams::quick().with_sockets(sockets));
            let sw = by(&rows, CoherenceMechanism::Software);
            let hatric = by(&rows, CoherenceMechanism::Hatric);
            assert!(sw.aggressor_remaps > 0, "aggressor must page");
            assert!(
                hatric.victim_slowdown_vs_ideal <= sw.victim_slowdown_vs_ideal,
                "{sockets} sockets: hatric victim slowdown {} must not exceed software's {}",
                hatric.victim_slowdown_vs_ideal,
                sw.victim_slowdown_vs_ideal
            );
            assert_eq!(hatric.victim_disrupted_cycles, 0);
            gaps.push(sw.victim_slowdown_vs_ideal - hatric.victim_slowdown_vs_ideal);
            ratios.push(sw.remote_access_ratio);
        }
        // Interleaved allocation over S sockets puts ~ (S-1)/S of traffic
        // behind the link.
        assert_eq!(ratios[0], 0.0, "a UMA host has no remote accesses");
        assert!(
            ratios.windows(2).all(|w| w[0] < w[1]),
            "remote ratio must rise with socket count: {ratios:?}"
        );
        // At this test's tiny scale the 2- vs 4-socket ordering is noisy, so
        // only the robust property is asserted here: socket distance makes
        // software shootdowns strictly worse than on the UMA host.  The
        // full-scale sweep (bench_check gates it) asserts strict
        // monotonicity across the whole series.
        assert!(
            gaps[1..].iter().all(|g| *g > gaps[0]),
            "every multi-socket gap must exceed the UMA gap: {gaps:?}"
        );
    }

    #[test]
    fn socket_affine_placement_confines_the_blast_radius() {
        let interleaved = run(&NumaContentionParams::quick().with_sockets(2));
        let affine = run(&NumaContentionParams::quick()
            .with_sockets(2)
            .with_numa_policy(NumaPolicy::FirstTouch)
            .with_sched(SchedPolicy::SocketAffine));
        let sw_spread = by(&interleaved, CoherenceMechanism::Software);
        let sw_affine = by(&affine, CoherenceMechanism::Software);
        // Affinity + first touch keeps the aggressor's memory (and its
        // shootdown targets) on its home socket.
        assert!(
            sw_affine.remote_target_ratio < sw_spread.remote_target_ratio,
            "affine remote-target ratio {} must undercut interleaved {}",
            sw_affine.remote_target_ratio,
            sw_spread.remote_target_ratio
        );
        assert!(
            sw_affine.victim_slowdown_vs_ideal < sw_spread.victim_slowdown_vs_ideal,
            "affine victim slowdown {} must undercut interleaved {}",
            sw_affine.victim_slowdown_vs_ideal,
            sw_spread.victim_slowdown_vs_ideal
        );
    }
}
