//! The simulator-throughput scaling experiment (`host_scale`).
//!
//! Unlike every other experiment, the subject here is the *simulator*, not
//! the simulated hardware: one consolidated-host configuration is executed
//! at several vCPU counts and several slice-engine thread counts, and each
//! run records both its **model metrics** (which must be bit-identical
//! across thread counts — the engine's determinism contract) and its
//! **wall-clock throughput** in accesses per second (which should rise
//! with the thread count on a multi-core machine).
//!
//! `bench_check` gates the model metrics against the committed
//! `BENCH_scale.json` *and* asserts that rows differing only in their
//! thread count carry identical model metrics; the timing columns are
//! machine-dependent and never gated.
//!
//! Every sweep point additionally re-runs under the message-passing
//! engine ([`hatric::MessageEngine`]): the run panics if the two backends'
//! reports differ, and the MP wall clock lands in its own ungated timing
//! columns so the committed benchmark carries a side-by-side per-engine
//! comparison.

use hatric::metrics::HostReport;
use hatric::EngineKind;
use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::SchedPolicy;
use hatric_workloads::WorkloadKind;

use crate::config::{HostConfig, VmSpec};

/// vCPUs per VM in the scaling host (VM count = total vCPUs / this).
const VCPUS_PER_VM: usize = 4;

/// Sizing of the host-scale experiment.
#[derive(Debug, Clone, Copy)]
pub struct HostScaleParams {
    /// Smallest total vCPU count of the sweep.
    pub vcpus_min: usize,
    /// Largest total vCPU count of the sweep (each point doubles).
    pub vcpus_max: usize,
    /// Largest slice-engine thread count of the sweep (each point doubles
    /// from 1).
    pub threads_max: usize,
    /// Die-stacked pages per vCPU.
    pub fast_pages_per_vcpu: u64,
    /// Unmeasured warmup slices.
    pub warmup_slices: u64,
    /// Measured slices.
    pub measured_slices: u64,
    /// Accesses per scheduled vCPU per slice.
    pub slice_accesses: u64,
    /// Master seed.
    pub seed: u64,
}

impl HostScaleParams {
    /// The sizing the benchmark harness uses: 8 → 32 vCPUs, 1 → 4 threads.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            vcpus_min: 8,
            vcpus_max: 32,
            threads_max: 4,
            fast_pages_per_vcpu: 128,
            warmup_slices: 150,
            measured_slices: 250,
            slice_accesses: 50,
            seed: hatric::DEFAULT_SEED,
        }
    }

    /// A much smaller sizing for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            vcpus_min: 8,
            vcpus_max: 8,
            threads_max: 4,
            fast_pages_per_vcpu: 64,
            warmup_slices: 60,
            measured_slices: 90,
            slice_accesses: 25,
            seed: 0x7e57,
        }
    }

    /// The sweep's total-vCPU points: doubling from `vcpus_min` to
    /// `vcpus_max` inclusive.
    #[must_use]
    pub fn vcpu_points(&self) -> Vec<usize> {
        let mut points = Vec::new();
        let mut v = self.vcpus_min.max(VCPUS_PER_VM);
        while v < self.vcpus_max {
            points.push(v);
            v *= 2;
        }
        points.push(self.vcpus_max);
        points.dedup();
        points
    }

    /// The sweep's thread points: doubling from 1 to `threads_max`
    /// inclusive.
    #[must_use]
    pub fn thread_points(&self) -> Vec<usize> {
        let mut points = vec![1];
        let mut t = 2;
        while t <= self.threads_max {
            points.push(t);
            t *= 2;
        }
        points
    }

    /// The host configuration for one sweep point: `vcpus / 4` VMs of 4
    /// vCPUs each (one paging aggressor, the rest remap-free victims) on
    /// `vcpus` physical CPUs under HATRIC, simulated on `threads` workers.
    #[must_use]
    pub fn host_config(&self, vcpus: usize, threads: usize) -> HostConfig {
        let vms = (vcpus / VCPUS_PER_VM).max(1);
        let fast_pages = self.fast_pages_per_vcpu * vcpus as u64;
        let quota = fast_pages / vms as u64;
        let mut cfg = HostConfig::scaled(vcpus, fast_pages)
            .with_mechanism(CoherenceMechanism::Hatric)
            .with_sched(SchedPolicy::Pinned)
            .with_slice_accesses(self.slice_accesses)
            .with_threads(threads)
            .with_seed(self.seed);
        for slot in 0..vms {
            let spec = if slot == 0 {
                VmSpec::aggressor(VCPUS_PER_VM, quota)
            } else {
                VmSpec {
                    workload: WorkloadKind::SmallFootprint,
                    ..VmSpec::victim(VCPUS_PER_VM, quota)
                }
            };
            cfg = cfg.with_vm(spec);
        }
        cfg
    }
}

/// The outcome of one `(vcpus, threads)` sweep point.
#[derive(Debug, Clone)]
pub struct HostScaleRow {
    /// Total vCPUs of the host.
    pub vcpus: usize,
    /// Slice-engine worker threads.
    pub threads: usize,
    /// The full host report (bit-identical across `threads` for a fixed
    /// `vcpus`).
    pub report: HostReport,
    /// Wall-clock milliseconds of the run under the phased (sliced)
    /// engine (machine-dependent, ungated).
    pub elapsed_ms: f64,
    /// Measured accesses per wall-clock second (machine-dependent,
    /// ungated) — the speedup axis.
    pub accesses_per_sec: f64,
    /// Wall-clock milliseconds of the same point under the
    /// message-passing engine (machine-dependent, ungated).
    pub mp_elapsed_ms: f64,
    /// Message-passing engine accesses per wall-clock second
    /// (machine-dependent, ungated).
    pub mp_accesses_per_sec: f64,
}

/// Runs the sweep: every vCPU point × every thread point, each point under
/// both slice-engine backends.
///
/// # Panics
///
/// Panics if a derived host configuration is invalid (it never is for the
/// built-in parameter sets), or if the message-passing engine's report
/// diverges from the phased engine's — the engines' conformance contract.
#[must_use]
pub fn run(params: &HostScaleParams) -> Vec<HostScaleRow> {
    let mut rows = Vec::new();
    for vcpus in params.vcpu_points() {
        for threads in params.thread_points() {
            let timed = crate::experiments::run_host_timed(
                params.host_config(vcpus, threads),
                params.warmup_slices,
                params.measured_slices,
            );
            let timed_mp = crate::experiments::run_host_timed(
                params
                    .host_config(vcpus, threads)
                    .with_engine(EngineKind::MessagePassing),
                params.warmup_slices,
                params.measured_slices,
            );
            assert_eq!(
                timed.report, timed_mp.report,
                "v{vcpus}_t{threads}: the message-passing engine must match the phased engine"
            );
            rows.push(HostScaleRow {
                vcpus,
                threads,
                report: timed.report,
                elapsed_ms: timed.elapsed_ms,
                accesses_per_sec: timed.accesses_per_sec,
                mp_elapsed_ms: timed_mp.elapsed_ms,
                mp_accesses_per_sec: timed_mp.accesses_per_sec,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_double_and_deduplicate() {
        let p = HostScaleParams::default_scale();
        assert_eq!(p.vcpu_points(), vec![8, 16, 32]);
        assert_eq!(p.thread_points(), vec![1, 2, 4]);
        let q = HostScaleParams::quick();
        assert_eq!(q.vcpu_points(), vec![8]);
    }

    #[test]
    fn model_metrics_are_identical_across_thread_counts() {
        let rows = run(&HostScaleParams::quick());
        assert_eq!(rows.len(), 3, "8 vCPUs x threads {{1,2,4}}");
        let base = &rows[0];
        assert!(base.report.host.accesses > 0);
        for row in &rows[1..] {
            assert_eq!(row.vcpus, base.vcpus);
            assert_eq!(
                row.report, base.report,
                "threads={} diverged from threads=1",
                row.threads
            );
        }
    }
}
