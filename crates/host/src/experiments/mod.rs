//! Experiment runners built on the consolidated host.

pub mod migration_storm;
pub mod multivm;

pub use migration_storm::{MigrationStormParams, MigrationStormRow};
pub use multivm::{MultiVmParams, MultiVmRow};
