//! Experiment runners built on the consolidated host.

pub mod migration_storm;
pub mod multivm;
pub mod numa_contention;

pub use migration_storm::{MigrationStormParams, MigrationStormRow};
pub use multivm::{MultiVmParams, MultiVmRow};
pub use numa_contention::{NumaContentionParams, NumaContentionRow};
