//! Experiment runners built on the consolidated host.

pub mod cluster_churn;
pub mod cluster_faults;
pub mod host_scale;
pub mod migration_storm;
pub mod multivm;
pub mod numa_contention;

pub use cluster_churn::{ClusterChurnParams, ClusterChurnRow};
pub use cluster_faults::{ClusterFaultsParams, ClusterFaultsRow};
pub use host_scale::{HostScaleParams, HostScaleRow};
pub use migration_storm::{MigrationStormParams, MigrationStormRow};
pub use multivm::{MultiVmParams, MultiVmRow};
pub use numa_contention::{NumaContentionParams, NumaContentionRow};

use hatric::metrics::HostReport;

use crate::config::HostConfig;
use crate::host::ConsolidatedHost;

/// One host run plus its wall-clock measurement.  The timing fields are
/// machine-dependent and therefore **never gated** by `bench_check`; they
/// ride along in every report row for trajectory tracking.
#[derive(Debug, Clone)]
pub struct TimedReport {
    /// The model's report (deterministic).
    pub report: HostReport,
    /// Wall-clock milliseconds of the whole run (warmup + measured).
    pub elapsed_ms: f64,
    /// Measured guest accesses divided by the wall-clock seconds of the
    /// whole run — the simulator-throughput figure the `host_scale`
    /// scenario sweeps across thread counts.
    pub accesses_per_sec: f64,
}

/// Builds a host from `config` and runs it, measuring wall clock.
///
/// # Panics
///
/// Panics if `config` is invalid (experiment parameter sets never are).
pub(crate) fn run_host_timed(config: HostConfig, warmup: u64, measured: u64) -> TimedReport {
    let mut host = ConsolidatedHost::new(config).expect("experiment configurations are valid");
    let start = std::time::Instant::now();
    let report = host.run(warmup, measured);
    let elapsed = start.elapsed();
    let accesses_per_sec = if elapsed.as_secs_f64() > 0.0 {
        report.host.accesses as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    TimedReport {
        report,
        elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
        accesses_per_sec,
    }
}
