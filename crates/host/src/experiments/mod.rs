//! Experiment runners built on the consolidated host.

pub mod multivm;

pub use multivm::{MultiVmParams, MultiVmRow};
