//! The live-migration remap-storm experiment.
//!
//! A consolidated host runs one *migrant* VM (footprint inside its
//! die-stacked quota, so it generates no paging remaps of its own) next to
//! remap-free victim VMs, oversubscribed over shared CPUs.  Mid-run the
//! hypervisor live-migrates the migrant: pre-copy write-protects and
//! re-copies its pages, then stop-and-copy freezes it for the final
//! transfer.  Optionally a balloon simultaneously moves die-stacked
//! capacity from the first victim to the migrant, adding
//! demotion/promotion remap traffic.
//!
//! Every nested-PTE store the storm issues must keep translation
//! structures coherent, so the mechanism under test determines two
//! headline numbers:
//!
//! * **downtime** — stop-and-copy cycles.  Software shootdowns put an IPI
//!   broadcast plus ack wait on the downtime path of every transferred
//!   page; HATRIC's directory messages cost orders of magnitude less.
//! * **victim slowdown** — co-located VMs eat the IPIs, VM exits and full
//!   flushes of the software path; HATRIC leaves them at (near) the
//!   ideal-coherence bound.

use hatric::metrics::HostReport;
use hatric::EngineKind;
use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::SchedPolicy;
use hatric_migration::{BalloonParams, HostEvent, MigrationParams};

use crate::config::{HostConfig, VmSpec};

/// Sizing of the migration-storm experiment.
#[derive(Debug, Clone, Copy)]
pub struct MigrationStormParams {
    /// Physical CPUs of the host.
    pub num_pcpus: usize,
    /// Total die-stacked capacity in 4 KiB pages.
    pub fast_pages: u64,
    /// vCPUs of the migrating VM.
    pub migrant_vcpus: usize,
    /// Number of victim VMs.
    pub victims: usize,
    /// vCPUs of each victim VM.
    pub victim_vcpus: usize,
    /// Unmeasured warmup slices.
    pub warmup_slices: u64,
    /// Measured slices (the migration runs inside this window).
    pub measured_slices: u64,
    /// Accesses per scheduled vCPU per slice.
    pub slice_accesses: u64,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Master seed.
    pub seed: u64,
    /// Worker threads of the parallel slice engine (results are
    /// bit-identical for any value; only wall clock changes).
    pub threads: usize,
    /// Slice-executor backend (results are byte-identical between the
    /// two; only orchestration changes).
    pub engine: EngineKind,
    /// Pre-copy link bandwidth in pages per slice.
    pub copy_pages_per_slice: u64,
    /// Stop-and-copy once a round leaves at most this many dirty pages.
    pub dirty_page_threshold: u64,
    /// Forced stop-and-copy after this many rounds.
    pub max_rounds: u32,
    /// Cycles to transfer one page.
    pub page_copy_cycles: u64,
    /// Capacity pages ballooned from victim 1 to the migrant mid-run
    /// (0 disables the balloon; requires at least one victim otherwise).
    pub balloon_pages: u64,
}

impl MigrationStormParams {
    /// The sizing the benchmark harness uses: 4 pCPUs, 1 migrant + 3
    /// victims (8 vCPUs, round-robin, oversubscribed), migration starting
    /// an eighth into the measured phase.
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            num_pcpus: 4,
            fast_pages: 2_048,
            migrant_vcpus: 2,
            victims: 3,
            victim_vcpus: 2,
            warmup_slices: 600,
            measured_slices: 1_200,
            slice_accesses: 40,
            sched: SchedPolicy::RoundRobin,
            seed: hatric::DEFAULT_SEED,
            threads: 1,
            engine: EngineKind::Sliced,
            copy_pages_per_slice: 64,
            dirty_page_threshold: 16,
            max_rounds: 8,
            page_copy_cycles: 1_500,
            balloon_pages: 0,
        }
    }

    /// A much smaller sizing for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            num_pcpus: 4,
            fast_pages: 512,
            migrant_vcpus: 2,
            victims: 3,
            victim_vcpus: 2,
            warmup_slices: 200,
            measured_slices: 400,
            slice_accesses: 25,
            sched: SchedPolicy::RoundRobin,
            seed: 0x7e57,
            threads: 1,
            engine: EngineKind::Sliced,
            copy_pages_per_slice: 48,
            dirty_page_threshold: 24,
            max_rounds: 6,
            page_copy_cycles: 1_500,
            balloon_pages: 0,
        }
    }

    /// Returns a copy that also balloons `pages` of capacity from victim 1
    /// to the migrant halfway through the measured phase.
    #[must_use]
    pub fn with_balloon_pages(mut self, pages: u64) -> Self {
        self.balloon_pages = pages;
        self
    }

    /// Returns a copy with the given pre-copy bandwidth.
    #[must_use]
    pub fn with_copy_pages_per_slice(mut self, pages: u64) -> Self {
        self.copy_pages_per_slice = pages;
        self
    }

    /// Slice at which the migration starts (an eighth into the measured
    /// phase, so warmup state is settled and the storm is fully measured).
    #[must_use]
    pub fn migration_start_slice(&self) -> u64 {
        self.warmup_slices + self.measured_slices / 8
    }

    /// The host configuration this sizing describes, under `mechanism`.
    ///
    /// Slot 0 is the migrant; victims occupy slots `1..`.  The migrant's
    /// footprint fits its quota, so during the measured phase *all* remap
    /// traffic originates from the scheduled migration/balloon events.
    #[must_use]
    pub fn host_config(&self, mechanism: CoherenceMechanism) -> HostConfig {
        let migrant_quota = self.fast_pages / 4;
        let victim_quota = (self.fast_pages - migrant_quota) / self.victims.max(1) as u64;
        let mut cfg = HostConfig::scaled(self.num_pcpus, self.fast_pages)
            .with_mechanism(mechanism)
            .with_sched(self.sched)
            .with_slice_accesses(self.slice_accesses)
            .with_threads(self.threads)
            .with_engine(self.engine)
            .with_seed(self.seed)
            .with_vm(VmSpec::victim(self.migrant_vcpus, migrant_quota));
        for _ in 0..self.victims {
            cfg = cfg.with_vm(VmSpec::victim(self.victim_vcpus, victim_quota));
        }
        cfg = cfg.with_event(HostEvent::Migrate(MigrationParams {
            copy_pages_per_slice: self.copy_pages_per_slice,
            dirty_page_threshold: self.dirty_page_threshold,
            max_rounds: self.max_rounds,
            page_copy_cycles: self.page_copy_cycles,
            ..MigrationParams::at(0, self.migration_start_slice())
        }));
        if self.balloon_pages > 0 {
            // The balloon starts with the migration, so the two storms
            // genuinely overlap: victim 1's reclaim demotions and refill
            // promotions land while pre-copy write-protects are in flight.
            cfg = cfg.with_event(HostEvent::Balloon(BalloonParams::at(
                1,
                0,
                self.balloon_pages.min(victim_quota),
                self.migration_start_slice(),
            )));
        }
        cfg
    }
}

/// The outcome of one mechanism's migration-storm run.
#[derive(Debug, Clone)]
pub struct MigrationStormRow {
    /// Mechanism under test.
    pub mechanism: CoherenceMechanism,
    /// The full host report.
    pub report: HostReport,
    /// Cycles the migrant was frozen during stop-and-copy.
    pub downtime_cycles: u64,
    /// Nested-PTE stores issued by the migration (and their coherence).
    pub migration_remaps: u64,
    /// Pre-copy rounds executed.
    pub precopy_rounds: u64,
    /// Pages transferred in total.
    pub pages_copied: u64,
    /// Mean victim runtime in cycles (victims are slots 1..).
    pub victim_runtime: f64,
    /// Mean victim runtime normalised to the same victims under
    /// [`CoherenceMechanism::Ideal`].
    pub victim_slowdown_vs_ideal: f64,
    /// Cycles stolen from victim vCPUs by migration coherence.
    pub victim_disrupted_cycles: u64,
    /// Wall-clock milliseconds of the run (machine-dependent, ungated).
    pub elapsed_ms: f64,
    /// Measured accesses per wall-clock second (machine-dependent, ungated).
    pub accesses_per_sec: f64,
}

/// Mean victim runtime of a host report (victims are slots `1..`).
fn mean_victim_runtime(report: &HostReport) -> f64 {
    let victims = &report.per_vm[1..];
    if victims.is_empty() {
        return 0.0;
    }
    victims
        .iter()
        .map(|r| r.runtime_cycles() as f64)
        .sum::<f64>()
        / victims.len() as f64
}

/// Runs the storm under all four mechanisms and returns one row per
/// mechanism (victim slowdowns normalised to the ideal run).
///
/// # Panics
///
/// Panics if the derived host configuration is invalid (it never is for
/// the built-in parameter sets).
#[must_use]
pub fn run(params: &MigrationStormParams) -> Vec<MigrationStormRow> {
    let mechanisms = [
        CoherenceMechanism::Software,
        CoherenceMechanism::UnitdPlusPlus,
        CoherenceMechanism::Hatric,
        CoherenceMechanism::Ideal,
    ];
    let reports: Vec<(CoherenceMechanism, crate::experiments::TimedReport)> = mechanisms
        .iter()
        .map(|&mechanism| {
            (
                mechanism,
                crate::experiments::run_host_timed(
                    params.host_config(mechanism),
                    params.warmup_slices,
                    params.measured_slices,
                ),
            )
        })
        .collect();
    let ideal_victim = reports
        .iter()
        .find(|(m, _)| *m == CoherenceMechanism::Ideal)
        .map(|(_, t)| mean_victim_runtime(&t.report))
        .unwrap_or(0.0);
    reports
        .into_iter()
        .map(|(mechanism, timed)| {
            let report = timed.report;
            let victim_runtime = mean_victim_runtime(&report);
            MigrationStormRow {
                mechanism,
                downtime_cycles: report.migration.downtime_cycles,
                migration_remaps: report.migration.migration_remaps,
                precopy_rounds: report.migration.precopy_rounds,
                pages_copied: report.migration.pages_copied,
                victim_runtime,
                victim_slowdown_vs_ideal: if ideal_victim == 0.0 {
                    0.0
                } else {
                    victim_runtime / ideal_victim
                },
                victim_disrupted_cycles: report.per_vm[1..]
                    .iter()
                    .map(|r| r.interference.disrupted_cycles)
                    .sum(),
                report,
                elapsed_ms: timed.elapsed_ms,
                accesses_per_sec: timed.accesses_per_sec,
            }
        })
        .collect()
}

/// Formats the rows as the table the example and bench print.
#[must_use]
pub fn format_table(rows: &[MigrationStormRow]) -> String {
    let mut out = String::from(
        "mechanism     downtime-cycles  victim-slowdown  victim-disrupted  mig-remaps  rounds  pages-copied\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<13} {:>15} {:>16.3} {:>17} {:>11} {:>7} {:>13}\n",
            format!("{:?}", row.mechanism),
            row.downtime_cycles,
            row.victim_slowdown_vs_ideal,
            row.victim_disrupted_cycles,
            row.migration_remaps,
            row.precopy_rounds,
            row.pages_copied,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_completes_and_hatric_beats_software_on_both_metrics() {
        let rows = run(&MigrationStormParams::quick());
        assert_eq!(rows.len(), 4);
        let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
        let sw = by(CoherenceMechanism::Software);
        let hatric = by(CoherenceMechanism::Hatric);
        for row in &rows {
            assert_eq!(
                row.report.migration.migrations_completed, 1,
                "{:?}: migration must finish inside the measured window",
                row.mechanism
            );
            assert!(row.migration_remaps > 0);
            assert!(row.downtime_cycles > 0);
        }
        assert!(
            sw.downtime_cycles > hatric.downtime_cycles,
            "software downtime {} must exceed hatric's {}",
            sw.downtime_cycles,
            hatric.downtime_cycles
        );
        assert!(
            sw.victim_slowdown_vs_ideal > hatric.victim_slowdown_vs_ideal,
            "software victim slowdown {} must exceed hatric's {}",
            sw.victim_slowdown_vs_ideal,
            hatric.victim_slowdown_vs_ideal
        );
        assert!(sw.victim_disrupted_cycles > 0);
        assert_eq!(hatric.victim_disrupted_cycles, 0);
    }

    #[test]
    fn balloon_variant_squeezes_the_victim_into_paging() {
        let params = MigrationStormParams::quick().with_balloon_pages(64);
        let rows = run(&params);
        for row in &rows {
            assert!(row.report.migration.balloon_reclaimed_pages > 0);
            assert_eq!(
                row.report.migration.balloon_reclaimed_pages,
                row.report.migration.balloon_granted_pages
            );
            // The balloon's per-VM bookkeeping: victim 1 lost capacity, the
            // migrant gained it.
            assert!(row.report.per_vm[1].paging.balloon_reclaimed.get() > 0);
            assert!(row.report.per_vm[0].paging.balloon_granted.get() > 0);
            // 64 reclaimed pages push victim 1's capacity below its
            // footprint: real demotions happen at reclaim time, and the
            // squeezed VM keeps paging afterwards.
            assert!(
                row.report.per_vm[1].faults.pages_demoted > 0,
                "{:?}: balloon reclaim must demote resident pages",
                row.mechanism
            );
            assert!(
                row.report.per_vm[1].coherence.remaps > 0,
                "{:?}: the squeezed victim must generate remap traffic",
                row.mechanism
            );
        }
    }
}
