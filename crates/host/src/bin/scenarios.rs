//! The `scenarios` CLI: list and run every registered experiment through
//! the unified scenario API.
//!
//! ```text
//! scenarios --list [--md]
//! scenarios run <name> [--scale smoke|bench|full] [--json PATH] [--trace PATH] [--set key=value]...
//! ```
//!
//! `--list` prints the registry (with `--md`, as the markdown table the
//! README's scenario catalog embeds, so the two cannot drift).  `run`
//! executes one scenario at the requested scale (default `bench`), prints
//! its report table, and with `--json` also writes the report in the
//! `BENCH_*.json` schema.  `--trace` additionally runs one representative
//! traced configuration and writes its deterministic sim-time spans as a
//! Chrome trace-event file (open in `chrome://tracing` or Perfetto).

use std::process::ExitCode;

use hatric_host::scenario::{
    append_meta_record, bench_meta_json, find, registry, Params, Scale, Scenario,
};

const USAGE: &str = "usage:
  scenarios --list [--md]
  scenarios run <name> [--scale smoke|bench|full] [--json PATH] [--trace PATH] [--set key=value]...

Scenarios are registered in hatric_host::scenario::registry(); `--list`
shows them.  `--scale` sizes the run (default: bench, the committed
BENCH_*.json baseline scale).  `--trace` writes a Chrome trace-event JSON
of one traced configuration (host scenarios only).  `--set` overrides a
scenario parameter (see its key set via the defaults printed on a bad
key).";

fn list(markdown: bool) {
    if markdown {
        print!("{}", hatric_host::scenario::catalog_markdown());
        return;
    }
    let width = registry().iter().map(|s| s.name().len()).max().unwrap_or(0);
    for scenario in registry() {
        let gate = match scenario.baseline_stem() {
            Some(stem) => format!("  [baseline BENCH_{stem}.json]"),
            None => String::new(),
        };
        println!("{:<width$}  {}{gate}", scenario.name(), scenario.describe());
    }
    println!("{} scenarios registered", registry().len());
}

struct RunArgs {
    scenario: &'static dyn Scenario,
    scale: Scale,
    json: Option<String>,
    trace: Option<String>,
    overrides: Params,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let name = args.first().ok_or("run: missing scenario name")?;
    let scenario = find(name).ok_or_else(|| {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        format!(
            "unknown scenario `{name}` (registered: {})",
            names.join(", ")
        )
    })?;
    let mut scale = Scale::Bench;
    let mut json = None;
    let mut trace = None;
    let mut overrides = Params::new();
    let mut rest = &args[1..];
    while let Some(flag) = rest.first() {
        if !matches!(flag.as_str(), "--scale" | "--json" | "--trace" | "--set") {
            return Err(format!("unknown flag `{flag}`\n{USAGE}"));
        }
        let value = rest
            .get(1)
            .ok_or_else(|| format!("{flag}: missing value"))?;
        match flag.as_str() {
            "--scale" => {
                scale = Scale::parse(value).ok_or_else(|| {
                    format!("--scale: unknown scale `{value}` (smoke|bench|full)")
                })?;
            }
            "--json" => json = Some(value.clone()),
            "--trace" => trace = Some(value.clone()),
            "--set" => {
                let (key, val) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--set: expected key=value, got `{value}`"))?;
                overrides.set(key, val);
            }
            _ => unreachable!("flags are pre-validated above"),
        }
        rest = &rest[2..];
    }
    Ok(RunArgs {
        scenario,
        scale,
        json,
        trace,
        overrides,
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let RunArgs {
        scenario,
        scale,
        json,
        trace,
        overrides,
    } = parse_run_args(args)?;
    eprintln!(
        "running `{}` at scale {} ...",
        scenario.name(),
        scale.label()
    );
    let report = scenario.run(&overrides, scale).map_err(|err| {
        format!(
            "{err}\naccepted parameters: {}",
            scenario.default_params(scale).to_json()
        )
    })?;
    println!("{}", report.format_table());
    // Wall-clock summary of scenarios that record throughput (the timing
    // columns are machine-dependent and never gated by bench_check).
    let timed: Vec<(f64, f64)> = report
        .rows
        .iter()
        .filter_map(|r| Some((r.number("elapsed_ms")?, r.number("accesses_per_sec")?)))
        .collect();
    if !timed.is_empty() {
        let total_ms: f64 = timed.iter().map(|(ms, _)| ms).sum();
        let best = timed.iter().map(|(_, a)| *a).fold(0.0f64, f64::max);
        println!(
            "wall clock: {total_ms:.0} ms across {} runs, best throughput {best:.0} accesses/s",
            timed.len()
        );
    }
    if let Some(path) = json {
        // The writer layer — not Scenario::run — appends the ungated
        // environment metadata, so run() output stays byte-identical
        // whether or not it is being written to disk.
        let threads = hatric_host::scenario::resolve_params(scenario, &overrides, scale)
            .ok()
            .and_then(|p| p.get("threads").and_then(|v| v.parse::<u64>().ok()));
        let body = append_meta_record(&report.to_json(), &bench_meta_json(threads));
        std::fs::write(&path, body).map_err(|err| format!("cannot write {path}: {err}"))?;
        println!("wrote {} rows to {path}", report.rows.len());
    }
    if let Some(path) = trace {
        match scenario.trace_run(&overrides, scale) {
            None => {
                return Err(format!(
                    "--trace: scenario `{}` has no traced configuration",
                    scenario.name()
                ));
            }
            Some(Err(err)) => return Err(format!("--trace: {err}")),
            Some(Ok(trace_json)) => {
                std::fs::write(&path, trace_json)
                    .map_err(|err| format!("cannot write {path}: {err}"))?;
                println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            list(args.iter().any(|a| a == "--md"));
            ExitCode::SUCCESS
        }
        Some("run") => match run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("scenarios: {err}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
