//! The `scenarios` CLI: list, run and diff every registered experiment
//! through the unified scenario API.
//!
//! ```text
//! scenarios --list [--md]
//! scenarios run <name> [--scale smoke|bench|full] [--json PATH] [--trace PATH]
//!                      [--timeline PATH] [--set key=value]...
//! scenarios diff <run-a.json> <run-b.json> [--scenario NAME] [--tolerance FRAC]
//! ```
//!
//! `--list` prints the registry (with `--md`, as the markdown table the
//! README's scenario catalog embeds, so the two cannot drift).  `run`
//! executes one scenario at the requested scale (default `bench`), prints
//! its report table, and with `--json` also writes the report in the
//! `BENCH_*.json` schema.  `--trace` additionally runs one representative
//! traced configuration and writes its deterministic sim-time spans as a
//! Chrome trace-event file (open in `chrome://tracing` or Perfetto);
//! `--timeline` does the same with the commit-barrier counter sampler and
//! writes Chrome counter events plus a CSV sibling.  `diff` is the run
//! observatory: it aligns two report files by (label, mechanism), prints
//! per-metric deltas, and exits nonzero when a gated metric drifted beyond
//! the tolerance or a row disappeared.

use std::process::ExitCode;

use hatric_host::diff::{diff_json, DiffOptions};
use hatric_host::scenario::{
    append_meta_record, bench_meta_json, find, registry, Params, Scale, Scenario,
};

const USAGE: &str = "usage:
  scenarios --list [--md]
  scenarios run <name> [--scale smoke|bench|full] [--json PATH] [--trace PATH]
                       [--timeline PATH] [--set key=value]...
  scenarios diff <run-a.json> <run-b.json> [--scenario NAME] [--tolerance FRAC]

Scenarios are registered in hatric_host::scenario::registry(); `--list`
shows them.  `--scale` sizes the run (default: bench, the committed
BENCH_*.json baseline scale).  `--trace` writes a Chrome trace-event JSON
of one traced configuration; `--timeline` writes the commit-barrier
counter timeline as Chrome counter events plus a CSV sibling (host
scenarios only).  `--set` overrides a scenario parameter (see its key set
via the defaults printed on a bad key).  `diff` compares two report files
row by row; with `--scenario` the scenario's gated metrics decide the
exit code (default tolerance 0.10).";

fn list(markdown: bool) {
    if markdown {
        print!("{}", hatric_host::scenario::catalog_markdown());
        return;
    }
    let width = registry().iter().map(|s| s.name().len()).max().unwrap_or(0);
    for scenario in registry() {
        let gate = match scenario.baseline_stem() {
            Some(stem) => format!("  [baseline BENCH_{stem}.json]"),
            None => String::new(),
        };
        println!("{:<width$}  {}{gate}", scenario.name(), scenario.describe());
    }
    println!("{} scenarios registered", registry().len());
}

struct RunArgs {
    scenario: &'static dyn Scenario,
    scale: Scale,
    json: Option<String>,
    trace: Option<String>,
    timeline: Option<String>,
    overrides: Params,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let name = args.first().ok_or("run: missing scenario name")?;
    let scenario = find(name).ok_or_else(|| {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        format!(
            "unknown scenario `{name}` (registered: {})",
            names.join(", ")
        )
    })?;
    let mut scale = Scale::Bench;
    let mut json = None;
    let mut trace = None;
    let mut timeline = None;
    let mut overrides = Params::new();
    let mut rest = &args[1..];
    while let Some(flag) = rest.first() {
        if !matches!(
            flag.as_str(),
            "--scale" | "--json" | "--trace" | "--timeline" | "--set"
        ) {
            return Err(format!("unknown flag `{flag}`\n{USAGE}"));
        }
        let value = rest
            .get(1)
            .ok_or_else(|| format!("{flag}: missing value"))?;
        match flag.as_str() {
            "--scale" => {
                scale = Scale::parse(value).ok_or_else(|| {
                    format!("--scale: unknown scale `{value}` (smoke|bench|full)")
                })?;
            }
            "--json" => json = Some(value.clone()),
            "--trace" => trace = Some(value.clone()),
            "--timeline" => timeline = Some(value.clone()),
            "--set" => {
                let (key, val) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--set: expected key=value, got `{value}`"))?;
                overrides.set(key, val);
            }
            _ => unreachable!("flags are pre-validated above"),
        }
        rest = &rest[2..];
    }
    Ok(RunArgs {
        scenario,
        scale,
        json,
        trace,
        timeline,
        overrides,
    })
}

/// Reads the `droppedSpans` count back out of an exported Chrome trace's
/// metadata object — the sink is a bounded ring, and a wrapped ring means
/// the file's earliest spans are gone.
fn trace_dropped_spans(trace_json: &str) -> u64 {
    trace_json
        .rsplit_once("\"droppedSpans\":")
        .and_then(|(_, tail)| {
            let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// The CSV sibling of a timeline export path: `t.json` → `t.csv`,
/// extensionless paths get `.csv` appended.
fn csv_sibling(path: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, _ext)) => format!("{stem}.csv"),
        None => format!("{path}.csv"),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let RunArgs {
        scenario,
        scale,
        json,
        trace,
        timeline,
        overrides,
    } = parse_run_args(args)?;
    eprintln!(
        "running `{}` at scale {} ...",
        scenario.name(),
        scale.label()
    );
    let report = scenario.run(&overrides, scale).map_err(|err| {
        format!(
            "{err}\naccepted parameters: {}",
            scenario.default_params(scale).to_json()
        )
    })?;
    println!("{}", report.format_table());
    // Wall-clock summary of scenarios that record throughput (the timing
    // columns are machine-dependent and never gated by bench_check).
    let timed: Vec<(f64, f64)> = report
        .rows
        .iter()
        .filter_map(|r| Some((r.number("elapsed_ms")?, r.number("accesses_per_sec")?)))
        .collect();
    if !timed.is_empty() {
        let total_ms: f64 = timed.iter().map(|(ms, _)| ms).sum();
        let best = timed.iter().map(|(_, a)| *a).fold(0.0f64, f64::max);
        println!(
            "wall clock: {total_ms:.0} ms across {} runs, best throughput {best:.0} accesses/s",
            timed.len()
        );
    }
    if let Some(path) = json {
        // The writer layer — not Scenario::run — appends the ungated
        // environment metadata, so run() output stays byte-identical
        // whether or not it is being written to disk.
        let threads = hatric_host::scenario::resolve_params(scenario, &overrides, scale)
            .ok()
            .and_then(|p| p.get("threads").and_then(|v| v.parse::<u64>().ok()));
        let body = append_meta_record(&report.to_json(), &bench_meta_json(threads));
        std::fs::write(&path, body).map_err(|err| format!("cannot write {path}: {err}"))?;
        println!("wrote {} rows to {path}", report.rows.len());
    }
    if let Some(path) = trace {
        match scenario.trace_run(&overrides, scale) {
            None => {
                return Err(format!(
                    "--trace: scenario `{}` has no traced configuration",
                    scenario.name()
                ));
            }
            Some(Err(err)) => return Err(format!("--trace: {err}")),
            Some(Ok(trace_json)) => {
                let dropped = trace_dropped_spans(&trace_json);
                std::fs::write(&path, trace_json)
                    .map_err(|err| format!("cannot write {path}: {err}"))?;
                println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
                if dropped > 0 {
                    eprintln!(
                        "warning: the trace ring wrapped — {dropped} oldest span(s) were \
                         dropped before export (see droppedSpans in the file's metadata)"
                    );
                }
            }
        }
    }
    if let Some(path) = timeline {
        match scenario.timeline_run(&overrides, scale) {
            None => {
                return Err(format!(
                    "--timeline: scenario `{}` has no host commit barrier to sample \
                     (host scenarios only)",
                    scenario.name()
                ));
            }
            Some(Err(err)) => return Err(format!("--timeline: {err}")),
            Some(Ok(recorded)) => {
                std::fs::write(&path, recorded.export_chrome_counters())
                    .map_err(|err| format!("cannot write {path}: {err}"))?;
                let csv_path = csv_sibling(&path);
                std::fs::write(&csv_path, recorded.export_csv())
                    .map_err(|err| format!("cannot write {csv_path}: {err}"))?;
                println!(
                    "wrote {} timeline samples × {} series to {path} (Chrome counters) \
                     and {csv_path} (CSV)",
                    recorded.len(),
                    recorded.series().len()
                );
            }
        }
    }
    Ok(())
}

/// `scenarios diff <run-a.json> <run-b.json>`: exit 0 when aligned and
/// clean, 1 on gated drift or missing rows, 2 on usage/IO/parse errors.
fn diff(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut options = DiffOptions::default();
    let mut gated: &[&str] = &[];
    let mut rest = args;
    while let Some(token) = rest.first() {
        if !token.starts_with("--") {
            paths.push(token);
            rest = &rest[1..];
            continue;
        }
        let value = rest
            .get(1)
            .ok_or_else(|| format!("{token}: missing value"))?;
        match token.as_str() {
            "--scenario" => {
                let scenario =
                    find(value).ok_or_else(|| format!("--scenario: unknown scenario `{value}`"))?;
                gated = scenario.gated_metrics();
            }
            "--tolerance" => {
                options.tolerance = value
                    .parse()
                    .map_err(|_| format!("--tolerance: not a number: `{value}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        rest = &rest[2..];
    }
    let [path_a, path_b] = paths.as_slice() else {
        return Err(format!("diff: expected exactly two report files\n{USAGE}"));
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))
    };
    let report = diff_json(&read(path_a)?, &read(path_b)?, gated, options)?;
    print!("{}", report.format_text());
    println!(
        "diff: {} metric(s) compared, {} regression(s), {} missing row(s)/metric(s), \
         {} extra row(s)",
        report.deltas.len(),
        report.regressions(),
        report.missing.len(),
        report.extra.len()
    );
    if gated.is_empty() {
        eprintln!(
            "note: no --scenario given, so no metrics are gated — only missing rows \
             can fail this diff"
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            list(args.iter().any(|a| a == "--md"));
            ExitCode::SUCCESS
        }
        Some("run") => match run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("scenarios: {err}");
                ExitCode::from(2)
            }
        },
        Some("diff") => match diff(&args[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(err) => {
                eprintln!("scenarios: {err}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
