//! Configuration of a consolidated host: the shared platform plus one
//! [`VmSpec`] per co-located virtual machine.

use serde::{Deserialize, Serialize};

use hatric::{EngineKind, MemoryMode, NumaConfig, PagingKnobs, SystemConfig, DEFAULT_SEED};
use hatric_coherence::{CoherenceMechanism, DesignVariant};
use hatric_hypervisor::{NumaPolicy, SchedPolicy};
use hatric_migration::HostEvent;
use hatric_types::ConfigError;
use hatric_workloads::WorkloadKind;

/// One virtual machine on the host.
///
/// ```
/// use hatric_host::VmSpec;
///
/// let aggressor = VmSpec::aggressor(2, 128);
/// assert!(aggressor.expects_paging(), "footprint exceeds its quota");
/// let victim = VmSpec::victim(2, 128).with_home_socket(1);
/// assert!(!victim.expects_paging());
/// assert_eq!(victim.home_socket, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Number of vCPUs (one guest thread each).
    pub vcpus: usize,
    /// Workload the VM runs.
    pub workload: WorkloadKind,
    /// Scale handed to the workload generator: the VM's data footprint is
    /// `workload.footprint_vs_fast() * workload_scale_pages` 4 KiB pages.
    pub workload_scale_pages: u64,
    /// This VM's quota of die-stacked DRAM in 4 KiB pages.  The hypervisor
    /// partitions the fast device between VMs; a VM whose footprint exceeds
    /// its quota pages continuously (and generates remaps), one whose
    /// footprint fits is left alone after warmup.
    pub fast_quota_pages: u64,
    /// Paging-policy knobs for this VM's quota.
    pub paging: PagingKnobs,
    /// Home socket of this VM on a NUMA host: under
    /// [`SchedPolicy::SocketAffine`] its vCPUs are pinned to this socket's
    /// CPUs (ignored by the other policies, and meaningless on a
    /// single-socket host).
    pub home_socket: usize,
}

impl VmSpec {
    /// An *aggressor*: a big-memory workload whose footprint far exceeds its
    /// die-stacked quota, so the hypervisor remaps pages continuously and
    /// the translation-coherence mechanism is exercised hard.
    #[must_use]
    pub fn aggressor(vcpus: usize, fast_quota_pages: u64) -> Self {
        Self {
            vcpus,
            workload: WorkloadKind::DataCaching,
            workload_scale_pages: fast_quota_pages,
            fast_quota_pages,
            paging: PagingKnobs::best(),
            home_socket: 0,
        }
    }

    /// A *victim*: a small-footprint workload that fits entirely inside its
    /// quota and performs no remaps of its own — any coherence cycles it
    /// records were inflicted by other VMs.
    #[must_use]
    pub fn victim(vcpus: usize, fast_quota_pages: u64) -> Self {
        Self {
            vcpus,
            workload: WorkloadKind::SmallFootprint,
            workload_scale_pages: fast_quota_pages,
            fast_quota_pages,
            paging: PagingKnobs::best(),
            home_socket: 0,
        }
    }

    /// Returns a copy homed on the given socket.
    #[must_use]
    pub fn with_home_socket(mut self, socket: usize) -> Self {
        self.home_socket = socket;
        self
    }

    /// Footprint of this VM in 4 KiB pages — delegated to the workload
    /// generator's own formula so the two can never drift.
    #[must_use]
    pub fn footprint_pages(&self) -> u64 {
        self.workload
            .footprint_pages(self.workload_scale_pages, self.vcpus)
    }

    /// Whether this VM's footprint exceeds its quota (it will page).
    #[must_use]
    pub fn expects_paging(&self) -> bool {
        self.footprint_pages() > self.fast_quota_pages
    }

    /// A fluent builder for a VM with `vcpus` vCPUs and a
    /// `fast_quota_pages` die-stacked quota.  Defaults match
    /// [`VmSpec::victim`]; see [`VmSpecBuilder`].
    #[must_use]
    pub fn builder(vcpus: usize, fast_quota_pages: u64) -> VmSpecBuilder {
        VmSpecBuilder {
            spec: VmSpec::victim(vcpus, fast_quota_pages),
        }
    }
}

/// Fluent construction of a [`VmSpec`] with validation at the end, so
/// examples and callers stop hand-assembling structs.
///
/// Defaults are victim-like (a [`WorkloadKind::SmallFootprint`] workload
/// scaled to the quota, best paging knobs, home socket 0); setting a
/// big-memory workload such as [`WorkloadKind::DataCaching`] turns the VM
/// into an aggressor whose footprint exceeds its quota.
///
/// ```
/// use hatric_host::{VmSpec, WorkloadKind};
///
/// let aggressor = VmSpec::builder(2, 128)
///     .workload(WorkloadKind::DataCaching)
///     .build()
///     .unwrap();
/// assert!(aggressor.expects_paging());
/// assert!(VmSpec::builder(0, 128).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct VmSpecBuilder {
    spec: VmSpec,
}

impl VmSpecBuilder {
    /// Sets the workload this VM runs.
    #[must_use]
    pub fn workload(mut self, workload: WorkloadKind) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Sets the scale handed to the workload generator (defaults to the
    /// die-stacked quota).
    #[must_use]
    pub fn workload_scale_pages(mut self, pages: u64) -> Self {
        self.spec.workload_scale_pages = pages;
        self
    }

    /// Sets the per-VM paging-policy knobs.
    #[must_use]
    pub fn paging(mut self, paging: PagingKnobs) -> Self {
        self.spec.paging = paging;
        self
    }

    /// Homes the VM on the given socket.
    #[must_use]
    pub fn home_socket(mut self, socket: usize) -> Self {
        self.spec.home_socket = socket;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroVcpus`] for a VM with no vCPUs.  (The
    /// host-level invariants — quota fit, home-socket range — need the host
    /// and are checked by [`HostConfig::validate`].)
    pub fn build(self) -> Result<VmSpec, ConfigError> {
        if self.spec.vcpus == 0 {
            return Err(ConfigError::ZeroVcpus { slot: None });
        }
        Ok(self.spec)
    }
}

/// The complete configuration of a consolidated host.
///
/// ```
/// use hatric::NumaConfig;
/// use hatric_host::{CoherenceMechanism, HostConfig, SchedPolicy, VmSpec};
///
/// // A two-socket HATRIC host: the aggressor homed on socket 0, a victim
/// // on each socket, vCPUs pinned socket-affine.
/// let cfg = HostConfig::scaled(8, 512)
///     .with_mechanism(CoherenceMechanism::Hatric)
///     .with_numa(NumaConfig::symmetric(2))
///     .with_sched(SchedPolicy::SocketAffine)
///     .with_vm(VmSpec::aggressor(2, 256))
///     .with_vm(VmSpec::victim(2, 128).with_home_socket(1));
/// assert!(cfg.validate().is_ok());
/// assert_eq!(cfg.total_vcpus(), 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostConfig {
    /// Number of physical CPUs the VMs share.
    pub num_pcpus: usize,
    /// Total die-stacked capacity in 4 KiB pages (the VM quotas partition
    /// this; their sum must not exceed it).
    pub fast_pages: u64,
    /// Translation-coherence mechanism under test (host-wide: the machine
    /// either has HATRIC hardware or it does not).
    pub mechanism: CoherenceMechanism,
    /// Coherence-directory design variant.
    pub variant: DesignVariant,
    /// Co-tag width in bytes.
    pub cotag_bytes: u8,
    /// How the two-level memory is used.
    pub memory_mode: MemoryMode,
    /// Socket topology of the host ([`NumaConfig::uma`] for the classic
    /// single-socket machine).
    pub numa: NumaConfig,
    /// On which socket the hypervisor backs newly allocated guest pages.
    pub numa_policy: NumaPolicy,
    /// vCPU→pCPU scheduling policy.
    pub sched: SchedPolicy,
    /// Guest memory accesses each scheduled vCPU issues per time slice.
    pub slice_accesses: u64,
    /// OS worker threads the slice engine simulates VM shards on.  Results
    /// are bit-identical for any value ≥ 1 (the phased simulate → commit
    /// engine is deterministic by construction); `1` runs the units inline.
    pub threads: usize,
    /// Which slice-executor backend runs the host: the phased
    /// [`EngineKind::Sliced`] engine (default) or the message-passing
    /// [`EngineKind::MessagePassing`] actor variant.  Reports are
    /// byte-identical between the two for any configuration — the knob
    /// exists for cross-validation and orchestration-overhead comparison.
    pub engine: EngineKind,
    /// Master random seed (per-VM workload seeds derive from it).
    pub seed: u64,
    /// The co-located VMs, indexed by slot.
    pub vms: Vec<VmSpec>,
    /// Scheduled hypervisor operations (live migrations, balloons), fired
    /// when `slices_run` reaches each event's `start_slice` (absolute,
    /// warmup included).
    pub events: Vec<HostEvent>,
}

impl HostConfig {
    /// A host with `num_pcpus` CPUs and `fast_pages` pages of die-stacked
    /// DRAM, no VMs yet (add them with [`HostConfig::with_vm`]).
    #[must_use]
    pub fn scaled(num_pcpus: usize, fast_pages: u64) -> Self {
        Self {
            num_pcpus,
            fast_pages,
            mechanism: CoherenceMechanism::Software,
            variant: DesignVariant::Baseline,
            cotag_bytes: 2,
            memory_mode: MemoryMode::Paged,
            numa: NumaConfig::uma(),
            numa_policy: NumaPolicy::FirstTouch,
            sched: SchedPolicy::Pinned,
            slice_accesses: 50,
            threads: 1,
            engine: EngineKind::Sliced,
            seed: DEFAULT_SEED,
            vms: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Adds a VM to the host.
    #[must_use]
    pub fn with_vm(mut self, spec: VmSpec) -> Self {
        self.vms.push(spec);
        self
    }

    /// Schedules a hypervisor operation (live migration or balloon).
    #[must_use]
    pub fn with_event(mut self, event: HostEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Returns a copy using the given coherence mechanism.
    #[must_use]
    pub fn with_mechanism(mut self, mechanism: CoherenceMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Returns a copy using the given scheduling policy.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Returns a copy using the given memory mode.
    #[must_use]
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Returns a copy using the given socket topology.
    #[must_use]
    pub fn with_numa(mut self, numa: NumaConfig) -> Self {
        self.numa = numa;
        self
    }

    /// Returns a copy using the given NUMA memory-placement policy.
    #[must_use]
    pub fn with_numa_policy(mut self, policy: NumaPolicy) -> Self {
        self.numa_policy = policy;
        self
    }

    /// Returns a copy with the given accesses per vCPU per slice.
    #[must_use]
    pub fn with_slice_accesses(mut self, accesses: u64) -> Self {
        self.slice_accesses = accesses;
        self
    }

    /// Returns a copy simulating on the given number of worker threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy running on the given slice-executor backend.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with the given master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total vCPUs across all VMs.
    #[must_use]
    pub fn total_vcpus(&self) -> usize {
        self.vms.iter().map(|v| v.vcpus).sum()
    }

    /// Whether more vCPUs exist than physical CPUs.
    #[must_use]
    pub fn is_oversubscribed(&self) -> bool {
        self.total_vcpus() > self.num_pcpus
    }

    /// The platform-wide part of the configuration, in the shape
    /// [`hatric::Platform::new`] expects.  The per-VM fields of the template
    /// (`vcpus`, paging knobs) are unused by the platform.
    #[must_use]
    pub fn platform_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::scaled(self.num_pcpus, self.fast_pages)
            .with_mechanism(self.mechanism)
            .with_memory_mode(self.memory_mode)
            .with_cotag_bytes(self.cotag_bytes)
            .with_variant(self.variant)
            .with_numa(self.numa)
            .with_numa_policy(self.numa_policy);
        cfg.seed = self.seed;
        cfg
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] variant naming the broken invariant if
    /// the host cannot be simulated.
    pub fn validate(&self) -> core::result::Result<(), ConfigError> {
        if self.num_pcpus == 0 {
            // platform_config() would silently clamp this to 1 CPU and the
            // scheduler would panic; reject it up front instead.
            return Err(ConfigError::ZeroPcpus);
        }
        if self.fast_pages == 0 {
            // A zero-page fast device cannot host any quota; paging would
            // degenerate and frame allocation underflow downstream.
            return Err(ConfigError::ZeroFastPages);
        }
        if self.vms.is_empty() {
            return Err(ConfigError::NoVms);
        }
        if let Some(slot) = self.vms.iter().position(|v| v.vcpus == 0) {
            return Err(ConfigError::ZeroVcpus { slot: Some(slot) });
        }
        if self.slice_accesses == 0 {
            return Err(ConfigError::ZeroSliceAccesses);
        }
        if self.threads == 0 {
            // The slice engine distributes VM shards over `threads` workers;
            // zero workers would make no vCPU ever progress.
            return Err(ConfigError::ZeroThreads);
        }
        let quota_sum: u64 = self.vms.iter().map(|v| v.fast_quota_pages).sum();
        if self.memory_mode == MemoryMode::Paged && quota_sum > self.fast_pages {
            return Err(ConfigError::QuotaOvercommit {
                quota_sum,
                fast_pages: self.fast_pages,
            });
        }
        if let Some((slot, vm)) = self
            .vms
            .iter()
            .enumerate()
            .find(|(_, v)| v.home_socket >= self.numa.sockets)
        {
            return Err(ConfigError::HomeSocketOutOfRange {
                slot,
                home_socket: vm.home_socket,
                sockets: self.numa.sockets,
            });
        }
        self.validate_events()?;
        self.platform_config().validate().map_err(ConfigError::from)
    }

    fn validate_events(&self) -> core::result::Result<(), ConfigError> {
        let mut balloon_drain = vec![0u64; self.vms.len()];
        for event in &self.events {
            match event {
                HostEvent::Migrate(p) => {
                    if p.vm_slot >= self.vms.len() {
                        return Err(ConfigError::event("migration targets an unknown VM slot"));
                    }
                    if p.copy_pages_per_slice == 0 {
                        return Err(ConfigError::event(
                            "a migration needs nonzero copy bandwidth",
                        ));
                    }
                    if p.max_rounds == 0 {
                        return Err(ConfigError::event(
                            "a migration needs at least one pre-copy round",
                        ));
                    }
                }
                HostEvent::Balloon(p) => {
                    if p.from_slot >= self.vms.len() || p.to_slot >= self.vms.len() {
                        return Err(ConfigError::event("balloon targets an unknown VM slot"));
                    }
                    if p.from_slot == p.to_slot {
                        return Err(ConfigError::event(
                            "a balloon must move capacity between two distinct VMs",
                        ));
                    }
                    if p.pages == 0 || p.pages_per_slice == 0 {
                        return Err(ConfigError::event(
                            "a balloon needs nonzero size and inflation rate",
                        ));
                    }
                    balloon_drain[p.from_slot] += p.pages;
                }
            }
        }
        for (slot, drained) in balloon_drain.iter().enumerate() {
            if *drained > self.vms[slot].fast_quota_pages {
                return Err(ConfigError::event(
                    "balloons reclaim more capacity than the VM's die-stacked quota",
                ));
            }
        }
        Ok(())
    }

    /// A fluent, validating builder for a host with `num_pcpus` CPUs and
    /// `fast_pages` pages of die-stacked DRAM; see [`HostConfigBuilder`].
    #[must_use]
    pub fn builder(num_pcpus: usize, fast_pages: u64) -> HostConfigBuilder {
        HostConfigBuilder {
            config: HostConfig::scaled(num_pcpus, fast_pages),
        }
    }
}

/// Fluent construction of a [`HostConfig`] that runs
/// [`HostConfig::validate`] at the end — a typed [`ConfigError`] instead of
/// a panic deep inside the simulator.
///
/// ```
/// use hatric_host::{CoherenceMechanism, HostConfig, VmSpec};
///
/// let config = HostConfig::builder(4, 256)
///     .mechanism(CoherenceMechanism::Hatric)
///     .vm(VmSpec::aggressor(2, 128))
///     .vm(VmSpec::victim(2, 128))
///     .build()
///     .unwrap();
/// assert_eq!(config.total_vcpus(), 4);
/// // Oversubscribed quotas are a typed error, not a panic:
/// assert!(HostConfig::builder(4, 64).vm(VmSpec::victim(1, 128)).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct HostConfigBuilder {
    config: HostConfig,
}

impl HostConfigBuilder {
    /// Sets the translation-coherence mechanism.
    #[must_use]
    pub fn mechanism(mut self, mechanism: CoherenceMechanism) -> Self {
        self.config.mechanism = mechanism;
        self
    }

    /// Sets the vCPU→pCPU scheduling policy.
    #[must_use]
    pub fn sched(mut self, sched: SchedPolicy) -> Self {
        self.config.sched = sched;
        self
    }

    /// Sets the memory operating mode.
    #[must_use]
    pub fn memory_mode(mut self, mode: MemoryMode) -> Self {
        self.config.memory_mode = mode;
        self
    }

    /// Sets the socket topology.
    #[must_use]
    pub fn numa(mut self, numa: NumaConfig) -> Self {
        self.config.numa = numa;
        self
    }

    /// Sets the NUMA memory-placement policy.
    #[must_use]
    pub fn numa_policy(mut self, policy: NumaPolicy) -> Self {
        self.config.numa_policy = policy;
        self
    }

    /// Sets the accesses per scheduled vCPU per slice.
    #[must_use]
    pub fn slice_accesses(mut self, accesses: u64) -> Self {
        self.config.slice_accesses = accesses;
        self
    }

    /// Sets the number of simulate worker threads (1 = inline).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the slice-executor backend.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.config.engine = engine;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Adds a VM.
    #[must_use]
    pub fn vm(mut self, spec: VmSpec) -> Self {
        self.config.vms.push(spec);
        self
    }

    /// Schedules a hypervisor operation (live migration or balloon).
    #[must_use]
    pub fn event(mut self, event: HostEvent) -> Self {
        self.config.events.push(event);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] naming the broken invariant.
    pub fn build(self) -> core::result::Result<HostConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressor_pages_and_victim_does_not() {
        assert!(VmSpec::aggressor(2, 128).expects_paging());
        assert!(!VmSpec::victim(2, 128).expects_paging());
    }

    #[test]
    fn footprint_honours_the_workload_generators_per_thread_floor() {
        // Workload::build floors the footprint at 16 pages per thread; a
        // tiny-quota "victim" therefore pages after all, and expects_paging
        // must say so rather than promising a remap-free VM.
        let tiny = VmSpec::victim(2, 24);
        assert_eq!(tiny.footprint_pages(), 32);
        assert!(tiny.expects_paging());
    }

    #[test]
    fn quota_oversubscription_is_rejected() {
        let cfg = HostConfig::scaled(4, 256)
            .with_vm(VmSpec::aggressor(2, 200))
            .with_vm(VmSpec::victim(2, 100));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn a_reasonable_host_validates() {
        let cfg = HostConfig::scaled(4, 256)
            .with_vm(VmSpec::aggressor(2, 128))
            .with_vm(VmSpec::victim(2, 128));
        cfg.validate().unwrap();
        assert_eq!(cfg.total_vcpus(), 4);
        assert!(!cfg.is_oversubscribed());
    }

    #[test]
    fn empty_host_is_rejected() {
        assert!(HostConfig::scaled(4, 256).validate().is_err());
    }

    #[test]
    fn zero_pcpu_host_is_rejected_not_panicking() {
        let cfg = HostConfig::scaled(0, 256).with_vm(VmSpec::victim(1, 64));
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroPcpus));
        assert!(crate::ConsolidatedHost::new(cfg).is_err());
    }

    #[test]
    fn zero_vcpu_vm_is_rejected_with_its_slot() {
        let cfg = HostConfig::scaled(4, 256)
            .with_vm(VmSpec::victim(2, 64))
            .with_vm(VmSpec::victim(0, 64));
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroVcpus { slot: Some(1) })
        );
        assert_eq!(
            VmSpec::builder(0, 64).build(),
            Err(ConfigError::ZeroVcpus { slot: None })
        );
    }

    #[test]
    fn home_socket_beyond_the_host_is_rejected() {
        let cfg = HostConfig::scaled(4, 256)
            .with_numa(NumaConfig::symmetric(2))
            .with_vm(VmSpec::victim(2, 64).with_home_socket(2));
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::HomeSocketOutOfRange {
                slot: 0,
                home_socket: 2,
                sockets: 2,
            })
        );
    }

    #[test]
    fn zero_fast_pages_host_is_rejected() {
        let cfg = HostConfig::scaled(4, 0).with_vm(VmSpec::victim(1, 0));
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroFastPages));
    }

    #[test]
    fn zero_slice_accesses_is_rejected() {
        let cfg = HostConfig::scaled(4, 256)
            .with_slice_accesses(0)
            .with_vm(VmSpec::victim(1, 64));
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroSliceAccesses));
    }

    #[test]
    fn zero_threads_is_rejected_with_a_typed_error() {
        let cfg = HostConfig::scaled(4, 256)
            .with_threads(0)
            .with_vm(VmSpec::victim(1, 64));
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroThreads));
        assert!(crate::ConsolidatedHost::new(cfg).is_err());
        assert_eq!(
            HostConfig::builder(4, 256)
                .threads(0)
                .vm(VmSpec::victim(1, 64))
                .build()
                .unwrap_err(),
            ConfigError::ZeroThreads
        );
    }

    #[test]
    fn threads_knob_defaults_to_one_and_round_trips_the_builder() {
        assert_eq!(HostConfig::scaled(4, 256).threads, 1);
        let cfg = HostConfig::builder(4, 256)
            .threads(4)
            .vm(VmSpec::victim(1, 64))
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 4);
    }

    #[test]
    fn engine_knob_defaults_to_sliced_and_round_trips() {
        assert_eq!(HostConfig::scaled(4, 256).engine, EngineKind::Sliced);
        let cfg = HostConfig::builder(4, 256)
            .engine(EngineKind::MessagePassing)
            .vm(VmSpec::victim(1, 64))
            .build()
            .unwrap();
        assert_eq!(cfg.engine, EngineKind::MessagePassing);
        assert_eq!(
            "mp".parse::<EngineKind>().unwrap(),
            EngineKind::MessagePassing
        );
        assert_eq!("sliced".parse::<EngineKind>().unwrap(), EngineKind::Sliced);
        assert!("warp".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::MessagePassing.to_string(), "mp");
    }

    #[test]
    fn quota_overcommit_reports_the_numbers() {
        let cfg = HostConfig::scaled(4, 256)
            .with_vm(VmSpec::aggressor(2, 200))
            .with_vm(VmSpec::victim(2, 100));
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::QuotaOvercommit {
                quota_sum: 300,
                fast_pages: 256,
            })
        );
    }

    #[test]
    fn builders_compose_and_validate() {
        let config = HostConfig::builder(4, 256)
            .mechanism(CoherenceMechanism::Hatric)
            .sched(SchedPolicy::RoundRobin)
            .slice_accesses(25)
            .seed(7)
            .vm(VmSpec::builder(2, 128)
                .workload(WorkloadKind::DataCaching)
                .build()
                .unwrap())
            .vm(VmSpec::builder(2, 128).home_socket(0).build().unwrap())
            .build()
            .unwrap();
        assert_eq!(config.total_vcpus(), 4);
        assert_eq!(config.mechanism, CoherenceMechanism::Hatric);
        assert_eq!(config.seed, 7);
        assert!(config.vms[0].expects_paging());
        assert!(!config.vms[1].expects_paging());
    }
}
