//! # hatric-host
//!
//! A consolidated-host simulator for the HATRIC reproduction: **N virtual
//! machines running concurrently** over one shared cache hierarchy, one
//! HATRIC coherence directory, one two-level memory system and a pool of
//! physical CPUs, with a vCPU→pCPU scheduler that supports oversubscription.
//!
//! The paper's premise is cloud consolidation: hypervisors page memory
//! under many co-located VMs, and the software translation-coherence path
//! (IPIs, VM exits, full TLB flushes) taxes *every* CPU a remapping VM has
//! ever touched — including CPUs currently running other tenants.  The
//! single-VM [`hatric::System`] cannot express that; this crate can:
//!
//! * [`HostConfig`] / [`VmSpec`] describe the platform and the co-located
//!   VMs (per-VM die-stacked quotas, workloads, vCPU counts).
//! * [`ConsolidatedHost`] schedules the VMs' vCPUs in time slices over the
//!   shared [`hatric::Platform`] and runs the same per-access pipeline the
//!   single-VM simulator uses.
//! * Per-VM [`hatric::SimReport`]s plus the host-level
//!   [`hatric::metrics::HostReport`] quantify interference: cycles stolen
//!   from victim VMs, disruptive events received, and victim slowdown
//!   versus the ideal-coherence bound.
//! * [`experiments::multivm`] packages the aggressor/victim experiment the
//!   `multivm_interference` bench and the `consolidated_host` example run.
//! * The [`scenario`] layer is the **single entry point to every
//!   experiment**: a [`scenario::Scenario`] trait + static
//!   [`scenario::registry`], a uniform [`scenario::ScenarioReport`] schema
//!   shared by every `BENCH_*.json`, and the `scenarios` CLI binary
//!   (`cargo run -p hatric-host --bin scenarios -- --list`).
//!
//! ```
//! use hatric_coherence::CoherenceMechanism;
//! use hatric_host::{ConsolidatedHost, HostConfig, VmSpec};
//!
//! # fn main() -> Result<(), hatric_types::SimError> {
//! // Two VMs time-sharing 2 CPUs: a paging-heavy aggressor and a victim
//! // whose working set fits its die-stacked quota.
//! let config = HostConfig::scaled(2, 256)
//!     .with_mechanism(CoherenceMechanism::Hatric)
//!     .with_vm(VmSpec::aggressor(1, 128))
//!     .with_vm(VmSpec::victim(2, 128));
//! let mut host = ConsolidatedHost::new(config)?;
//! let report = host.run(100, 100);
//! // Under HATRIC, a remap-free victim is never disrupted.
//! assert_eq!(report.per_vm[1].interference.disrupted_cycles, 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod diff;
pub mod experiments;
pub mod host;
pub mod scenario;

pub use config::{HostConfig, HostConfigBuilder, VmSpec, VmSpecBuilder};
pub use diff::{DiffOptions, DiffReport};
pub use host::ConsolidatedHost;
pub use scenario::{Params, Scale, Scenario, ScenarioReport};

// Re-export the vocabulary needed to drive a host without importing every
// substrate crate explicitly.
pub use hatric::metrics::{
    HostReport, InterferenceActivity, MigrationStats, NumaActivity, SimReport,
};
pub use hatric::{EngineKind, LinkConfig, NumaConfig};
pub use hatric_coherence::CoherenceMechanism;
pub use hatric_hypervisor::{NumaPolicy, Placement, SchedPolicy, Scheduler};
pub use hatric_migration::{BalloonParams, HostEvent, MigrationParams, MigrationPhase};
pub use hatric_types::ConfigError;
pub use hatric_workloads::WorkloadKind;
