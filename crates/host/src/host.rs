//! The consolidated host: N virtual machines scheduled over one shared
//! [`Platform`].

use hatric::metrics::{HostReport, MigrationStats, SimReport};
use hatric::telemetry::{track, CounterTimeline, PhaseTotals, TraceEvent, TraceSink};
use hatric::{EngineBackend, Platform, VmInstance, VmPagingParams, WorkloadDriver};
use hatric_hypervisor::{Placement, Scheduler, VmConfig};
use hatric_memory::MemoryKind;
use hatric_migration::{
    BalloonDriver, HostEvent, MigrationEngine, MigrationPhase, MigrationReceiver, ReceiverParams,
};
use hatric_types::{CpuId, GuestFrame, Result, VcpuId, VmId};
use hatric_workloads::Workload;

use crate::config::HostConfig;

/// Physical CPU the hypervisor's migration/balloon worker threads run on.
/// Their cycles are charged to the VM each operation serves (the host
/// temporarily declares that VM the CPU's occupant), so any fixed choice
/// is equivalent; CPU 0 keeps runs reproducible.
const HYPERVISOR_WORKER_CPU: CpuId = CpuId::new(0);

/// A host running `config.vms.len()` virtual machines concurrently over one
/// cache hierarchy, one HATRIC directory, one memory system and a pool of
/// physical CPUs.
///
/// Time advances in scheduler slices: each slice, the scheduler places up
/// to `num_pcpus` vCPUs, and every placed vCPU issues
/// `config.slice_accesses` guest memory accesses through the shared
/// pipeline.  Hypervisor paging inside any VM triggers translation
/// coherence on the shared platform, where its cost lands on whoever
/// occupies the targeted CPUs — the cross-VM interference this subsystem
/// exists to measure.
#[derive(Debug)]
pub struct ConsolidatedHost {
    config: HostConfig,
    platform: Platform,
    vms: Vec<VmInstance>,
    drivers: Vec<WorkloadDriver>,
    scheduler: Scheduler,
    current_slice: Vec<Placement>,
    /// Scratch buffer the scheduler writes the next slice into (swapped
    /// with `current_slice` after the context switch — no per-slice
    /// allocation).
    next_slice_buf: Vec<Placement>,
    /// The slice-executor backend ([`HostConfig::engine`] picks the
    /// phased or the message-passing implementation; both are
    /// byte-identical in their reports).
    engine: Box<dyn EngineBackend>,
    slices_run: u64,
    /// Events not yet started (a migration due while another is in flight
    /// is deferred until the slot frees up).
    pending_events: Vec<HostEvent>,
    /// Scratch buffer `start_due_events` collects still-pending events
    /// into (swapped back — no per-slice allocation).
    pending_scratch: Vec<HostEvent>,
    /// The in-flight (or most recently completed) live migration.
    migration: Option<MigrationEngine>,
    /// The destination side of an inter-host migration, when this host is
    /// receiving a VM image from a cluster peer.
    receiver: Option<MigrationReceiver>,
    /// Which VM slots are scheduled at all.  The cluster tier deactivates
    /// slots for departures and flips activity at migration hand-off; a
    /// standalone host leaves every slot active.
    vm_active: Vec<bool>,
    /// In-flight and completed balloon operations.
    balloons: Vec<BalloonDriver>,
    /// Stats of migrations already replaced by a newer one.
    finished_migration_stats: MigrationStats,
    /// Sticky stall flag: `start_migration` only *queues* the engine, so a
    /// fault window opening in the same epoch must survive until the
    /// engine actually exists and be applied at creation.
    migration_stalled: bool,
    /// The counter timeline, when gauge sampling is enabled.
    timeline: Option<CounterTimeline>,
    /// Coherence-target total at the previous timeline sample (the
    /// `shootdown_targets` series is a per-window delta of the cumulative
    /// per-VM counters).
    timeline_prev_targets: u64,
}

impl ConsolidatedHost {
    /// Builds the host from its configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: HostConfig) -> Result<Self> {
        config.validate()?;
        let platform = Platform::new(&config.platform_config())?;
        let device_pages = platform.memory().total_frames(MemoryKind::DieStacked);
        let mut vms = Vec::with_capacity(config.vms.len());
        let mut drivers = Vec::with_capacity(config.vms.len());
        for (slot, spec) in config.vms.iter().enumerate() {
            // Quotas partition the real device; the no-HBM and infinite-HBM
            // operating modes override them host-wide.
            let quota = match config.memory_mode {
                hatric::MemoryMode::NoHbm => 0,
                hatric::MemoryMode::InfiniteHbm => device_pages,
                hatric::MemoryMode::Paged => spec.fast_quota_pages.min(device_pages),
            };
            let paging = VmPagingParams::for_quota(&spec.paging, quota, quota > 0);
            vms.push(VmInstance::unplaced(
                slot,
                VmConfig {
                    vm: VmId::new(slot as u32),
                    vcpus: spec.vcpus,
                    first_cpu: hatric_types::CpuId::new(0),
                },
                paging,
                platform.memory(),
            ));
            let workload_seed = config
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(slot as u64 + 1));
            drivers.push(WorkloadDriver::from(Workload::build(
                spec.workload,
                spec.vcpus,
                spec.workload_scale_pages,
                workload_seed,
            )));
        }
        let vcpu_counts: Vec<usize> = config.vms.iter().map(|v| v.vcpus).collect();
        let scheduler = if config.sched == hatric_hypervisor::SchedPolicy::SocketAffine {
            let home_sockets: Vec<usize> = config.vms.iter().map(|v| v.home_socket).collect();
            Scheduler::socket_affine(
                config.num_pcpus,
                &vcpu_counts,
                &home_sockets,
                config.numa.sockets,
            )
        } else {
            Scheduler::new(config.sched, config.num_pcpus, &vcpu_counts)
        };
        let pending_events = config.events.clone();
        let vm_active = vec![true; config.vms.len()];
        let engine = config.engine.build(config.vms.len(), config.numa.sockets);
        Ok(Self {
            config,
            platform,
            vms,
            drivers,
            scheduler,
            current_slice: Vec::new(),
            next_slice_buf: Vec::new(),
            engine,
            slices_run: 0,
            pending_events,
            pending_scratch: Vec::new(),
            migration: None,
            receiver: None,
            vm_active,
            balloons: Vec::new(),
            finished_migration_stats: MigrationStats::default(),
            migration_stalled: false,
            timeline: None,
            timeline_prev_targets: 0,
        })
    }

    /// The configuration this host was built with.
    #[must_use]
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// The shared platform (for inspection).
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The VM in host slot `slot` (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn vm(&self, slot: usize) -> &VmInstance {
        &self.vms[slot]
    }

    /// Scheduler slices executed so far (warmup included).
    #[must_use]
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    // ----- observability -----------------------------------------------------

    /// Installs a sim-time trace sink holding up to `capacity` spans
    /// (oldest evicted first).  Recording is keyed entirely to simulated
    /// cycle counters, so the trace is deterministic — byte-identical for
    /// any worker thread count — and never perturbs the model.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.platform.set_trace_sink(TraceSink::new(capacity));
    }

    /// Exports the recorded spans as a Chrome trace-event JSON document
    /// (openable in `chrome://tracing` or Perfetto), or `None` when
    /// tracing was never enabled.
    #[must_use]
    pub fn export_trace(&self) -> Option<String> {
        self.platform
            .trace_sink()
            .map(hatric::telemetry::TraceSink::export_chrome_trace)
    }

    /// Wall-clock totals the slice engine spent in each phase (simulate,
    /// bank replay, booking replay, serial commit, pool refill) on this
    /// host's slices.
    #[must_use]
    pub fn phase_totals(&self) -> &PhaseTotals {
        self.engine.phase_totals()
    }

    /// The gauge series a host timeline samples, in column order.
    pub const TIMELINE_SERIES: [&'static str; 6] = [
        "directory_lines",
        "dram_queue_offchip",
        "dram_queue_diestacked",
        "ntlb_hit_rate_bp",
        "shootdown_targets",
        "dirty_pages",
    ];

    /// Enables counter-timeline sampling every `interval` slices: after
    /// each `interval`-th slice commits, the host records directory
    /// occupancy, per-device DRAM queue depth, the nested-TLB hit rate
    /// (basis points), coherence targets generated since the previous
    /// sample, and the in-flight migration's pending page count.
    ///
    /// Sampling happens at the commit barrier, where every gauge reads
    /// the canonical committed state — so the timeline is byte-identical
    /// for any worker thread count, and enabling it never changes any
    /// model metric.
    pub fn enable_timeline(&mut self, interval: u64) {
        self.timeline = Some(CounterTimeline::new(
            interval,
            Self::TIMELINE_SERIES.to_vec(),
        ));
        self.timeline_prev_targets = 0;
    }

    /// The recorded counter timeline, or `None` when sampling was never
    /// enabled.
    #[must_use]
    pub fn timeline(&self) -> Option<&CounterTimeline> {
        self.timeline.as_ref()
    }

    /// Records one timeline sample if sampling is enabled and the slice
    /// counter sits on the interval.  Every gauge is a read of committed
    /// state; nothing here feeds back into the model.
    fn sample_timeline(&mut self) {
        let due = self
            .timeline
            .as_ref()
            .is_some_and(|t| self.slices_run.is_multiple_of(t.interval()));
        if !due {
            return;
        }
        let now = self
            .platform
            .cycles_per_cpu()
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let directory_lines = self.platform.caches().directory_len() as u64;
        let memory = self.platform.memory();
        let queue_off = memory.projected_queueing(MemoryKind::OffChip, now);
        let queue_die = memory.projected_queueing(MemoryKind::DieStacked, now);
        let ntlb = self.platform.translation_snapshot().ntlb;
        let ntlb_bp = if ntlb.total() == 0 {
            0
        } else {
            ntlb.hits() * 10_000 / ntlb.total()
        };
        let targets_total: u64 = self
            .vms
            .iter()
            .map(|vm| vm.numa().local_coherence_targets + vm.numa().remote_coherence_targets)
            .sum();
        let targets_window = targets_total - self.timeline_prev_targets;
        self.timeline_prev_targets = targets_total;
        let dirty_pages = self
            .migration
            .as_ref()
            .map_or(0, MigrationEngine::pending_pages);
        if let Some(timeline) = &mut self.timeline {
            timeline.record(
                now,
                &[
                    directory_lines,
                    queue_off,
                    queue_die,
                    ntlb_bp,
                    targets_window,
                    dirty_pages,
                ],
            );
        }
    }

    /// Runs `warmup_slices` unmeasured slices (to populate page tables,
    /// caches and the resident sets), clears the measurement counters, runs
    /// `measured_slices` measured slices and returns the report.
    pub fn run(&mut self, warmup_slices: u64, measured_slices: u64) -> HostReport {
        self.run_slices(warmup_slices);
        self.reset_measurements();
        self.run_slices(measured_slices);
        self.report()
    }

    /// Executes `n` scheduler slices.
    pub fn run_slices(&mut self, n: u64) {
        for _ in 0..n {
            self.run_one_slice();
        }
    }

    fn run_one_slice(&mut self) {
        self.start_due_events();
        self.apply_throttle();
        let mut placements = std::mem::take(&mut self.next_slice_buf);
        self.scheduler.next_slice_into(&mut placements);
        // Context switch: clear last slice's occupants, install this one's.
        for p in self.current_slice.drain(..) {
            self.vms[p.vm_slot].vm_mut().deschedule(p.vcpu);
            self.platform.set_occupant(p.pcpu, None);
        }
        for p in &placements {
            self.vms[p.vm_slot].vm_mut().place(p.vcpu, p.pcpu);
            self.platform
                .set_occupant(p.pcpu, Some((p.vm_slot, p.vcpu)));
        }
        // Scheduler-slice spans are anchored to CPU 0's cycle counter: it
        // only moves forward, so the scheduler track stays monotone.
        let slice_start = self
            .platform
            .trace_enabled()
            .then(|| self.platform.cycles_per_cpu()[0]);
        // Simulate the slice's VM shards (on `config.threads` workers) and
        // commit their effect logs at the barrier — bit-identical for any
        // thread count and either engine backend.
        self.engine.run_slice(
            &mut self.platform,
            &mut self.vms,
            &mut self.drivers,
            &placements,
            self.config.slice_accesses,
            self.config.threads,
        );
        self.next_slice_buf = std::mem::replace(&mut self.current_slice, placements);
        self.advance_events();
        if let Some(start) = slice_start {
            let now = self.platform.cycles_per_cpu()[0];
            self.platform.trace_event(TraceEvent {
                name: "slice",
                cat: "scheduler",
                track: track::SCHEDULER,
                ts: start,
                dur: now.saturating_sub(start),
                args: vec![
                    ("slice", self.slices_run),
                    ("placed_vcpus", self.current_slice.len() as u64),
                ],
            });
        }
        self.slices_run += 1;
        self.sample_timeline();
    }

    // ----- hypervisor events (live migration, ballooning) -------------------

    /// Applies auto-convergence before the scheduler builds the next
    /// slice: when the in-flight pre-copy migration's dirty rate has
    /// outrun the link for more than
    /// [`MigrationParams::throttle_after_rounds`](hatric_migration::MigrationParams)
    /// rounds, the migrating VM loses `level` of every 8 slices.  With
    /// throttling disabled (the default) this re-asserts the pause state
    /// the engine already requested, so existing runs are untouched.
    fn apply_throttle(&mut self) {
        let Some(engine) = &mut self.migration else {
            return;
        };
        if engine.is_complete() {
            return;
        }
        let slot = engine.vm_slot();
        let level = engine.throttle_level();
        let throttled = level > 0 && self.slices_run % 8 < u64::from(level);
        if throttled {
            engine.note_throttled();
        }
        let paused = throttled || engine.wants_vm_paused() || !self.vm_active[slot];
        self.scheduler.set_vm_paused(slot, paused);
    }

    /// Fires events whose start slice has arrived.  A migration due while
    /// another is still in flight stays pending until the engine frees up.
    fn start_due_events(&mut self) {
        if self.pending_events.is_empty() {
            // Steady state on event-free hosts: no buffer shuffling at all.
            return;
        }
        let now = self.slices_run;
        let mut still_pending = std::mem::take(&mut self.pending_scratch);
        still_pending.clear();
        for event in std::mem::take(&mut self.pending_events) {
            if event.start_slice() > now {
                still_pending.push(event);
                continue;
            }
            match event {
                HostEvent::Migrate(params) => {
                    let busy = self.migration.as_ref().is_some_and(|e| !e.is_complete());
                    if busy {
                        still_pending.push(event);
                        continue;
                    }
                    if let Some(done) = self.migration.take() {
                        self.finished_migration_stats.merge(&done.stats());
                    }
                    let mut engine = MigrationEngine::new(params, &self.vms);
                    engine.set_stalled(self.migration_stalled);
                    self.platform.set_write_observer(engine.observer());
                    self.migration = Some(engine);
                }
                HostEvent::Balloon(params) => {
                    self.balloons.push(BalloonDriver::new(params));
                }
            }
        }
        self.pending_scratch = std::mem::replace(&mut self.pending_events, still_pending);
    }

    /// Runs the hypervisor's worker threads for this slice: balloon
    /// batches, then the migration engine.  Each worker executes on
    /// [`HYPERVISOR_WORKER_CPU`] with the served VM declared as the CPU's
    /// occupant, so its cycles (and any coherence backlash) are charged to
    /// that VM rather than to whichever guest happened to run there.
    fn advance_events(&mut self) {
        let cpu = HYPERVISOR_WORKER_CPU;
        let saved = self.platform.occupant(cpu);
        for balloon in &mut self.balloons {
            if balloon.is_complete() {
                continue;
            }
            self.platform
                .set_occupant(cpu, Some((balloon.params().from_slot, VcpuId::new(0))));
            balloon.advance(&mut self.platform, &mut self.vms, cpu);
        }
        if let Some(engine) = &mut self.migration {
            if !engine.is_complete() {
                self.platform
                    .set_occupant(cpu, Some((engine.vm_slot(), VcpuId::new(0))));
                engine.advance(&mut self.platform, &mut self.vms, cpu);
                let slot = engine.vm_slot();
                let paused = engine.wants_vm_paused() || !self.vm_active[slot];
                self.scheduler.set_vm_paused(slot, paused);
                if engine.is_complete() {
                    self.platform.clear_write_observer();
                }
            }
        }
        if let Some(receiver) = &mut self.receiver {
            if !receiver.is_complete() {
                self.platform
                    .set_occupant(cpu, Some((receiver.vm_slot(), VcpuId::new(0))));
                receiver.advance(&mut self.platform, &mut self.vms, cpu);
            }
        }
        self.platform.set_occupant(cpu, saved);
    }

    /// Phase of the in-flight (or last) migration, if any was started.
    #[must_use]
    pub fn migration_phase(&self) -> Option<MigrationPhase> {
        self.migration.as_ref().map(MigrationEngine::phase)
    }

    // ----- the cluster-facing surface ---------------------------------------

    /// Queues a hypervisor event to fire at its start slice (the cluster
    /// uses this to start source-side migrations mid-run; standalone
    /// configs list events up front in [`HostConfig::events`]).
    pub fn inject_event(&mut self, event: HostEvent) {
        self.pending_events.push(event);
    }

    /// Activates or deactivates VM slot `slot`.  An inactive slot is never
    /// scheduled (its vCPUs are paused) but keeps its memory image — the
    /// cluster tier uses this for departures and for the hand-off flip of
    /// an inter-host migration.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set_vm_active(&mut self, slot: usize, active: bool) {
        self.vm_active[slot] = active;
        let migration_paused = self.migration.as_ref().is_some_and(|engine| {
            engine.vm_slot() == slot && !engine.is_complete() && engine.wants_vm_paused()
        });
        self.scheduler
            .set_vm_paused(slot, !active || migration_paused);
    }

    /// Whether VM slot `slot` is active (scheduled).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn vm_active(&self, slot: usize) -> bool {
        self.vm_active[slot]
    }

    /// Installs the destination side of an inter-host migration for
    /// `params.vm_slot`, folding the statistics of any finished previous
    /// receiver into the host totals.
    ///
    /// # Panics
    ///
    /// Panics if a previous receiver is still mid-stream — the cluster
    /// serializes receivers per host.
    pub fn attach_receiver(&mut self, params: ReceiverParams) {
        if let Some(old) = self.receiver.take() {
            assert!(
                old.is_complete(),
                "attach_receiver while a receiver is still draining"
            );
            self.finished_migration_stats.merge(&old.stats());
        }
        self.receiver = Some(MigrationReceiver::new(params));
    }

    /// The host's simulated time: its largest per-CPU cycle counter.
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        self.platform
            .cycles_per_cpu()
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Whether VM `slot` is currently fully paused (stop-and-copy).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn is_vm_paused(&self, slot: usize) -> bool {
        self.scheduler.vm_paused(slot)
    }

    /// The placements of the most recently executed slice.
    #[must_use]
    pub fn last_placements(&self) -> &[Placement] {
        &self.current_slice
    }

    /// Clears all measurement state (platform statistics, per-VM counters,
    /// migration/balloon statistics) while keeping architectural state —
    /// including in-flight event progress — intact.
    pub fn reset_measurements(&mut self) {
        self.platform.reset_measurements();
        for vm in &mut self.vms {
            vm.reset_measurements();
        }
        self.finished_migration_stats = MigrationStats::default();
        if let Some(engine) = &mut self.migration {
            engine.reset_stats();
        }
        if let Some(receiver) = &mut self.receiver {
            receiver.reset_stats();
        }
        for balloon in &mut self.balloons {
            balloon.reset_stats();
        }
        if let Some(timeline) = &mut self.timeline {
            timeline.clear();
        }
        // The per-VM coherence-target counters were just zeroed; the
        // windowed delta restarts from zero with them.
        self.timeline_prev_targets = 0;
    }

    /// Produces the host report: one [`SimReport`] per VM plus the
    /// host-wide aggregate.
    #[must_use]
    pub fn report(&self) -> HostReport {
        let per_vm: Vec<SimReport> = self.vms.iter().map(VmInstance::report).collect();
        let mut host = SimReport {
            cycles_per_cpu: self.platform.cycles_per_cpu().to_vec(),
            translation: self.platform.translation_snapshot(),
            cache: self.platform.cache_snapshot(),
            energy: self.platform.energy_report(),
            ..SimReport::default()
        };
        for vm in &per_vm {
            host.accesses += vm.accesses;
            host.coherence.merge(&vm.coherence);
            host.faults.merge(&vm.faults);
            host.interference.merge(&vm.interference);
            host.numa.merge(&vm.numa);
            host.paging.merge(&vm.paging);
            host.latency.merge(&vm.latency);
            host.causal.merge(&vm.causal);
        }
        let mut migration = self.finished_migration_stats;
        if let Some(engine) = &self.migration {
            migration.merge(&engine.stats());
        }
        if let Some(receiver) = &self.receiver {
            migration.merge(&receiver.stats());
        }
        for balloon in &self.balloons {
            migration.merge(&balloon.stats());
        }
        HostReport {
            per_vm,
            host,
            migration,
        }
    }
}

/// The cluster tier drives a consolidated host entirely through this
/// trait: epoch advancement, churn activity flips, and both sides of an
/// inter-host migration.
impl hatric_cluster::EpochHost for ConsolidatedHost {
    fn run_slices(&mut self, n: u64) {
        ConsolidatedHost::run_slices(self, n);
    }

    fn reset_measurements(&mut self) {
        ConsolidatedHost::reset_measurements(self);
    }

    fn report(&self) -> HostReport {
        ConsolidatedHost::report(self)
    }

    fn vm_slots(&self) -> usize {
        self.vms.len()
    }

    fn vm_active(&self, slot: usize) -> bool {
        ConsolidatedHost::vm_active(self, slot)
    }

    fn set_vm_active(&mut self, slot: usize, active: bool) {
        ConsolidatedHost::set_vm_active(self, slot, active);
    }

    fn active_vcpus(&self) -> u64 {
        self.config
            .vms
            .iter()
            .zip(&self.vm_active)
            .filter(|(_, active)| **active)
            .map(|(spec, _)| spec.vcpus as u64)
            .sum()
    }

    fn sim_cycles(&self) -> u64 {
        self.max_cycles()
    }

    fn vm_image(&self, slot: usize) -> Vec<GuestFrame> {
        self.vms[slot].nested_page_table().mapped_gpps()
    }

    fn start_migration(&mut self, params: hatric_migration::MigrationParams) {
        let params = hatric_migration::MigrationParams {
            start_slice: self.slices_run,
            ..params
        };
        self.inject_event(HostEvent::Migrate(params));
    }

    fn migration_idle(&self) -> bool {
        self.migration
            .as_ref()
            .is_none_or(MigrationEngine::is_complete)
            && self
                .pending_events
                .iter()
                .all(|e| !matches!(e, HostEvent::Migrate(_)))
    }

    fn migration_stats(&self) -> MigrationStats {
        self.migration
            .as_ref()
            .map(MigrationEngine::stats)
            .unwrap_or_default()
    }

    fn migration_pending_pages(&self) -> u64 {
        self.migration
            .as_ref()
            .map_or(0, MigrationEngine::pending_pages)
    }

    fn drain_outbox(&mut self) -> Vec<GuestFrame> {
        self.migration
            .as_mut()
            .map(MigrationEngine::drain_outbox)
            .unwrap_or_default()
    }

    fn attach_receiver(&mut self, params: ReceiverParams) {
        ConsolidatedHost::attach_receiver(self, params);
    }

    fn deliver_pages(&mut self, pages: Vec<GuestFrame>) {
        self.receiver
            .as_mut()
            .expect("deliver_pages without an attached receiver")
            .enqueue_pages(pages);
    }

    fn begin_post_copy(&mut self, outstanding: Vec<GuestFrame>) {
        self.receiver
            .as_mut()
            .expect("begin_post_copy without an attached receiver")
            .begin_post_copy(outstanding);
    }

    fn mark_source_done(&mut self) {
        self.receiver
            .as_mut()
            .expect("mark_source_done without an attached receiver")
            .mark_source_done();
    }

    fn receiver_complete(&self) -> bool {
        self.receiver
            .as_ref()
            .is_some_and(MigrationReceiver::is_complete)
    }

    fn receiver_pending_pages(&self) -> u64 {
        self.receiver
            .as_ref()
            .map_or(0, MigrationReceiver::pending_pages)
    }

    fn abort_migration(&mut self) -> u64 {
        // A queued-but-unstarted migration dies with its request.
        self.pending_events
            .retain(|e| !matches!(e, HostEvent::Migrate(_)));
        let Some(engine) = &mut self.migration else {
            return 0;
        };
        if engine.phase().is_terminal() {
            return 0;
        }
        let slot = engine.vm_slot();
        let discarded = engine.abort();
        // The engine's dirty tracker must stop observing guest writes,
        // and the VM resumes (unless the cluster deactivated the slot).
        self.platform.clear_write_observer();
        self.scheduler.set_vm_paused(slot, !self.vm_active[slot]);
        discarded
    }

    fn escalate_migration(&mut self) -> Vec<GuestFrame> {
        let Some(engine) = &mut self.migration else {
            return Vec::new();
        };
        if engine.phase().is_terminal() {
            return Vec::new();
        }
        let slot = engine.vm_slot();
        let pending = engine.escalate();
        self.platform.clear_write_observer();
        self.scheduler.set_vm_paused(slot, !self.vm_active[slot]);
        pending
    }

    fn migration_in_precopy(&self) -> bool {
        self.migration
            .as_ref()
            .is_some_and(|engine| engine.phase() == MigrationPhase::PreCopy)
    }

    fn requeue_outbox(&mut self, pages: Vec<GuestFrame>) {
        if let Some(engine) = &mut self.migration {
            engine.requeue_outbox(pages);
        }
    }

    fn requeue_copy(&mut self, pages: Vec<GuestFrame>) {
        if let Some(engine) = &mut self.migration {
            engine.requeue_copy(pages);
        }
    }

    fn set_migration_stalled(&mut self, stalled: bool) {
        self.migration_stalled = stalled;
        if let Some(engine) = &mut self.migration {
            engine.set_stalled(stalled);
        }
    }

    fn abort_receiver(&mut self, rollback: bool) -> u64 {
        let Some(receiver) = &mut self.receiver else {
            return 0;
        };
        if receiver.is_complete() {
            return 0;
        }
        let slot = receiver.vm_slot();
        let (mut discarded, landed) = receiver.abort();
        if rollback {
            // Un-register the first-touch remaps the receiver had landed,
            // newest first — frees the frames, clears the nested-PT
            // entries and pays the shootdown/coherence bill on the
            // hypervisor worker, charged to the half-received VM.
            let cpu = HYPERVISOR_WORKER_CPU;
            let saved = self.platform.occupant(cpu);
            self.platform
                .set_occupant(cpu, Some((slot, VcpuId::new(0))));
            for gpp in landed.into_iter().rev() {
                if self
                    .platform
                    .hypervisor_unmap_page(&mut self.vms, slot, cpu, gpp)
                {
                    discarded += 1;
                }
            }
            self.platform.set_occupant(cpu, saved);
        }
        discarded
    }

    fn set_dram_brownout(&mut self, multiplier_x100: u64) {
        self.platform.set_dram_brownout(multiplier_x100);
    }

    fn record_fault_span(&mut self, name: &'static str, args: Vec<(&'static str, u64)>) {
        if self.platform.trace_enabled() {
            let ts = self.max_cycles();
            self.platform.trace_event(TraceEvent {
                name,
                cat: "fault",
                track: track::HYPERVISOR,
                ts,
                dur: 0,
                args,
            });
        }
    }

    fn enable_tracing(&mut self, capacity: usize) {
        ConsolidatedHost::enable_tracing(self, capacity);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.platform.trace_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmSpec;
    use hatric_coherence::CoherenceMechanism;
    use hatric_hypervisor::SchedPolicy;

    fn tiny_host(mechanism: CoherenceMechanism) -> ConsolidatedHost {
        let cfg = HostConfig::scaled(4, 512)
            .with_mechanism(mechanism)
            .with_sched(SchedPolicy::RoundRobin)
            .with_vm(VmSpec::aggressor(2, 256))
            .with_vm(VmSpec::victim(2, 128))
            .with_vm(VmSpec::victim(2, 128));
        ConsolidatedHost::new(cfg)
            .expect("tiny_host config must validate: 4 pCPUs, 3 VMs within the 512-page quota")
    }

    #[test]
    fn host_runs_and_reports_per_vm() {
        let mut host = tiny_host(CoherenceMechanism::Software);
        let report = host.run(150, 150);
        assert_eq!(report.per_vm.len(), 3);
        for vm in &report.per_vm {
            assert!(vm.accesses > 0, "every VM must make progress");
        }
        assert_eq!(
            report.host.accesses,
            report.per_vm.iter().map(|r| r.accesses).sum::<u64>()
        );
    }

    #[test]
    fn aggressor_remaps_victims_do_not() {
        let mut host = tiny_host(CoherenceMechanism::Software);
        let report = host.run(400, 400);
        assert!(
            report.per_vm[0].coherence.remaps > 0,
            "the aggressor must page"
        );
        assert_eq!(report.per_vm[1].coherence.remaps, 0);
        assert_eq!(report.per_vm[2].coherence.remaps, 0);
    }

    #[test]
    fn oversubscription_shares_cpus_between_vms() {
        let host = tiny_host(CoherenceMechanism::Software);
        assert!(host.config().is_oversubscribed());
    }

    #[test]
    fn message_engine_report_is_byte_identical_to_sliced() {
        let cfg = HostConfig::scaled(4, 512)
            .with_mechanism(CoherenceMechanism::Hatric)
            .with_sched(SchedPolicy::RoundRobin)
            .with_vm(VmSpec::aggressor(2, 256))
            .with_vm(VmSpec::victim(2, 128));
        let sliced = ConsolidatedHost::new(cfg.clone())
            .expect("valid config")
            .run(60, 120);
        let mp = ConsolidatedHost::new(cfg.with_engine(hatric::EngineKind::MessagePassing))
            .expect("valid config")
            .run(60, 120);
        assert_eq!(
            format!("{sliced:?}"),
            format!("{mp:?}"),
            "the two engine backends must agree byte-for-byte"
        );
    }

    #[test]
    fn zero_vcpu_vm_yields_err_not_panic() {
        let cfg = HostConfig::scaled(4, 512).with_vm(VmSpec {
            vcpus: 0,
            ..VmSpec::victim(1, 128)
        });
        let err = cfg.validate().expect_err("a 0-vCPU VM must be rejected");
        assert!(err.to_string().contains("vCPU"), "unexpected error: {err}");
        assert!(ConsolidatedHost::new(cfg).is_err());
    }
}
