//! The consolidated host: N virtual machines scheduled over one shared
//! [`Platform`].

use hatric::metrics::{HostReport, SimReport};
use hatric::{Platform, VmInstance, VmPagingParams, WorkloadDriver};
use hatric_hypervisor::{Placement, Scheduler, VmConfig};
use hatric_memory::MemoryKind;
use hatric_types::{Result, VmId};
use hatric_workloads::Workload;

use crate::config::HostConfig;

/// A host running `config.vms.len()` virtual machines concurrently over one
/// cache hierarchy, one HATRIC directory, one memory system and a pool of
/// physical CPUs.
///
/// Time advances in scheduler slices: each slice, the scheduler places up
/// to `num_pcpus` vCPUs, and every placed vCPU issues
/// `config.slice_accesses` guest memory accesses through the shared
/// pipeline.  Hypervisor paging inside any VM triggers translation
/// coherence on the shared platform, where its cost lands on whoever
/// occupies the targeted CPUs — the cross-VM interference this subsystem
/// exists to measure.
#[derive(Debug)]
pub struct ConsolidatedHost {
    config: HostConfig,
    platform: Platform,
    vms: Vec<VmInstance>,
    drivers: Vec<WorkloadDriver>,
    scheduler: Scheduler,
    current_slice: Vec<Placement>,
    slices_run: u64,
}

impl ConsolidatedHost {
    /// Builds the host from its configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: HostConfig) -> Result<Self> {
        config.validate()?;
        let platform = Platform::new(&config.platform_config())?;
        let device_pages = platform.memory().total_frames(MemoryKind::DieStacked);
        let mut vms = Vec::with_capacity(config.vms.len());
        let mut drivers = Vec::with_capacity(config.vms.len());
        for (slot, spec) in config.vms.iter().enumerate() {
            // Quotas partition the real device; the no-HBM and infinite-HBM
            // operating modes override them host-wide.
            let quota = match config.memory_mode {
                hatric::MemoryMode::NoHbm => 0,
                hatric::MemoryMode::InfiniteHbm => device_pages,
                hatric::MemoryMode::Paged => spec.fast_quota_pages.min(device_pages),
            };
            let paging = VmPagingParams::for_quota(&spec.paging, quota, quota > 0);
            vms.push(VmInstance::unplaced(
                slot,
                VmConfig {
                    vm: VmId::new(slot as u32),
                    vcpus: spec.vcpus,
                    first_cpu: hatric_types::CpuId::new(0),
                },
                paging,
                platform.memory(),
            ));
            let workload_seed = config
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(slot as u64 + 1));
            drivers.push(WorkloadDriver::from(Workload::build(
                spec.workload,
                spec.vcpus,
                spec.workload_scale_pages,
                workload_seed,
            )));
        }
        let vcpu_counts: Vec<usize> = config.vms.iter().map(|v| v.vcpus).collect();
        let scheduler = Scheduler::new(config.sched, config.num_pcpus, &vcpu_counts);
        Ok(Self {
            config,
            platform,
            vms,
            drivers,
            scheduler,
            current_slice: Vec::new(),
            slices_run: 0,
        })
    }

    /// The configuration this host was built with.
    #[must_use]
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// The shared platform (for inspection).
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The VM in host slot `slot` (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn vm(&self, slot: usize) -> &VmInstance {
        &self.vms[slot]
    }

    /// Scheduler slices executed so far (warmup included).
    #[must_use]
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    /// Runs `warmup_slices` unmeasured slices (to populate page tables,
    /// caches and the resident sets), clears the measurement counters, runs
    /// `measured_slices` measured slices and returns the report.
    pub fn run(&mut self, warmup_slices: u64, measured_slices: u64) -> HostReport {
        self.run_slices(warmup_slices);
        self.reset_measurements();
        self.run_slices(measured_slices);
        self.report()
    }

    /// Executes `n` scheduler slices.
    pub fn run_slices(&mut self, n: u64) {
        for _ in 0..n {
            self.run_one_slice();
        }
    }

    fn run_one_slice(&mut self) {
        let placements = self.scheduler.next_slice();
        // Context switch: clear last slice's occupants, install this one's.
        for p in self.current_slice.drain(..) {
            self.vms[p.vm_slot].vm_mut().deschedule(p.vcpu);
            self.platform.set_occupant(p.pcpu, None);
        }
        for p in &placements {
            self.vms[p.vm_slot].vm_mut().place(p.vcpu, p.pcpu);
            self.platform
                .set_occupant(p.pcpu, Some((p.vm_slot, p.vcpu)));
        }
        for p in &placements {
            let thread = p.vcpu.index();
            for _ in 0..self.config.slice_accesses {
                let access = self.drivers[p.vm_slot].next_access(thread);
                let asid = self.vms[p.vm_slot]
                    .vm()
                    .address_space(self.drivers[p.vm_slot].address_space_index(thread));
                self.platform
                    .step(&mut self.vms, p.vm_slot, p.pcpu, asid, access);
            }
        }
        self.current_slice = placements;
        self.slices_run += 1;
    }

    /// Clears all measurement state (platform statistics and per-VM
    /// counters) while keeping architectural state intact.
    pub fn reset_measurements(&mut self) {
        self.platform.reset_measurements();
        for vm in &mut self.vms {
            vm.reset_measurements();
        }
    }

    /// Produces the host report: one [`SimReport`] per VM plus the
    /// host-wide aggregate.
    #[must_use]
    pub fn report(&self) -> HostReport {
        let per_vm: Vec<SimReport> = self.vms.iter().map(VmInstance::report).collect();
        let mut host = SimReport {
            cycles_per_cpu: self.platform.cycles_per_cpu().to_vec(),
            translation: self.platform.translation_snapshot(),
            cache: self.platform.cache_snapshot(),
            energy: self.platform.energy_report(),
            ..SimReport::default()
        };
        for vm in &per_vm {
            host.accesses += vm.accesses;
            host.coherence.merge(&vm.coherence);
            host.faults.merge(&vm.faults);
            host.interference.merge(&vm.interference);
            host.paging.merge(&vm.paging);
        }
        HostReport { per_vm, host }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmSpec;
    use hatric_coherence::CoherenceMechanism;
    use hatric_hypervisor::SchedPolicy;

    fn tiny_host(mechanism: CoherenceMechanism) -> ConsolidatedHost {
        let cfg = HostConfig::scaled(4, 512)
            .with_mechanism(mechanism)
            .with_sched(SchedPolicy::RoundRobin)
            .with_vm(VmSpec::aggressor(2, 256))
            .with_vm(VmSpec::victim(2, 128))
            .with_vm(VmSpec::victim(2, 128));
        ConsolidatedHost::new(cfg).unwrap()
    }

    #[test]
    fn host_runs_and_reports_per_vm() {
        let mut host = tiny_host(CoherenceMechanism::Software);
        let report = host.run(150, 150);
        assert_eq!(report.per_vm.len(), 3);
        for vm in &report.per_vm {
            assert!(vm.accesses > 0, "every VM must make progress");
        }
        assert_eq!(
            report.host.accesses,
            report.per_vm.iter().map(|r| r.accesses).sum::<u64>()
        );
    }

    #[test]
    fn aggressor_remaps_victims_do_not() {
        let mut host = tiny_host(CoherenceMechanism::Software);
        let report = host.run(400, 400);
        assert!(
            report.per_vm[0].coherence.remaps > 0,
            "the aggressor must page"
        );
        assert_eq!(report.per_vm[1].coherence.remaps, 0);
        assert_eq!(report.per_vm[2].coherence.remaps, 0);
    }

    #[test]
    fn oversubscription_shares_cpus_between_vms() {
        let host = tiny_host(CoherenceMechanism::Software);
        assert!(host.config().is_oversubscribed());
    }
}
